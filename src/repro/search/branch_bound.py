"""Branch-and-bound mining of optimal location patterns (single target).

The paper's §V: "it may be feasible to devise a branch-and-bound approach
to mine optimal location patterns efficiently. Indeed this appears to be
the most relevant question to be addressed in the future." This module
implements that for a single real-valued target against a fresh
(single-block) background model, in the style of Boley et al. (2017)'s
tight optimistic estimators.

The estimator
-------------
At a search node with extension ``E``, every refinement selects some
``S`` that is a subset of ``E``. Under a single-block model ``N(mu, s2)``, the IC
of a subgroup ``S`` of size ``k`` with mean ``m`` is

    IC(S) = 1/2 * ( log(2 pi s2 / k) + k (m - mu)^2 / s2 ).

For fixed ``k``, the subgroup mean furthest from ``mu`` over all size-k
subsets of ``E`` is attained by the ``k`` largest or the ``k`` smallest
target values in ``E`` (a classical exchange argument). Scanning all
admissible ``k`` over the prefix/suffix means of the sorted values gives
the exact maximum of IC over *all* subsets of ``E`` in O(|E| log |E|) —
a valid (and tight, in the subset relaxation) optimistic estimate for
every describable refinement.

Since refining a canonical description never decreases its condition
count, the node's own DL lower-bounds every descendant's DL, so

    SI_bound(node) = IC_bound(E) / DL(|conditions|)

soundly prunes: if it does not beat the incumbent, no descendant can.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SearchError
from repro.interest.dl import LOCATION, DLParams, description_length
from repro.interest.si import PatternScore
from repro.lang.description import Description
from repro.lang.refinement import RefinementOperator
from repro.model.background import BackgroundModel
from repro.model.gaussian import LOG_2PI
from repro.search.config import SearchConfig
from repro.search.results import ScoredSubgroup, SearchResult
from repro.utils.timer import TimeBudget


@dataclass(frozen=True)
class BranchBoundStats:
    """Search effort accounting, for the pruning-effectiveness bench."""

    nodes_expanded: int
    nodes_pruned: int
    nodes_evaluated: int


class BranchAndBoundLocationSearch:
    """Provably optimal location-pattern search for one target attribute.

    Parameters
    ----------
    operator:
        Refinement operator defining the description language (the
        optimum is with respect to this language and ``config.max_depth``).
    model:
        A *fresh* background model (single block, one target). The bound
        argument needs one shared ``(mu, s2)``; for evolved models use the
        beam search.
    config:
        ``max_depth``, coverage limits and the time budget are honored;
        ``beam_width`` is ignored (the search is exhaustive up to pruning).
        If the time budget expires the incumbent is returned with
        ``expired=True`` (it may then be suboptimal).
    """

    def __init__(
        self,
        operator: RefinementOperator,
        model: BackgroundModel,
        targets: np.ndarray,
        *,
        config: SearchConfig = SearchConfig(),
        dl_params: DLParams = DLParams(),
    ) -> None:
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 2:
            if targets.shape[1] != 1:
                raise SearchError(
                    "branch-and-bound supports a single target attribute"
                )
            targets = targets[:, 0]
        if model.dim != 1:
            raise SearchError("branch-and-bound needs a 1-D background model")
        if model.n_blocks != 1:
            raise SearchError(
                "branch-and-bound needs a fresh (single-block) model; "
                "mine evolved models with the beam search"
            )
        if targets.shape[0] != model.n_rows:
            raise SearchError("targets and model row counts differ")
        self.operator = operator
        self.model = model
        self.targets = targets
        self.config = config
        self.dl_params = dl_params
        self._mu = float(model.block_mean(0)[0])
        self._s2 = float(model.block_cov(0)[0, 0])

    # ------------------------------------------------------------------ #
    # Information content and its optimistic bound
    # ------------------------------------------------------------------ #
    def _ic_of(self, k: float, mean: float) -> float:
        return 0.5 * (
            LOG_2PI + math.log(self._s2 / k) + k * (mean - self._mu) ** 2 / self._s2
        )

    def _ic_curve(self, sizes: np.ndarray, means: np.ndarray) -> np.ndarray:
        return 0.5 * (
            LOG_2PI
            + np.log(self._s2 / sizes)
            + sizes * (means - self._mu) ** 2 / self._s2
        )

    def optimistic_ic(self, mask: np.ndarray) -> float:
        """Exact max of IC over all admissible-size subsets of ``mask``."""
        values = np.sort(self.targets[mask])
        m = values.shape[0]
        lo = self.config.min_coverage
        hi = min(m, self._max_size)
        if lo > hi:
            return -math.inf
        sizes = np.arange(lo, hi + 1, dtype=float)
        prefix = np.cumsum(values)
        low_means = prefix[lo - 1 : hi] / sizes            # k smallest values
        total = prefix[-1]
        high_start = m - lo
        high_sums = total - np.concatenate(
            ([0.0], prefix[:-1])
        )  # suffix sums: sum of values[i:]
        high_means = high_sums[m - hi : high_start + 1][::-1] / sizes
        curve = np.maximum(
            self._ic_curve(sizes, low_means), self._ic_curve(sizes, high_means)
        )
        return float(curve.max())

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def run(self) -> SearchResult:
        """Exhaust the (pruned) description tree; returns the optimum."""
        config = self.config
        n = self.targets.shape[0]
        self._max_size = min(
            int(config.max_coverage_fraction * n), n - 1
        )
        budget = TimeBudget(config.time_budget_seconds)

        best: ScoredSubgroup | None = None
        log: list[ScoredSubgroup] = []
        seen: set[Description] = set()
        expanded = pruned = evaluated = 0
        expired = False
        depth_reached = 0

        # Depth-first with best-IC-first child ordering, so strong
        # incumbents appear early and sharpen the pruning threshold.
        root_mask = np.ones(n, dtype=bool)
        stack: list[tuple[Description, np.ndarray, int]] = [(Description(), root_mask, 0)]

        while stack:
            if budget.expired:
                expired = True
                break
            description, mask, depth = stack.pop()
            if depth >= config.max_depth:
                continue
            # Prune on the optimistic bound before expanding.
            if best is not None:
                bound_dl = description_length(
                    max(len(description), 1), kind=LOCATION, params=self.dl_params
                )
                if self.optimistic_ic(mask) / bound_dl <= best.si:
                    pruned += 1
                    continue
            expanded += 1

            children: list[tuple[float, Description, np.ndarray]] = []
            for refined, condition in self.operator.refinements(description):
                if refined in seen:
                    continue
                seen.add(refined)
                child_mask = mask & self.operator.mask_of(condition)
                size = int(child_mask.sum())
                if size < config.min_coverage or size > self._max_size:
                    continue
                mean = float(self.targets[child_mask].mean())
                ic = self._ic_of(size, mean)
                evaluated += 1
                depth_reached = max(depth_reached, len(refined))
                dl = description_length(
                    len(refined), kind=LOCATION, params=self.dl_params
                )
                entry = ScoredSubgroup(
                    description=refined,
                    indices=np.flatnonzero(child_mask),
                    observed_mean=np.array([mean]),
                    score=PatternScore(ic=ic, dl=dl),
                )
                log.append(entry)
                if best is None or entry.si > best.si:
                    best = entry
                children.append((ic, refined, child_mask))

            # Push the weakest child first so the strongest is explored next.
            children.sort(key=lambda c: c[0])
            for ic, refined, child_mask in children:
                stack.append((refined, child_mask, depth + 1))

        log.sort(key=lambda e: -e.si)
        del log[self.config.top_k:]
        self.stats = BranchBoundStats(
            nodes_expanded=expanded,
            nodes_pruned=pruned,
            nodes_evaluated=evaluated,
        )
        return SearchResult(
            best=best,
            log=tuple(log),
            n_evaluated=evaluated,
            depth_reached=depth_reached,
            expired=expired,
        )


def find_optimal_location(
    dataset,
    *,
    target: str | None = None,
    config: SearchConfig = SearchConfig(),
    dl_params: DLParams = DLParams(),
) -> SearchResult:
    """Convenience wrapper: optimal location pattern of one target column.

    ``target`` defaults to the dataset's only target attribute; multi-
    target datasets must name one.
    """
    if target is None:
        if dataset.n_targets != 1:
            raise SearchError(
                "dataset has several targets; pass target=<name>"
            )
        target = dataset.target_names[0]
    narrowed = dataset.with_targets([target])
    model = BackgroundModel.from_targets(narrowed.targets)
    operator = RefinementOperator(
        narrowed,
        n_split_points=config.n_split_points,
        strategy=config.split_strategy,
        attributes=config.attributes,
    )
    search = BranchAndBoundLocationSearch(
        operator, model, narrowed.targets, config=config, dl_params=dl_params
    )
    return search.run()
