"""The front door: one :class:`Workspace`, three execution modes.

A :class:`~repro.spec.MiningSpec` says *what* to mine; the Workspace
decides *where it runs*:

- :meth:`Workspace.mine` — inline, blocking, returns the whole
  :class:`~repro.engine.jobs.JobResult`;
- :meth:`Workspace.stream` — inline, but yields each
  :class:`~repro.search.results.MiningIteration` the moment it is
  mined (the synchronous substrate for a live UI);
- :meth:`Workspace.session` — interactive: a
  :class:`~repro.session.MiningSession` with undo/save/resume;
- :meth:`Workspace.submit` / :meth:`Workspace.result` — asynchronous,
  through a lazily created :class:`~repro.engine.service.MiningService`.

All modes route the same spec through the same substrate
(:class:`~repro.search.miner.SubgroupDiscovery` via the job runner), so
they return byte-identical patterns — the equivalence the test suite
enforces. Specs may be passed as :class:`~repro.spec.MiningSpec`
instances or as plain dicts (the JSON form), so a saved spec file drives
everything::

    from repro import Workspace, MiningSpec

    spec = MiningSpec.build("synthetic", kind="spread", n_iterations=3)
    with Workspace() as ws:
        for iteration in ws.stream(spec):      # live
            print(iteration.location)
        job_id = ws.submit(spec)               # queued (cache hit: free)
        result = ws.result(job_id)
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.cache import BeliefCache, resolve_belief_cache
from repro.engine.executor import resolve_executor
from repro.engine.jobs import JobResult, run_job
from repro.engine.service import JobStatus, MiningService
from repro.errors import EngineError, SearchError
from repro.events import MiningObserver, broadcast
from repro.obs.profile import ProfileReport, profile_block
from repro.search.miner import SubgroupDiscovery
from repro.search.results import MiningIteration
from repro.session import MiningSession
from repro.spec import MiningSpec


def _as_spec(spec: MiningSpec | dict) -> MiningSpec:
    """Accept a MiningSpec or its JSON-dict form."""
    if isinstance(spec, MiningSpec):
        return spec
    return MiningSpec.from_dict(spec)


def _spec_executor(spec: MiningSpec):
    """The executor the spec's executor section describes."""
    return resolve_executor(
        spec.executor.workers,
        start_method=spec.executor.start_method,
        shared_memory=spec.executor.shared_memory,
    )


def _load_job_dataset(job):
    """The (cached) dataset a job references."""
    from repro.engine.cache import load_dataset_cached

    return load_dataset_cached(job.dataset, seed=job.dataset_seed, **job.dataset_kwargs)


def _require_beam(job) -> None:
    """Iterative entry points only make sense for the beam strategy."""
    if job.strategy != "beam":
        raise SearchError(
            f"only the 'beam' strategy mines iteratively; "
            f"{job.strategy!r} runs via Workspace.mine/submit"
        )


def _substrate_kwargs(spec: MiningSpec, job, observer, belief_cache) -> dict:
    """The spec-derived kwargs shared by the miner and session substrates.

    One wiring path for :func:`build_miner` and
    :meth:`Workspace.session`, so a new job field cannot reach one and
    silently miss the other (which would break the byte-identical
    session-equals-mine contract).
    """
    return {
        "config": job.config,
        "dl_params": job.dl_params(),
        "seed": job.seed,
        "prior": job.build_prior(),
        "executor": _spec_executor(spec),
        "observer": observer,
        "belief_cache": belief_cache,
    }


def build_miner(
    spec: MiningSpec | dict,
    *,
    observer: MiningObserver | None = None,
    belief_cache: BeliefCache | bool | None = None,
) -> SubgroupDiscovery:
    """Construct the iterative miner a beam-strategy spec describes.

    Exposed for callers that want to drive the substrate directly (the
    Workspace uses it for :meth:`Workspace.stream`); requires
    ``search.strategy == "beam"``. ``belief_cache`` opts the miner into
    belief-state prefix reuse (see
    :class:`~repro.engine.cache.BeliefCache`; ``True`` = the
    process-wide cache).
    """
    spec = _as_spec(spec)
    job = spec.to_job()
    _require_beam(job)
    return SubgroupDiscovery(
        _load_job_dataset(job),
        targets=list(job.targets) if job.targets is not None else None,
        **_substrate_kwargs(spec, job, observer, resolve_belief_cache(belief_cache)),
    )


class Workspace:
    """One front door over inline, interactive, and service execution.

    Parameters
    ----------
    observer:
        Default :class:`~repro.events.MiningObserver` attached to every
        run started through this workspace; per-call observers compose
        with it. Note that a *shared* service has one event stream: an
        observer attached via ``service=`` hears every job on that
        service while attached (detached again on :meth:`close`), not
        only this workspace's submissions.
    service:
        An existing :class:`~repro.engine.service.MiningService` to
        submit through. When omitted, one is created lazily on the
        first :meth:`submit` with ``service_backend``/``service_workers``
        and shut down by :meth:`close` (or the context manager).
    service_backend / service_workers:
        Configuration of the lazily created service. ``service_backend``
        defaults to ``None``, meaning: honor the first submitted spec's
        ``executor.backend`` (falling back to ``"process"`` when the
        service is created without a spec in hand).
    belief_cache:
        Belief-state prefix cache for this workspace's *inline* modes
        (``mine``/``stream``/``session``): ``True`` shares the
        process-wide :data:`~repro.engine.cache.BELIEF_CACHE`, an
        instance scopes reuse to its holders, and the default ``None``
        leaves inline execution cache-free. Sessions and runs sharing a
        cache and a prefix of assimilated patterns replay the prefix
        bit-identically instead of re-mining it. Independently, a
        lazily created service keeps its own default (the shared cache)
        unless this is set, in which case it is passed through.
    """

    def __init__(
        self,
        *,
        observer: MiningObserver | None = None,
        service: MiningService | None = None,
        service_backend: str | None = None,
        service_workers: int = 2,
        belief_cache: BeliefCache | bool | None = None,
    ) -> None:
        self.observer = observer
        #: The :class:`~repro.obs.profile.ProfileReport` of the last
        #: ``mine(..., profile=...)`` call (``None`` until one runs).
        self.last_profile: ProfileReport | None = None
        self._belief_cache_arg = belief_cache
        self.belief_cache = resolve_belief_cache(belief_cache)
        self._service = service
        self._owns_service = False
        self._service_backend = service_backend
        self._service_workers = service_workers
        if service is not None:
            # A shared service has one event stream, so this observer
            # hears every job on it while attached (see class docstring);
            # close() detaches it again.
            service.add_observer(observer)

    # ------------------------------------------------------------------ #
    # Inline execution
    # ------------------------------------------------------------------ #
    def mine(
        self,
        spec: MiningSpec | dict,
        *,
        observer: MiningObserver | None = None,
        profile=False,
    ) -> JobResult:
        """Run one spec to completion, inline, and return its result.

        Candidate and iteration events fire live on the composed
        observers; ``on_job`` fires once at the end.

        ``profile`` opts into per-phase timing: any truthy value
        captures a :class:`~repro.obs.profile.ProfileReport` (a diff of
        the already-instrumented metrics registry around the run, so
        profiling adds no measurement cost) into :attr:`last_profile`; a
        *callable* additionally receives the rendered report text
        (``profile=print`` prints the table). The mined result is
        byte-identical either way.
        """
        spec = _as_spec(spec)
        composed = broadcast(self.observer, observer)
        block = profile_block() if profile else None
        executor = _spec_executor(spec)
        try:
            if block is not None:
                block.__enter__()
            result = run_job(
                spec.to_job(),
                executor=executor,
                observer=composed,
                belief_cache=self.belief_cache,
            )
        finally:
            if block is not None:
                block.__exit__()
                self.last_profile = block.report
            # A shared-memory executor holds a persistent worker pool;
            # release it deterministically, not at garbage collection.
            executor.close()
        if callable(profile):
            profile(self.last_profile.format())
        if composed is not None:
            composed.on_job(result)
        return result

    def stream(
        self, spec: MiningSpec | dict, *, observer: MiningObserver | None = None
    ) -> Iterator[MiningIteration]:
        """Yield each mining iteration as it is mined.

        For the iterative beam strategy this is true streaming — the
        pattern is in your hands while the next search is still to run;
        the single-shot strategies yield their one iteration. Observers
        see ``on_candidate``/``on_iteration`` events only (``on_job`` is
        :meth:`mine`'s whole-result event, identical for every
        strategy). This generator is the synchronous substrate of the
        ROADMAP's async/streaming front-end. The spec is validated
        eagerly, at this call — only the mining itself is lazy.
        """
        spec = _as_spec(spec)
        composed = broadcast(self.observer, observer)
        return self._stream(spec, composed)

    def _stream(self, spec: MiningSpec, composed) -> Iterator[MiningIteration]:
        if spec.search.strategy != "beam":
            executor = _spec_executor(spec)
            try:
                result = run_job(
                    spec.to_job(), executor=executor, observer=composed
                )
            finally:
                executor.close()
            yield from result.iterations
            return
        miner = build_miner(spec, observer=composed, belief_cache=self.belief_cache)
        try:
            for _ in range(spec.search.n_iterations):
                yield miner.step(
                    kind=spec.search.kind, sparsity=spec.search.sparsity
                )
        finally:
            # Runs when the loop ends *and* when the caller abandons the
            # generator mid-iteration — either way the miner's executor
            # (possibly a persistent warm pool) is released now.
            miner.executor.close()

    # ------------------------------------------------------------------ #
    # Interactive execution
    # ------------------------------------------------------------------ #
    def session(
        self, spec: MiningSpec | dict, *, observer: MiningObserver | None = None
    ) -> MiningSession:
        """An interactive (undo/save/resume) session for a beam spec.

        The session ignores ``search.n_iterations`` — stepping is the
        caller's dialogue — but honors every other section (including
        ``search.kind``/``sparsity`` as the default for a bare
        ``step()``), and its steps are byte-identical to :meth:`mine`'s
        iterations. Close the session (it is a context manager) when
        done: a parallel spec gives it a worker pool to release.
        """
        spec = _as_spec(spec)
        job = spec.to_job()
        _require_beam(job)
        dataset = _load_job_dataset(job)
        if job.targets is not None:
            dataset = dataset.with_targets(list(job.targets))
        return MiningSession(
            dataset,
            kind=spec.search.kind,
            sparsity=spec.search.sparsity,
            **_substrate_kwargs(
                spec, job, broadcast(self.observer, observer), self.belief_cache
            ),
        )

    # ------------------------------------------------------------------ #
    # Service execution
    # ------------------------------------------------------------------ #
    @property
    def service(self) -> MiningService:
        """The backing service, created on first use."""
        return self._ensure_service(None)

    def _ensure_service(self, backend_hint: str | None) -> MiningService:
        if self._service is None:
            backend = self._service_backend or backend_hint or "process"
            self._service = MiningService(
                max_workers=self._service_workers,
                backend=backend,
                observer=self.observer,
                # None = keep the service's own default (the shared
                # process-wide cache); an explicit setting wins.
                belief_cache=(
                    True
                    if self._belief_cache_arg is None
                    else self._belief_cache_arg
                ),
            )
            self._owns_service = True
        return self._service

    def submit(
        self, spec: MiningSpec | dict, *, observer: MiningObserver | None = None
    ) -> str:
        """Queue a spec on the service; returns the job id.

        If this submit has to create the lazy service, the spec's
        ``executor.backend`` picks its pool (unless the Workspace was
        constructed with an explicit ``service_backend``), and the
        spec's ``executor.workers`` parallelizes the search inside the
        job. ``observer`` is a *per-job* observer hearing only this
        submission's events (see
        :meth:`~repro.engine.service.MiningService.submit`); it does not
        compose with the workspace-wide observer, which listens
        service-wide.
        """
        spec = _as_spec(spec)
        return self._ensure_service(spec.executor.backend).submit(
            spec.to_job(),
            workers=spec.executor.workers,
            start_method=spec.executor.start_method,
            shared_memory=spec.executor.shared_memory,
            observer=observer,
        )

    def _running_service(self) -> MiningService:
        """The service, required to already exist (read-only queries)."""
        if self._service is None:
            raise EngineError(
                "no service is running in this workspace — submit a spec first"
            )
        return self._service

    def status(self, job_id: str) -> JobStatus:
        """Lifecycle state of a submitted spec (requires a prior submit)."""
        return self._running_service().status(job_id)

    def result(self, job_id: str, timeout: float | None = None) -> JobResult:
        """Block until a submitted spec finishes; returns its result."""
        return self._running_service().result(job_id, timeout=timeout)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the lazily created service, if any.

        An externally provided service is left running, but this
        workspace's observer is detached from it so later workspaces
        sharing the service do not inherit it.
        """
        if self._service is None:
            return
        if self._owns_service:
            self._service.shutdown(wait=True)
            self._service = None
            self._owns_service = False
        else:
            self._service.remove_observer(self.observer)

    def __enter__(self) -> "Workspace":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
