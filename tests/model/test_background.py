"""Tests for the stateful background model."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.background import BackgroundModel
from repro.model.patterns import LocationConstraint, SpreadConstraint
from repro.model.priors import Prior, empirical_prior


@pytest.fixture()
def targets(rng):
    return rng.standard_normal((60, 3)) + np.array([1.0, -2.0, 0.5])


@pytest.fixture()
def model(targets):
    return BackgroundModel.from_targets(targets)


class TestConstruction:
    def test_from_targets_uses_empirical_prior(self, targets, model):
        np.testing.assert_allclose(model.prior.mean, targets.mean(axis=0))
        assert model.n_rows == 60
        assert model.dim == 3
        assert model.n_blocks == 1

    def test_initial_params_shared(self, model):
        np.testing.assert_allclose(model.mean_of(0), model.mean_of(59))
        np.testing.assert_allclose(model.cov_of(3), model.cov_of(17))

    def test_point_means_shape(self, model):
        assert model.point_means().shape == (60, 3)

    def test_invalid_rows(self):
        with pytest.raises(ModelError):
            BackgroundModel(0, Prior(np.zeros(2), np.eye(2)))

    def test_1d_targets(self, rng):
        model = BackgroundModel.from_targets(rng.standard_normal(30))
        assert model.dim == 1


class TestLocationAssimilation:
    def test_constraint_enforced_exactly(self, targets, model):
        constraint = LocationConstraint.from_data(targets, np.arange(10))
        model.assimilate(constraint)
        np.testing.assert_allclose(
            model.expected_subgroup_mean(np.arange(10)), constraint.mean, atol=1e-10
        )
        assert model.constraint_residual(constraint) < 1e-10

    def test_blocks_split(self, targets, model):
        model.assimilate(LocationConstraint.from_data(targets, np.arange(10)))
        assert model.n_blocks == 2

    def test_outside_points_untouched(self, targets, model):
        before = model.mean_of(50)
        model.assimilate(LocationConstraint.from_data(targets, np.arange(10)))
        np.testing.assert_array_equal(model.mean_of(50), before)

    def test_covariances_unchanged_by_location(self, targets, model):
        before = model.cov_of(0)
        model.assimilate(LocationConstraint.from_data(targets, np.arange(10)))
        np.testing.assert_array_equal(model.cov_of(0), before)

    def test_dimension_mismatch(self, model):
        with pytest.raises(ModelError, match="dimension"):
            model.assimilate(LocationConstraint(np.arange(3), np.zeros(2)))

    def test_disjoint_constraints_both_hold(self, targets, model):
        c1 = LocationConstraint.from_data(targets, np.arange(10))
        c2 = LocationConstraint.from_data(targets, np.arange(20, 35))
        model.assimilate(c1).assimilate(c2)
        assert model.constraint_residual(c1) < 1e-10
        assert model.constraint_residual(c2) < 1e-10
        assert model.max_residual() < 1e-10


class TestSpreadAssimilation:
    def test_constraint_enforced_exactly(self, targets, model):
        w = np.array([1.0, 0.0, 0.0])
        constraint = SpreadConstraint.from_data(targets, np.arange(15), w)
        model.assimilate(constraint)
        achieved = model.expected_spread(np.arange(15), w, constraint.center)
        assert achieved == pytest.approx(constraint.variance, rel=1e-8)

    def test_covariance_stays_pd(self, targets, model):
        w = np.array([0.0, 1.0, 0.0])
        model.assimilate(SpreadConstraint.from_data(targets, np.arange(15), w))
        for b in range(model.n_blocks):
            np.linalg.cholesky(model.block_cov(b))  # raises if not PD

    def test_after_location_means_at_center(self, targets, model):
        """The paper's two-step: location first, then spread."""
        idx = np.arange(12)
        location = LocationConstraint.from_data(targets, idx)
        model.assimilate(location)
        w = np.array([0.0, 0.0, 1.0])
        spread = SpreadConstraint.from_data(targets, idx, w)
        model.assimilate(spread)
        # Means inside stay at the observed mean: the spread tilt is
        # centred there, so it does not move them.
        np.testing.assert_allclose(
            model.expected_subgroup_mean(idx), location.mean, atol=1e-8
        )


class TestAccessors:
    def test_as_mask_from_indices(self, model):
        mu, cov = model.subgroup_mean_distribution(np.array([1, 5, 7]))
        assert mu.shape == (3,)
        assert cov.shape == (3, 3)

    def test_empty_subgroup_rejected(self, model):
        with pytest.raises(ModelError, match="empty"):
            model.expected_subgroup_mean(np.zeros(60, dtype=bool))

    def test_mask_wrong_shape(self, model):
        with pytest.raises(ModelError, match="shape"):
            model.expected_subgroup_mean(np.zeros(10, dtype=bool))

    def test_subgroup_cov_scales_inversely_with_size(self, model):
        _, cov_small = model.subgroup_mean_distribution(np.arange(5))
        _, cov_large = model.subgroup_mean_distribution(np.arange(50))
        assert np.trace(cov_large) < np.trace(cov_small)

    def test_pooled_cov_initial(self, model):
        np.testing.assert_allclose(model.pooled_cov(np.arange(10)), model.prior.cov)

    def test_logpdf_matches_sum(self, targets, model):
        from repro.model.gaussian import mvn_logpdf

        expected = sum(
            mvn_logpdf(targets[i], model.prior.mean, model.prior.cov)
            for i in range(10)
        )
        partial = BackgroundModel(10, model.prior)
        assert partial.logpdf(targets[:10]) == pytest.approx(expected, rel=1e-10)

    def test_logpdf_shape_check(self, model, rng):
        with pytest.raises(ModelError, match="shape"):
            model.logpdf(rng.standard_normal((10, 3)))


class TestCopy:
    def test_copy_is_independent(self, targets, model):
        clone = model.copy()
        model.assimilate(LocationConstraint.from_data(targets, np.arange(10)))
        assert clone.n_blocks == 1
        assert model.n_blocks == 2
        assert len(clone.constraints) == 0

    def test_copy_preserves_state(self, targets, model):
        model.assimilate(LocationConstraint.from_data(targets, np.arange(10)))
        clone = model.copy()
        np.testing.assert_array_equal(clone.labels, model.labels)
        np.testing.assert_allclose(clone.mean_of(0), model.mean_of(0))
        assert len(clone.constraints) == 1


class TestRefit:
    def test_refit_empty_resets(self, targets, model):
        model.assimilate(LocationConstraint.from_data(targets, np.arange(10)))
        sweeps = model.refit([])
        assert sweeps == 0
        assert model.n_blocks == 1
        np.testing.assert_allclose(model.mean_of(0), model.prior.mean)

    def test_refit_disjoint_one_sweep(self, targets, model):
        constraints = [
            LocationConstraint.from_data(targets, np.arange(10)),
            LocationConstraint.from_data(targets, np.arange(20, 30)),
        ]
        assert model.refit(constraints) == 1
        assert model.max_residual() < 1e-9

    def test_refit_overlapping_converges(self, targets, model):
        constraints = [
            LocationConstraint.from_data(targets, np.arange(0, 20)),
            LocationConstraint.from_data(targets, np.arange(10, 30)),
            LocationConstraint.from_data(targets, np.arange(5, 25)),
        ]
        model.refit(constraints)
        assert model.max_residual() < 1e-9

    def test_refit_mixed_kinds(self, targets, model):
        w = np.array([1.0, 0.0, 0.0])
        constraints = [
            LocationConstraint.from_data(targets, np.arange(0, 20)),
            SpreadConstraint.from_data(targets, np.arange(0, 20), w),
            LocationConstraint.from_data(targets, np.arange(15, 40)),
        ]
        model.refit(constraints)
        assert model.max_residual() < 1e-8

    def test_refit_matches_incremental_for_disjoint(self, targets):
        """For non-overlapping patterns, refit == incremental assimilation."""
        c1 = LocationConstraint.from_data(targets, np.arange(10))
        c2 = LocationConstraint.from_data(targets, np.arange(30, 45))
        incremental = BackgroundModel.from_targets(targets)
        incremental.assimilate(c1).assimilate(c2)
        refitted = BackgroundModel.from_targets(targets)
        refitted.refit([c1, c2])
        np.testing.assert_allclose(
            incremental.point_means(), refitted.point_means(), atol=1e-9
        )
