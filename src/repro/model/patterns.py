"""Pattern constraints: what assimilating a pattern tells the model.

These records carry exactly the information the background model needs
to perform its KL-minimal update — the extension and the communicated
statistics — independent of how the pattern was found or described.
The search layer wraps them together with intentions and SI scores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.utils.validation import check_unit_vector, check_vector


def _normalize_indices(indices, n_rows: int | None = None) -> np.ndarray:
    """Accept a boolean mask or an index array; return sorted unique indices."""
    arr = np.asarray(indices)
    if arr.dtype == bool:
        arr = np.flatnonzero(arr)
    else:
        arr = np.unique(arr.astype(np.int64))
    if arr.size == 0:
        raise ModelError("pattern extension must be non-empty")
    if arr.min() < 0:
        raise ModelError("pattern extension contains negative indices")
    if n_rows is not None and arr.max() >= n_rows:
        raise ModelError(
            f"pattern extension index {arr.max()} out of range for {n_rows} rows"
        )
    arr.setflags(write=False)
    return arr


@dataclass(frozen=True)
class LocationConstraint:
    """A location pattern (§II-A): subgroup extension + its mean vector."""

    indices: np.ndarray
    mean: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", _normalize_indices(self.indices))
        mean = check_vector(self.mean, "mean")
        mean.setflags(write=False)
        object.__setattr__(self, "mean", mean)

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])

    @classmethod
    def from_data(cls, targets: np.ndarray, indices) -> "LocationConstraint":
        """Build the constraint carrying the *empirical* subgroup mean."""
        targets = np.asarray(targets, dtype=float)
        idx = _normalize_indices(indices, targets.shape[0])
        return cls(idx, targets[idx].mean(axis=0))

    def mask(self, n_rows: int) -> np.ndarray:
        """Boolean extension mask over ``n_rows`` rows."""
        out = np.zeros(n_rows, dtype=bool)
        out[self.indices] = True
        return out


@dataclass(frozen=True)
class SpreadConstraint:
    """A spread pattern: extension, unit direction, variance, and center.

    ``center`` is the empirical subgroup mean the statistic ``g_I^w`` is
    computed around (Eq. 2). The paper only ever presents spread patterns
    after the corresponding location pattern, so at update time the model
    means inside the extension usually equal ``center``; the constraint
    still records it explicitly so the update is well-defined on its own.
    """

    indices: np.ndarray
    direction: np.ndarray
    variance: float
    center: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", _normalize_indices(self.indices))
        direction = check_unit_vector(self.direction, "direction")
        direction.setflags(write=False)
        object.__setattr__(self, "direction", direction)
        center = check_vector(self.center, "center", size=direction.shape[0])
        center.setflags(write=False)
        object.__setattr__(self, "center", center)
        variance = float(self.variance)
        if not variance > 0.0:
            raise ModelError(
                f"spread variance must be strictly positive, got {variance}"
            )
        object.__setattr__(self, "variance", variance)

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])

    @classmethod
    def from_data(cls, targets: np.ndarray, indices, direction) -> "SpreadConstraint":
        """Build the constraint carrying the empirical variance along ``direction``."""
        targets = np.asarray(targets, dtype=float)
        idx = _normalize_indices(indices, targets.shape[0])
        direction = check_unit_vector(direction, "direction")
        center = targets[idx].mean(axis=0)
        projections = (targets[idx] - center) @ direction
        variance = float(np.mean(projections**2))
        return cls(idx, direction, variance, center)

    def mask(self, n_rows: int) -> np.ndarray:
        """Boolean extension mask over ``n_rows`` rows."""
        out = np.zeros(n_rows, dtype=bool)
        out[self.indices] = True
        return out


#: Union type accepted by BackgroundModel.assimilate / refit.
PatternConstraint = LocationConstraint | SpreadConstraint
