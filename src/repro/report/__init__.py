"""Plot-free reporting: figure data series, tables, ASCII charts, text maps.

The paper's figures are reproduced as the *data series* behind each plot
(this environment has no plotting stack); this package computes those
series and renders terminal-friendly views for the examples and the CLI.
"""

from repro.report.series import (
    cdf_series,
    histogram_series,
    kde_series,
    normal_cdf_series,
)
from repro.report.tables import format_table
from repro.report.ascii import bar_chart, render_series, sparkline, text_map
from repro.report.live import LiveReporter

__all__ = [
    "kde_series",
    "cdf_series",
    "normal_cdf_series",
    "histogram_series",
    "format_table",
    "bar_chart",
    "sparkline",
    "render_series",
    "text_map",
    "LiveReporter",
]
