"""Shared fixtures: datasets and models are expensive, so session-scope them."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    make_crime,
    make_mammals,
    make_socio,
    make_synthetic,
    make_water,
)
from repro.model import BackgroundModel


@pytest.fixture(scope="session")
def synthetic_dataset():
    return make_synthetic(0)


@pytest.fixture(scope="session")
def crime_dataset():
    return make_crime(0)


@pytest.fixture(scope="session")
def mammals_dataset():
    return make_mammals(0)


@pytest.fixture(scope="session")
def socio_dataset():
    return make_socio(0)


@pytest.fixture(scope="session")
def water_dataset():
    return make_water(0)


@pytest.fixture()
def synthetic_model(synthetic_dataset):
    """A fresh empirical-prior model per test (models are mutable)."""
    return BackgroundModel.from_targets(synthetic_dataset.targets)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
