"""Property-based tests for the chi-squared mixture approximation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.chi2mix import Chi2Mixture

coefficients = st.lists(
    st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    min_size=1,
    max_size=12,
).map(np.asarray)

weights_for = st.lists(
    st.integers(min_value=1, max_value=50), min_size=1, max_size=12
)


class TestCumulantMatching:
    @given(a=coefficients)
    @settings(max_examples=100, deadline=None)
    def test_first_three_cumulants(self, a):
        mixture = Chi2Mixture(a)
        a1, a2, a3 = a.sum(), (a**2).sum(), (a**3).sum()
        assert mixture.alpha * mixture.dof + mixture.beta == pytest.approx(
            a1, rel=1e-9
        )
        assert 2 * mixture.alpha**2 * mixture.dof == pytest.approx(2 * a2, rel=1e-9)
        assert 8 * mixture.alpha**3 * mixture.dof == pytest.approx(8 * a3, rel=1e-9)

    @given(a=coefficients)
    @settings(max_examples=100, deadline=None)
    def test_alpha_and_dof_positive(self, a):
        mixture = Chi2Mixture(a)
        assert mixture.alpha > 0
        assert mixture.dof > 0

    @given(a=coefficients)
    @settings(max_examples=100, deadline=None)
    def test_beta_below_mean(self, a):
        """The support start must lie below the mean."""
        mixture = Chi2Mixture(a)
        assert mixture.beta < mixture.mean

    @given(a=st.floats(min_value=1e-3, max_value=1e3), n=st.integers(1, 40))
    @settings(max_examples=50, deadline=None)
    def test_uniform_coefficients_dof_equals_count(self, a, n):
        mixture = Chi2Mixture(np.full(n, a))
        assert mixture.dof == pytest.approx(n, rel=1e-9)
        assert mixture.beta == pytest.approx(0.0, abs=1e-6 * a * n)


class TestDistributionProperties:
    @given(a=coefficients, q=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=60, deadline=None)
    def test_ppf_cdf_inverse(self, a, q):
        mixture = Chi2Mixture(a)
        assert mixture.cdf(mixture.ppf(q)) == pytest.approx(q, abs=1e-8)

    @given(a=coefficients)
    @settings(max_examples=60, deadline=None)
    def test_cdf_monotone(self, a):
        mixture = Chi2Mixture(a)
        grid = np.linspace(mixture.beta, mixture.mean + 5 * np.sqrt(mixture.variance), 64)
        cdf = mixture.cdf(grid)
        assert np.all(np.diff(cdf) >= -1e-12)

    @given(a=coefficients)
    @settings(max_examples=60, deadline=None)
    def test_logpdf_finite_everywhere(self, a):
        mixture = Chi2Mixture(a)
        grid = np.linspace(
            mixture.beta - 1.0, mixture.mean + 10 * np.sqrt(mixture.variance), 32
        )
        assert np.all(np.isfinite(mixture.logpdf(grid)))

    @given(a=coefficients, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_weights_equivalent_to_repetition(self, a, data):
        reps = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=5),
                min_size=len(a), max_size=len(a),
            )
        )
        weighted = Chi2Mixture(a, weights=np.asarray(reps, dtype=float))
        expanded = Chi2Mixture(np.repeat(a, reps))
        assert weighted.alpha == pytest.approx(expanded.alpha, rel=1e-9)
        assert weighted.beta == pytest.approx(expanded.beta, rel=1e-7, abs=1e-9)
        assert weighted.dof == pytest.approx(expanded.dof, rel=1e-9)
