"""Tests for the Dataset/Column schema."""

import numpy as np
import pytest

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.errors import DataError


def small_dataset():
    columns = [
        Column("num", AttributeKind.NUMERIC, np.array([1.0, 2.0, 3.0, 4.0])),
        Column("cat", AttributeKind.CATEGORICAL, np.array(["a", "b", "a", "c"])),
        Column("bin", AttributeKind.BINARY, np.array([0.0, 1.0, 1.0, 0.0])),
        Column("ord", AttributeKind.ORDINAL, np.array([0.0, 1.0, 3.0, 5.0])),
    ]
    targets = np.arange(8.0).reshape(4, 2)
    return Dataset("toy", columns, targets, ["t1", "t2"], {"truth": np.arange(4)})


class TestColumn:
    def test_binary_validation(self):
        with pytest.raises(DataError, match="binary"):
            Column("b", AttributeKind.BINARY, np.array([0.0, 2.0]))

    def test_numeric_rejects_nan(self):
        with pytest.raises(DataError, match="NaN"):
            Column("x", AttributeKind.NUMERIC, np.array([1.0, np.nan]))

    def test_numeric_rejects_strings(self):
        with pytest.raises(DataError, match="non-numeric"):
            Column("x", AttributeKind.NUMERIC, np.array(["a", "b"]))

    def test_categorical_coerces_to_str(self):
        col = Column("c", AttributeKind.CATEGORICAL, np.array([1, 2, 1]))
        assert col.values.dtype.kind in ("U", "S", "O")

    def test_empty_name_rejected(self):
        with pytest.raises(DataError, match="non-empty"):
            Column("", AttributeKind.NUMERIC, np.array([1.0]))

    def test_rejects_2d(self):
        with pytest.raises(DataError, match="1-D"):
            Column("x", AttributeKind.NUMERIC, np.zeros((2, 2)))

    def test_domain_sorted_unique(self):
        col = Column("x", AttributeKind.NUMERIC, np.array([3.0, 1.0, 3.0]))
        np.testing.assert_array_equal(col.domain(), [1.0, 3.0])

    def test_is_constant(self):
        assert Column("x", AttributeKind.NUMERIC, np.array([2.0, 2.0])).is_constant()
        assert not Column("x", AttributeKind.NUMERIC, np.array([1.0, 2.0])).is_constant()

    def test_orderable_kinds(self):
        assert AttributeKind.NUMERIC.is_orderable
        assert AttributeKind.ORDINAL.is_orderable
        assert not AttributeKind.CATEGORICAL.is_orderable
        assert not AttributeKind.BINARY.is_orderable


class TestDataset:
    def test_shapes(self):
        ds = small_dataset()
        assert ds.n_rows == 4
        assert ds.n_targets == 2
        assert ds.n_descriptions == 4
        assert len(ds) == 4

    def test_1d_targets_promoted(self):
        ds = Dataset("t", [], np.array([1.0, 2.0]), ["y"])
        assert ds.targets.shape == (2, 1)

    def test_row_count_mismatch(self):
        with pytest.raises(DataError, match="rows"):
            Dataset(
                "t",
                [Column("x", AttributeKind.NUMERIC, np.array([1.0]))],
                np.zeros((2, 1)),
                ["y"],
            )

    def test_duplicate_column_names(self):
        cols = [
            Column("x", AttributeKind.NUMERIC, np.array([1.0])),
            Column("x", AttributeKind.NUMERIC, np.array([2.0])),
        ]
        with pytest.raises(DataError, match="duplicate"):
            Dataset("t", cols, np.zeros((1, 1)), ["y"])

    def test_duplicate_target_names(self):
        with pytest.raises(DataError, match="duplicate"):
            Dataset("t", [], np.zeros((1, 2)), ["y", "y"])

    def test_name_collision_between_roles(self):
        cols = [Column("y", AttributeKind.NUMERIC, np.array([1.0]))]
        with pytest.raises(DataError, match="both"):
            Dataset("t", cols, np.zeros((1, 1)), ["y"])

    def test_nan_targets_rejected(self):
        with pytest.raises(DataError, match="NaN"):
            Dataset("t", [], np.array([[np.nan]]), ["y"])

    def test_column_lookup(self):
        ds = small_dataset()
        assert ds.column("num").name == "num"
        assert "num" in ds
        assert "nope" not in ds
        with pytest.raises(DataError, match="unknown"):
            ds.column("nope")

    def test_target_lookup(self):
        ds = small_dataset()
        assert ds.target_index("t2") == 1
        np.testing.assert_array_equal(ds.target("t1"), [0.0, 2.0, 4.0, 6.0])
        with pytest.raises(DataError, match="unknown"):
            ds.target("nope")

    def test_with_targets(self):
        ds = small_dataset().with_targets(["t2"])
        assert ds.target_names == ["t2"]
        assert ds.targets.shape == (4, 1)
        np.testing.assert_array_equal(ds.targets[:, 0], [1.0, 3.0, 5.0, 7.0])

    def test_subset_bool_mask(self):
        ds = small_dataset()
        sub = ds.subset(np.array([True, False, True, False]))
        assert sub.n_rows == 2
        np.testing.assert_array_equal(sub.column("num").values, [1.0, 3.0])
        np.testing.assert_array_equal(sub.metadata["truth"], [0, 2])

    def test_subset_indices(self):
        sub = small_dataset().subset(np.array([3, 1]))
        np.testing.assert_array_equal(sub.column("num").values, [4.0, 2.0])

    def test_empirical_moments(self):
        ds = small_dataset()
        np.testing.assert_allclose(ds.empirical_mean(), ds.targets.mean(axis=0))
        cov = ds.empirical_cov()
        centered = ds.targets - ds.targets.mean(axis=0)
        np.testing.assert_allclose(cov, centered.T @ centered / 4)

    def test_summary_mentions_columns(self):
        text = small_dataset().summary()
        for name in ("num", "cat", "bin", "ord", "t1"):
            assert name in text


class TestWeights:
    def test_default_is_unweighted(self):
        ds = small_dataset()
        assert not ds.has_weights
        assert ds.weights is None
        assert ds.total_weight() == 4.0

    def test_with_weights_attaches_copy(self):
        source = np.array([1.0, 2.0, 0.5, 1.5])
        ds = small_dataset().with_weights(source)
        assert ds.has_weights
        assert ds.total_weight() == pytest.approx(5.0)
        source[0] = 99.0  # the dataset must hold its own copy
        assert ds.weights[0] == 1.0

    def test_with_weights_none_removes(self):
        ds = small_dataset().with_weights(np.ones(4)).with_weights(None)
        assert not ds.has_weights

    def test_weights_propagate_through_subset(self):
        ds = small_dataset().with_weights(np.array([1.0, 2.0, 3.0, 4.0]))
        sub = ds.subset(np.array([3, 1]))
        np.testing.assert_array_equal(sub.weights, [4.0, 2.0])

    def test_weights_propagate_through_with_targets(self):
        ds = small_dataset().with_weights(np.array([1.0, 2.0, 3.0, 4.0]))
        np.testing.assert_array_equal(
            ds.with_targets(["t2"]).weights, [1.0, 2.0, 3.0, 4.0]
        )

    @pytest.mark.parametrize(
        "bad",
        [
            np.ones(3),                      # wrong length
            np.ones((4, 1)),                 # wrong ndim
            np.array([1.0, 0.0, 1.0, 1.0]),  # zero
            np.array([1.0, -1.0, 1.0, 1.0]),  # negative
            np.array([1.0, np.nan, 1.0, 1.0]),
            np.array([1.0, np.inf, 1.0, 1.0]),
        ],
    )
    def test_invalid_weights_rejected(self, bad):
        with pytest.raises(DataError):
            small_dataset().with_weights(bad)
