"""Tests for the executor backends."""

import pytest

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.engine.executor import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    normalize_workers,
    resolve_executor,
    resolve_pool,
)
from repro.errors import EngineError


def _double(item):
    return item * 2


def _add_context(context, item):
    return context + item


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(_double, [3, 1, 2]) == [6, 2, 4]

    def test_session_passes_context(self):
        with SerialExecutor().session(10) as session:
            assert session.map(_add_context, [1, 2, 3]) == [11, 12, 13]

    def test_parallelism_is_one(self):
        assert SerialExecutor().parallelism == 1


class TestProcessExecutor:
    def test_map_preserves_order(self):
        assert ProcessExecutor(2).map(_double, [3, 1, 2]) == [6, 2, 4]

    def test_session_ships_context_to_workers(self):
        with ProcessExecutor(2).session(100) as session:
            assert session.map(_add_context, [1, 2, 3]) == [101, 102, 103]

    def test_session_reusable_for_multiple_maps(self):
        with ProcessExecutor(2).session(1) as session:
            first = session.map(_add_context, [1, 2])
            second = session.map(_add_context, [3, 4])
        assert first == [2, 3]
        assert second == [4, 5]

    def test_worker_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            ProcessExecutor(2).map(_reciprocal, [1, 0])

    def test_rejects_bad_worker_count(self):
        with pytest.raises(EngineError):
            ProcessExecutor(0)


def _reciprocal(item):
    return 1 / item


class TestResolveExecutor:
    @pytest.mark.parametrize("workers", [None, 0, 1])
    def test_serial_for_one_or_fewer(self, workers):
        assert isinstance(resolve_executor(workers), SerialExecutor)

    def test_process_pool_above_one(self):
        executor = resolve_executor(3)
        assert isinstance(executor, ProcessExecutor)
        assert executor.parallelism == 3

    @pytest.mark.parametrize("workers", [-1, -10])
    def test_negative_is_an_explicit_error(self, workers):
        with pytest.raises(EngineError, match=">= 0"):
            resolve_executor(workers)

    def test_backends_satisfy_protocol(self):
        assert isinstance(SerialExecutor(), Executor)
        assert isinstance(ProcessExecutor(2), Executor)


class TestNormalizeWorkers:
    """The single worker-count code path every entry point shares."""

    @pytest.mark.parametrize("workers,expected", [(None, 1), (0, 1), (1, 1), (7, 7)])
    def test_edge_cases(self, workers, expected):
        assert normalize_workers(workers) == expected

    def test_negative_raises(self):
        with pytest.raises(EngineError, match="worker count"):
            normalize_workers(-2)


class TestResolvePool:
    """The service's pool selection rides the same code path."""

    def test_serial_backend_is_none(self):
        assert resolve_pool("serial", 4) is None

    def test_thread_backend(self):
        pool = resolve_pool("thread", 2)
        assert isinstance(pool, ThreadPoolExecutor)
        pool.shutdown()

    def test_process_backend(self):
        pool = resolve_pool("process", 2)
        assert isinstance(pool, ProcessPoolExecutor)
        pool.shutdown()

    def test_unknown_backend_rejected(self):
        with pytest.raises(EngineError, match="backend"):
            resolve_pool("quantum", 2)

    def test_negative_workers_rejected(self):
        with pytest.raises(EngineError, match="worker count"):
            resolve_pool("thread", -1)

    def test_backends_tuple_exported(self):
        assert BACKENDS == ("process", "thread", "serial")


def _boom(context, item):
    raise ValueError("worker exploded")


def _worker_pid(context, item):
    import os

    return os.getpid()


def _context_plus(context, item):
    return context + item


class TestProcessSessionLifecycle:
    """Regressions: the session must never leave a pool running behind."""

    def test_close_without_context_manager(self):
        session = ProcessExecutor(2).session(10)
        assert session.map(_context_plus, [1]) == [11]
        pool = session._pool
        session.close()
        assert pool._shutdown_thread
        with pytest.raises(EngineError, match="closed"):
            session.map(_context_plus, [2])

    def test_close_is_idempotent(self):
        session = ProcessExecutor(2).session(0)
        session.close()
        session.close()

    def test_abandoned_session_pool_reclaimed_by_gc(self):
        import gc

        session = ProcessExecutor(2).session(1)
        pool = session._pool
        del session
        gc.collect()
        assert pool._shutdown_thread

    def test_worker_error_shuts_the_pool_down(self):
        session = ProcessExecutor(2).session(None)
        pool = session._pool
        with pytest.raises(ValueError, match="worker exploded"):
            session.map(_boom, [1, 2])
        assert pool._shutdown_thread
        with pytest.raises(EngineError, match="closed"):
            session.map(_context_plus, [1])


class TestSharedMemoryExecutor:
    def test_sessions_reuse_one_warm_pool(self):
        with ProcessExecutor(2, shared_memory=True) as executor:
            with executor.session(100) as first:
                out1 = first.map(_context_plus, [1, 2])
                pids1 = set(first.map(_worker_pid, [0, 0, 0, 0]))
                pool = executor._persistent
                worker_pids = set(pool._processes)
            with executor.session(200) as second:
                out2 = second.map(_context_plus, [1])
                pids2 = set(second.map(_worker_pid, [0, 0, 0, 0]))
                assert executor._persistent is pool
                # Same pool, same worker processes: warm reuse, not a
                # respawn (which task lands on which worker is the
                # scheduler's business — only membership is stable).
                assert set(pool._processes) == worker_pids
                assert (pids1 | pids2) <= worker_pids
        assert out1 == [101, 102]
        assert out2 == [201]

    def test_session_close_keeps_pool_but_unlinks_segments(self):
        import numpy as np

        from repro.engine import shm

        with ProcessExecutor(2, shared_memory=True) as executor:
            session = executor.session(np.arange(4, dtype=float))
            assert session.map(_context_plus, [1.0])[0][0] == 1.0
            assert shm.live_segments()
            session.close()
            assert shm.live_segments() == frozenset()
            assert not executor._persistent._shutdown_thread
            with pytest.raises(EngineError, match="closed"):
                session.map(_context_plus, [1.0])

    def test_executor_close_then_new_session_respawns(self):
        executor = ProcessExecutor(2, shared_memory=True)
        with executor.session(5) as session:
            assert session.map(_context_plus, [1]) == [6]
        first_pool = executor._persistent
        executor.close()
        assert executor._persistent is None
        with executor.session(7) as session:
            assert session.map(_context_plus, [1]) == [8]
        assert executor._persistent is not first_pool
        executor.close()

    def test_share_and_release(self):
        import numpy as np

        from repro.engine import shm

        with ProcessExecutor(2, shared_memory=True) as executor:
            with executor.session(None) as session:
                ref = session.share(np.arange(8))
                assert ref.name in shm.live_segments()
                session.release(ref)
                assert ref.name not in shm.live_segments()

    def test_worker_error_releases_segments_on_close(self):
        with ProcessExecutor(2, shared_memory=True) as executor:
            session = executor.session(3)
            with pytest.raises(ValueError, match="worker exploded"):
                session.map(_boom, [1])
            # The pool survives a *task* error (only a broken pool is
            # discarded); the session's segments go with the session.
            assert session.map(_context_plus, [1]) == [4]
            session.close()

    def test_map_context_free_uses_warm_pool(self):
        with ProcessExecutor(2, shared_memory=True) as executor:
            assert executor.map(_double, [3, 1]) == [6, 2]
            assert executor._persistent is not None

    def test_resolve_executor_threads_the_toggle(self):
        executor = resolve_executor(3, shared_memory=True)
        assert isinstance(executor, ProcessExecutor)
        assert executor.shared_memory is True
        executor.close()
        assert isinstance(
            resolve_executor(1, shared_memory=True), SerialExecutor
        )


class TestResolvePoolStartMethod:
    """Regression: the service backend must honor its start method."""

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_process_pool_gets_the_requested_context(self, method):
        pool = resolve_pool("process", 2, start_method=method)
        try:
            assert pool._mp_context.get_start_method() == method
        finally:
            pool.shutdown(wait=False)

    def test_thread_and_serial_ignore_start_method(self):
        pool = resolve_pool("thread", 2, start_method="spawn")
        assert isinstance(pool, ThreadPoolExecutor)
        pool.shutdown()
        assert resolve_pool("serial", 2, start_method="spawn") is None
