"""Description Length of a pattern (§II-C).

``DL = gamma * |C| + eta (+ 1)`` where ``|C|`` is the number of
conditions in the intention and the ``+1`` applies to spread patterns,
which additionally communicate the direction vector. The paper fixes
``eta = 1`` without loss of generality (only ratios matter for ranking)
and uses ``gamma = 0.1`` in all experiments (Remark 1); the gamma
ablation bench sweeps it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

#: Pattern kinds understood by :func:`description_length`.
LOCATION = "location"
SPREAD = "spread"


@dataclass(frozen=True)
class DLParams:
    """Coding-scheme weights of the DL formula."""

    gamma: float = 0.1
    eta: float = 1.0

    def __post_init__(self) -> None:
        if self.gamma < 0.0:
            raise ModelError(f"gamma must be non-negative, got {self.gamma}")
        if self.eta <= 0.0 and self.gamma <= 0.0:
            raise ModelError("DL must be positive: need eta > 0 or gamma > 0")


def description_length(
    n_conditions: int,
    *,
    kind: str = LOCATION,
    params: DLParams = DLParams(),
) -> float:
    """DL of a pattern with ``n_conditions`` conjuncts in its intention."""
    if n_conditions < 0:
        raise ModelError(f"n_conditions must be non-negative, got {n_conditions}")
    if kind == LOCATION:
        extra = 0.0
    elif kind == SPREAD:
        extra = 1.0
    else:
        raise ModelError(f"unknown pattern kind {kind!r}")
    dl = params.gamma * n_conditions + params.eta + extra
    if dl <= 0.0:
        raise ModelError(f"description length must be positive, got {dl}")
    return dl
