"""Durable mining service: submit, "crash", restart, resume from disk.

The demo runs the full durability loop in one process:

1. start a :class:`MiningServer` on a durable store directory and mine
   two jobs to completion plus one that is still queued;
2. kill the server without any graceful shutdown — exactly what a
   SIGKILL or power loss leaves behind: a journal tail plus the last
   sqlite snapshot;
3. restart a *new* server on the same store and show that the finished
   results come back bit-identically in ~0 seconds (served from the
   store, nothing recomputed), the interrupted job is re-enqueued and
   finishes, and the server's stream generation advanced so streaming
   clients can detect the restart.

Run with::

    python examples/durable_service.py [store-dir]

Without an argument the store lives in a temporary directory.
"""

import sys
import tempfile
import time

from repro import MiningSpec, RemoteWorkspace
from repro.persist import job_result_to_dict
from repro.server import MiningServer


def _spec(seed: int, n_iterations: int = 2) -> MiningSpec:
    return MiningSpec.build(
        "synthetic",
        kind="spread",
        seed=seed,
        n_iterations=n_iterations,
        beam_width=12,
        top_k=30,
    )


def main() -> int:
    store = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="sisd-store-")
    print(f"durable store: {store}")

    # --- boot 1: mine two jobs, leave a third one queued -------------
    server = MiningServer(port=0, backend="thread", max_workers=1, store=store)
    handle = server.run_in_thread()
    ws = RemoteWorkspace(handle.url)
    generation = ws.health()["generation"]
    print(f"boot 1 up at {handle.url} (generation {generation})")

    finished = [ws.submit(_spec(seed=s)) for s in (0, 1)]
    before = {i: job_result_to_dict(ws.result(i, timeout=120)) for i in finished}
    # A long job that will still be live when the "crash" hits.
    interrupted = ws.submit(_spec(seed=2, n_iterations=6))
    print(f"mined {len(before)} jobs; {interrupted} is still in flight")

    # --- the crash ---------------------------------------------------
    # No drain, no flush beyond what already hit the journal: the store
    # is left exactly as a power loss would leave it.
    handle.stop()
    print("boot 1 killed (no graceful shutdown of in-flight work)")

    # --- boot 2: same store, new process ----------------------------
    relaunch = MiningServer(port=0, backend="thread", max_workers=1, store=store)
    handle = relaunch.run_in_thread()
    try:
        ws = RemoteWorkspace(handle.url)
        health = ws.health()
        print(f"boot 2 up at {handle.url} (generation {health['generation']})")
        assert health["generation"] != generation, "generation must advance"

        started = time.monotonic()
        for job_id in finished:
            after = job_result_to_dict(ws.result(job_id, timeout=10))
            assert after == before[job_id], "recovered result drifted"
        print(f"finished jobs served from the store, bit-identically, "
              f"in {time.monotonic() - started:.2f}s (no recompute)")

        # The interrupted job was re-enqueued on boot and completes.
        result = ws.result(interrupted, timeout=180)
        print(f"interrupted job resumed and finished: "
              f"{len(result.iterations)} iterations, "
              f"top pattern {result.iterations[0].location.description}")
    finally:
        handle.stop()
    print("done")
    return 0


if __name__ == "__main__":
    sys.exit(main())
