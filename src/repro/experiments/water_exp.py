"""§III-D water-quality case study: Figs. 9 and 10.

- Fig. 10: the top location pattern — the paper reports
  "Amphipoda Gammarus fossarum <= 0 AND Oligochaeta Tubifex >= 3",
  91 records — with elevated BOD, Cl, conductivity, KMnO4, K2Cr2O7.
- Fig. 9: the spread pattern of that subgroup: a near-sparse direction
  with high weights on bod and kmno4 along which the subgroup's variance
  is much *larger* than the background expects — the paper's example
  that surprising high-variance directions exist too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.water import make_water
from repro.experiments.common import make_miner
from repro.interest.attribution import AttributeSurprisal, attribute_surprisals
from repro.report.series import cdf_series, mixture_normal_cdf_series
from repro.report.tables import format_table

#: The chemistry parameters the paper's Fig. 10 highlights.
FIG10_PARAMETERS = ("bod", "cl", "conduct", "kmno4", "k2cr2o7")


@dataclass(frozen=True)
class Fig10Result:
    intention: str
    size: int
    si: float
    surprisals_before: tuple[AttributeSurprisal, ...]  # all 16, ranked
    surprisals_after: tuple[AttributeSurprisal, ...]

    def highlighted(self) -> list[AttributeSurprisal]:
        """The Fig. 10 parameters, in the paper's order."""
        by_name = {record.name: record for record in self.surprisals_before}
        return [by_name[name] for name in FIG10_PARAMETERS]

    def format(self) -> str:
        """Render the reproduced rows as a fixed-width text table."""
        after_by_name = {r.name: r for r in self.surprisals_after}
        rows = []
        for record in self.highlighted():
            lo, hi = record.ci95
            rows.append(
                (
                    record.name,
                    record.observed,
                    record.expected,
                    f"[{lo:.2f}, {hi:.2f}]",
                    after_by_name[record.name].expected,
                )
            )
        table = format_table(
            ["parameter", "observed", "model mean", "model 95% CI", "updated mean"],
            rows,
            floatfmt=".2f",
            title=f"Fig. 10: top location pattern '{self.intention}' (n={self.size})",
        )
        paper = (
            "paper: 'gammarus fossarum <= 0 AND tubifex >= 3', 91 records, "
            "elevated BOD/Cl/conductivity/KMnO4/K2Cr2O7"
        )
        return f"{table}\n{paper}"


def run_fig10(seed: int = 0) -> Fig10Result:
    """Mine the top water pattern; rank chemistry surprisals."""
    dataset = make_water(seed)
    miner = make_miner(dataset)
    pattern = miner.find_location()
    before = attribute_surprisals(
        miner.model, pattern.indices, pattern.mean, names=dataset.target_names
    )
    miner.assimilate(pattern)
    after = attribute_surprisals(
        miner.model, pattern.indices, pattern.mean, names=dataset.target_names
    )
    return Fig10Result(
        intention=str(pattern.description),
        size=pattern.size,
        si=pattern.si,
        surprisals_before=tuple(before),
        surprisals_after=tuple(after),
    )


@dataclass(frozen=True)
class Fig9Result:
    intention: str
    direction: np.ndarray           # 9c: the weight vector over 16 targets
    target_names: tuple[str, ...]
    observed_variance: float
    expected_variance: float
    spread_si: float
    top_weight_names: tuple[str, str]
    cdf_grid: np.ndarray            # 9b series
    cdf_model: np.ndarray
    cdf_data: np.ndarray

    def format(self) -> str:
        """Render the reproduced rows as a fixed-width text table."""
        order = np.argsort(-np.abs(self.direction))
        weights = ", ".join(
            f"{self.target_names[k]}={self.direction[k]:+.3f}" for k in order[:5]
        )
        lines = [
            f"Fig. 9: spread pattern of '{self.intention}'",
            f"  top weights: {weights}",
            f"  observed variance {self.observed_variance:.3f} vs expected "
            f"{self.expected_variance:.3f} "
            f"(ratio {self.observed_variance / self.expected_variance:.2f}; "
            f"SI {self.spread_si:.2f})",
            "  paper: high weights on bod and kmno4; variance much larger "
            "than expected",
        ]
        return "\n".join(lines)


def run_fig9(seed: int = 0, *, n_grid: int = 96) -> Fig9Result:
    """Spread direction of the top water pattern (full 16-dim search)."""
    dataset = make_water(seed)
    miner = make_miner(dataset)
    location = miner.find_location()
    miner.assimilate(location)
    spread = miner.find_spread_for(location)
    expected_variance = miner.model.expected_spread(
        location.indices, spread.direction, spread.center
    )

    projections = dataset.targets[location.indices] @ spread.direction
    span = projections.max() - projections.min()
    grid = np.linspace(
        projections.min() - 0.5 * span, projections.max() + 0.5 * span, n_grid
    )
    counts, block_means, block_covs = miner.model.spread_blocks(location.indices)
    model_means = [float(spread.direction @ mu) for mu in block_means]
    model_sds = [
        float(np.sqrt(spread.direction @ cov @ spread.direction))
        for cov in block_covs
    ]
    _, cdf_model = mixture_normal_cdf_series(model_means, model_sds, counts, grid)
    _, cdf_data = cdf_series(projections, grid=grid)

    order = np.argsort(-np.abs(spread.direction))
    top_two = (dataset.target_names[order[0]], dataset.target_names[order[1]])
    return Fig9Result(
        intention=str(location.description),
        direction=spread.direction,
        target_names=tuple(dataset.target_names),
        observed_variance=spread.variance,
        expected_variance=float(expected_variance),
        spread_si=spread.si,
        top_weight_names=top_two,
        cdf_grid=grid,
        cdf_model=cdf_model,
        cdf_data=cdf_data,
    )
