"""Mining-as-a-service: submit/status/result/cancel over a worker pool.

:class:`MiningService` turns the batch runner into a long-lived server
object: clients submit :class:`~repro.engine.jobs.MiningJob` specs and
poll (or block on) results while a bounded pool of workers drains the
queue. Identical specs are deduplicated through an LRU result cache
keyed by the job fingerprint, so a dashboard re-requesting the same
mining run costs nothing the second time.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from enum import Enum

from repro.engine.cache import LRUCache

# BACKENDS moved to the executor module with the pool-resolution dedup;
# re-imported here so `from repro.engine.service import BACKENDS` (its
# pre-move home) keeps working.
from repro.engine.executor import BACKENDS, resolve_executor, resolve_pool

__all__ = ["BACKENDS", "JobStatus", "MiningService"]
from repro.engine.jobs import JobResult, MiningJob, run_job, run_job_with_workers
from repro.errors import EngineError
from repro.events import MiningObserver, broadcast


class _SwallowingObserver(MiningObserver):
    """Delivers events to an inner observer, discarding its exceptions.

    The serial backend fires events live inside ``run_job``; without
    this wrapper a raising observer would abort (and fail) a mining run
    that actually succeeded, while the pooled backends — whose replayed
    events are guarded in ``_announce`` — would report the same job
    DONE. One swallow policy, every backend.
    """

    def __init__(self, inner: MiningObserver) -> None:
        self._inner = inner

    def on_candidate(self, candidate) -> None:
        try:
            self._inner.on_candidate(candidate)
        except Exception:
            pass

    def on_iteration(self, iteration) -> None:
        try:
            self._inner.on_iteration(iteration)
        except Exception:
            pass

    def on_job(self, result) -> None:
        try:
            self._inner.on_job(result)
        except Exception:
            pass

    def on_job_failed(self, job, error) -> None:
        try:
            self._inner.on_job_failed(job, error)
        except Exception:
            pass


class JobStatus(str, Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class MiningService:
    """Bounded concurrent execution of mining jobs with result caching.

    .. note::
        As a *public entry point* prefer
        :meth:`repro.api.Workspace.submit`, which feeds declarative
        :class:`repro.spec.MiningSpec` documents through this service.
        ``MiningService`` remains the service substrate.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrently running jobs (default 2).
    backend:
        ``"process"`` (default) isolates each job in a worker process —
        right for CPU-bound mining; ``"thread"`` keeps everything
        in-process (fast startup, handy for tests and small jobs);
        ``"serial"`` executes synchronously at submit time.
    cache_size:
        Capacity of the fingerprint-keyed result cache.
    start_method:
        ``multiprocessing`` start method of the ``"process"`` pool's
        workers (``fork``/``spawn``/``forkserver``; ``None`` = platform
        default). Ignored by the thread and serial backends. This
        configures the *service's own* job pool; the ``start_method``
        argument of :meth:`submit` independently configures the pools a
        job spawns internally.
    observer:
        Optional :class:`~repro.events.MiningObserver`. With the
        ``"serial"`` backend events fire live during mining; the
        process/thread pools cannot ship callbacks across workers, so
        for those backends (and for cache hits) the service *replays*
        ``on_iteration`` for each mined iteration when a job's result
        arrives, then fires ``on_job``. A job that raises fires
        ``on_job_failed`` instead, so every non-cancelled submission
        ends in exactly one terminal event.

    The service is a context manager; leaving the block shuts the pool
    down and waits for running jobs.
    """

    def __init__(
        self,
        *,
        max_workers: int = 2,
        backend: str = "process",
        cache_size: int = 64,
        observer: MiningObserver | None = None,
        start_method: str | None = None,
    ) -> None:
        if max_workers < 1:
            raise EngineError(f"max_workers must be >= 1, got {max_workers}")
        self.backend = backend
        self.max_workers = max_workers
        self.start_method = start_method
        self._pool = resolve_pool(backend, max_workers, start_method=start_method)
        self._observers: list[MiningObserver] = (
            [observer] if observer is not None else []
        )
        self._recompose_observers()
        self._cache = LRUCache(cache_size)
        self._lock = threading.Lock()
        self._futures: dict[str, Future] = {}
        self._jobs: dict[str, MiningJob] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #
    def submit(
        self,
        job: MiningJob,
        *,
        workers: int | None = None,
        start_method: str | None = None,
        shared_memory: bool = False,
    ) -> str:
        """Queue a job; returns its id. Cached specs resolve instantly.

        ``workers``/``start_method``/``shared_memory`` parallelize the
        search *inside* the job (the spec's executor section); the
        determinism contract makes them — and hence these parameters —
        irrelevant to the result, so the cache stays keyed by the job
        fingerprint alone.
        """
        if not isinstance(job, MiningJob):
            raise EngineError(f"expected MiningJob, got {type(job).__name__}")
        job_id = f"job-{next(self._ids):04d}"
        fp = job.fingerprint()
        cached = self._cache.get(fp)
        # Announcements are deferred until the job is registered, so an
        # observer reacting to on_job can already see it in jobs().
        announce: tuple[JobResult, bool] | None = None
        failure: Exception | None = None
        if cached is not None:
            future: Future = Future()
            future.set_result(cached)
            announce = (cached, True)
        elif self._pool is None:
            future = Future()
            executor = resolve_executor(
                workers, start_method=start_method, shared_memory=shared_memory
            )
            try:
                # Serial backend: candidate/iteration events fire live
                # (swallowed on failure — see _SwallowingObserver).
                result = self._finish(
                    fp,
                    run_job(job, executor=executor, observer=self._live_observer),
                )
            except Exception as exc:  # surface via result(), like a pool would
                future.set_exception(exc)
                failure = exc
            else:
                future.set_result(result)
                announce = (result, False)
            finally:
                # A shared-memory executor holds a persistent pool; do
                # not leave it to garbage collection.
                executor.close()
        else:
            future = self._pool.submit(
                run_job_with_workers, job, workers, start_method, shared_memory
            )
        with self._lock:
            self._futures[job_id] = future
            self._jobs[job_id] = job
        if announce is not None:
            self._announce(announce[0], replay_iterations=announce[1])
        elif failure is not None and self._live_observer is not None:
            self._live_observer.on_job_failed(job, failure)
        elif self._pool is not None:
            future.add_done_callback(self._make_cache_callback(job, fp))
        return job_id

    def status(self, job_id: str) -> JobStatus:
        """Current lifecycle state of one job."""
        future = self._future_of(job_id)
        if future.cancelled():
            return JobStatus.CANCELLED
        if future.running():
            return JobStatus.RUNNING
        if future.done():
            return JobStatus.FAILED if future.exception() else JobStatus.DONE
        return JobStatus.PENDING

    def result(self, job_id: str, timeout: float | None = None) -> JobResult:
        """Block until the job finishes and return its result.

        Re-raises the job's exception on failure and
        :class:`concurrent.futures.CancelledError` after a cancel.
        """
        return self._future_of(job_id).result(timeout=timeout)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started yet; True on success."""
        return self._future_of(job_id).cancel()

    def job(self, job_id: str) -> MiningJob:
        """The spec submitted under ``job_id``."""
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise EngineError(f"unknown job id {job_id!r}") from None

    def jobs(self) -> dict[str, JobStatus]:
        """Snapshot of every submitted job's status, by id."""
        with self._lock:
            ids = list(self._futures)
        return {job_id: self.status(job_id) for job_id in ids}

    def wait_all(self, timeout: float | None = None) -> dict[str, JobStatus]:
        """Wait for all non-cancelled jobs, then return their statuses.

        ``timeout`` bounds the *total* wait; if it expires while jobs
        are still running, :class:`TimeoutError` is raised. Job failures
        and cancellations do not raise here — the returned statuses tell
        that story.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            futures = list(self._futures.values())
        for future in futures:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                future.result(timeout=remaining)
            except CancelledError:
                pass
            except FuturesTimeoutError:  # pre-3.11 this is not TimeoutError
                raise
            except Exception:
                pass
        return self.jobs()

    def _recompose_observers(self) -> None:
        composed = broadcast(*self._observers)
        self._observer = composed
        self._live_observer = (
            _SwallowingObserver(composed) if composed is not None else None
        )

    def add_observer(self, observer: MiningObserver | None) -> None:
        """Compose another observer onto the service's event stream.

        Delivery reads the observer set at event time, so the new
        observer also hears pooled jobs already in flight when their
        results arrive; ``None`` is a no-op. Lets a
        :class:`repro.api.Workspace` attach its observer to an
        externally constructed service; detach with
        :meth:`remove_observer`.
        """
        if observer is None:
            return
        self._observers.append(observer)
        self._recompose_observers()

    def remove_observer(self, observer: MiningObserver | None) -> None:
        """Detach a previously attached observer (unknown ones: no-op).

        A :class:`repro.api.Workspace` sharing this service calls this
        on close, so successive workspaces do not accumulate each
        other's observers.
        """
        if observer in self._observers:
            self._observers.remove(observer)
            self._recompose_observers()

    @property
    def cache_stats(self):
        """Hit/miss counters of the result cache."""
        return self._cache.stats

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for running jobs."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait)

    def __enter__(self) -> "MiningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _future_of(self, job_id: str) -> Future:
        with self._lock:
            try:
                return self._futures[job_id]
            except KeyError:
                raise EngineError(f"unknown job id {job_id!r}") from None

    def _finish(self, fp: str, result: JobResult) -> JobResult:
        self._cache.put(fp, result)
        return result

    def _announce(self, result: JobResult, *, replay_iterations: bool) -> None:
        """Deliver a finished job to the observer (replaying if asked).

        Pool workers cannot call back into this process mid-job, so the
        pooled backends (and cache hits) replay ``on_iteration`` events
        here, post hoc; the serial backend already fired them live and
        only needs ``on_job``. A raising observer must not corrupt job
        bookkeeping — the result is already stored and the future
        resolved — so delivery failures are swallowed here, uniformly
        across backends (the same contract ``concurrent.futures`` gives
        done-callbacks).
        """
        if self._live_observer is None:
            return
        # Route through the swallowing wrapper so one raising event does
        # not starve the later ones — the same per-event policy the
        # serial backend's live delivery gets.
        if replay_iterations:
            for iteration in result.iterations:
                self._live_observer.on_iteration(iteration)
        self._live_observer.on_job(result)

    def _make_cache_callback(self, job: MiningJob, fp: str):
        def _store(future: Future) -> None:
            if future.cancelled():
                return
            exc = future.exception()
            if exc is None:
                result = future.result()
                self._cache.put(fp, result)
                self._announce(result, replay_iterations=True)
            elif self._live_observer is not None:
                self._live_observer.on_job_failed(job, exc)

        return _store
