"""The random-subgroup SI baseline of the Fig. 3 noise experiment.

The figure's flat "baseline" curve answers: what SI would a subgroup of
the same size get if its members were chosen at random (i.e. if the
description carried no information about the targets)? Averaging the SI
of many uniformly drawn extensions estimates that floor; a planted
pattern is recoverable as long as its (noise-corrupted) SI stays clearly
above it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SearchError
from repro.interest.dl import DLParams
from repro.interest.si import score_location
from repro.model.background import BackgroundModel
from repro.stats.statistics import subgroup_mean
from repro.utils.rng import as_rng


def random_subgroup_si(
    model: BackgroundModel,
    targets: np.ndarray,
    size: int,
    *,
    n_conditions: int = 1,
    n_draws: int = 100,
    dl_params: DLParams = DLParams(),
    seed=0,
) -> tuple[float, np.ndarray]:
    """Mean (and per-draw) SI of uniformly random subgroups of ``size``.

    Returns ``(mean_si, draws)`` where ``draws`` has one SI value per
    random extension.
    """
    targets = np.asarray(targets, dtype=float)
    if targets.ndim == 1:
        targets = targets[:, None]
    n = targets.shape[0]
    if not 2 <= size <= n:
        raise SearchError(f"size must be in [2, {n}], got {size}")
    if n_draws < 1:
        raise SearchError(f"n_draws must be >= 1, got {n_draws}")
    rng = as_rng(seed)
    values = np.empty(n_draws)
    for k in range(n_draws):
        indices = rng.choice(n, size=size, replace=False)
        observed = subgroup_mean(targets, indices)
        score = score_location(
            model, indices, observed, n_conditions, params=dl_params
        )
        values[k] = score.si
    return float(values.mean()), values
