"""``repro.analysis``: contract-aware static analysis (``sisd lint``).

The repo's load-bearing invariants — bit-identical determinism across
executors, a never-blocked asyncio tier, module-level callables at
every pickle boundary, resources released on all paths — are enforced
dynamically by the equivalence suites, which can only see a bug *fire*.
This package enforces them statically, on every file, before anything
runs:

====== ==============================================================
DET001 no wall-clock reads in fingerprint/cache/merge-critical modules
DET002 no global/unseeded RNG in determinism-critical modules
DET003 no bare set iteration in determinism-critical modules
DET004 instrumented modules read clocks via the repro.obs.clock seam
ASY001 no blocking calls lexically inside ``async def``
ASY002 never ``await`` while holding a ``threading.Lock``
PKL001 callables crossing a process boundary must be module-level
RES001 acquired handles must release on all paths
RES002 write-then-rename must fsync before the rename
====== ==============================================================

Rules live in :data:`~repro.analysis.base.RULES`, a string-keyed
:class:`repro.registry.Registry` — the same extension idiom as
``MODELS``/``MEASURES``/``SEARCHES``. ``sisd lint --explain RULE``
prints a rule's docstring; ``# sisd: ignore[RULE] reason`` silences one
line; ``--baseline`` grandfathers a legacy tree. See the README's
"Static analysis" section for the policy.
"""

from __future__ import annotations

from repro.analysis.base import RULES, LintRule, register_rule
from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.engine import LintEngine, LintReport, changed_files
from repro.analysis.findings import REPORT_SCHEMA, Finding
from repro.analysis.source import SourceFile

__all__ = [
    "Finding",
    "LintEngine",
    "LintReport",
    "LintRule",
    "REPORT_SCHEMA",
    "RULES",
    "SourceFile",
    "apply_baseline",
    "changed_files",
    "load_baseline",
    "register_rule",
    "write_baseline",
]
