"""MetricsRegistry contract: instruments, rendering, and the parser.

Every test builds its own :class:`MetricsRegistry` — the process-wide
``METRICS`` belongs to the instrumented modules and their integration
tests; unit tests must not perturb it.
"""

import threading

import pytest

from repro.errors import ObsError
from repro.obs import clock
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    parse_prometheus,
)


class TestCounter:
    def test_counts_up(self):
        counter = MetricsRegistry().counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c_total", "help")
        with pytest.raises(ObsError):
            counter.inc(-1)
        assert counter.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g", "help")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h_seconds", "help", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        counts, total, count = histogram.snapshot()
        assert counts == [1, 2, 1, 1]  # last bucket is +Inf
        assert total == pytest.approx(56.05)
        assert count == 5

    def test_rejects_non_finite_observations(self):
        histogram = MetricsRegistry().histogram("h_seconds", "help")
        with pytest.raises(ObsError):
            histogram.observe(float("nan"))
        with pytest.raises(ObsError):
            histogram.observe(float("inf"))

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ObsError):
            MetricsRegistry().histogram("h", "help", buckets=(1.0, 0.5))
        with pytest.raises(ObsError):
            MetricsRegistry().histogram("h", "help", buckets=(1.0, 1.0))

    def test_timer_reads_the_clock_seam(self):
        histogram = MetricsRegistry().histogram("h_seconds", "help")
        with clock.fixed(100.0) as advance:
            with histogram.time():
                advance(0.25)
        assert histogram.sum == pytest.approx(0.25)
        assert histogram.count == 1


class TestLabels:
    def test_children_are_memoized(self):
        family = MetricsRegistry().counter("c_total", "help", labels=("t",))
        assert family.labels("a") is family.labels("a")
        assert family.labels("a") is not family.labels("b")

    def test_label_arity_is_enforced(self):
        family = MetricsRegistry().counter("c_total", "help", labels=("t",))
        with pytest.raises(ObsError):
            family.labels()
        with pytest.raises(ObsError):
            family.labels("a", "b")

    def test_labeled_family_has_no_default_child(self):
        family = MetricsRegistry().gauge("g", "help", labels=("t",))
        with pytest.raises(ObsError):
            family.default


class TestRegistration:
    def test_same_signature_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", labels=("t",))
        second = registry.counter("c_total", "help", labels=("t",))
        assert first is second

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("m", "help")
        with pytest.raises(ObsError):
            registry.gauge("m", "help")

    def test_label_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("m_total", "help", labels=("t",))
        with pytest.raises(ObsError):
            registry.counter("m_total", "help", labels=("other",))

    def test_bucket_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", "help", buckets=(0.1, 1.0))
        with pytest.raises(ObsError):
            registry.histogram("h_seconds", "help", buckets=(0.5, 1.0))

    def test_bad_names_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObsError):
            registry.counter("", "help")
        with pytest.raises(ObsError):
            registry.counter("has space", "help")
        with pytest.raises(ObsError):
            registry.counter("9starts_with_digit", "help")


class TestRender:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "b help", labels=("t",)).labels("x").inc(3)
        registry.counter("a_total", "a help").inc()
        registry.histogram("h_seconds", "h help", buckets=(0.1, 1.0)).observe(0.5)
        registry.gauge("g", "g help").set(-2.5)
        return registry

    def test_two_scrapes_are_byte_identical(self):
        registry = self._populated()
        assert registry.render() == registry.render()

    def test_families_sorted_children_sorted(self):
        registry = MetricsRegistry()
        family = registry.counter("z_total", "z", labels=("t",))
        family.labels("b").inc()
        family.labels("a").inc(2)
        registry.counter("a_total", "a").inc()
        text = registry.render()
        assert text.index("a_total") < text.index("z_total")
        assert text.index('z_total{t="a"}') < text.index('z_total{t="b"}')

    def test_help_and_type_lines(self):
        text = self._populated().render()
        assert "# HELP a_total a help" in text
        assert "# TYPE a_total counter" in text
        assert "# TYPE g gauge" in text
        assert "# TYPE h_seconds histogram" in text

    def test_render_parse_round_trip(self):
        samples = parse_prometheus(self._populated().render())
        assert samples["a_total"] == [({}, 1.0)]
        assert samples["b_total"] == [({"t": "x"}, 3.0)]
        assert samples["g"] == [({}, -2.5)]
        assert samples["h_seconds_sum"] == [({}, 0.5)]
        assert samples["h_seconds_count"] == [({}, 1.0)]
        buckets = {
            labels["le"]: value for labels, value in samples["h_seconds_bucket"]
        }
        assert buckets == {"0.1": 0.0, "1": 1.0, "+Inf": 1.0}

    def test_escaped_label_values_round_trip(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help", labels=("t",))
        tricky = 'with "quotes",\nnewline and \\slash'
        family.labels(tricky).inc()
        samples = parse_prometheus(registry.render())
        (labels, value), = samples["c_total"]
        assert labels == {"t": tricky}
        assert value == 1.0

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_content_type_names_prometheus_text(self):
        assert "text/plain" in PROMETHEUS_CONTENT_TYPE
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestCollectors:
    def test_collectors_refresh_before_render(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "help")
        state = {"value": 7.0}
        registry.register_collector(lambda: gauge.set(state["value"]))
        assert "depth 7" in registry.render()
        state["value"] = 9.0
        assert "depth 9" in registry.render()

    def test_failing_collector_does_not_break_the_scrape(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "help")

        def explode():
            raise RuntimeError("mid-shutdown")

        registry.register_collector(explode)
        registry.register_collector(lambda: gauge.set(1.0))
        assert "depth 1" in registry.render()

    def test_remove_collector_is_lifecycle_safe(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "help")
        collector = lambda: gauge.set(5.0)  # noqa: E731
        registry.register_collector(collector)
        registry.remove_collector(collector)
        registry.remove_collector(collector)  # absent: no-op
        assert "depth 0" in registry.render()


class TestSnapshot:
    def test_histograms_surface_as_sum_and_count(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", "help", labels=("p",)).labels(
            "score"
        ).observe(0.5)
        registry.counter("c_total", "help").inc(2)
        snap = registry.snapshot()
        assert snap["c_total"] == {(): 2.0}
        assert snap["h_seconds_sum"] == {("score",): 0.5}
        assert snap["h_seconds_count"] == {("score",): 1.0}

    def test_default_latency_buckets_are_increasing(self):
        assert list(LATENCY_BUCKETS) == sorted(set(LATENCY_BUCKETS))


class TestThreadSafety:
    def test_concurrent_increments_are_lost_update_free(self):
        counter = MetricsRegistry().counter("c_total", "help")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000.0
