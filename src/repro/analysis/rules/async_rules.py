"""Asyncio-hygiene rules: the event loop never blocks, locks never park.

The served tier (:mod:`repro.server`, :mod:`repro.dist.router`,
:mod:`repro.dist.worker`) runs every connection on one asyncio loop; a
single blocking call in a handler stalls every concurrent client, and an
``await`` issued while a ``threading.Lock`` is held can deadlock the
loop against the worker threads that need that lock. These rules are
lexical — they fire on code *written inside* ``async def``, which is
exactly the surface where blocking primitives are never acceptable
(hand them to ``loop.run_in_executor`` or a worker thread instead).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.base import LintRule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile, scope_statements

#: Known-blocking callables a coroutine must never invoke directly.
_BLOCKING = frozenset(
    {
        "time.sleep",
        "open",
        "os.fsync",
        "os.fdopen",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
        "http.client.HTTPConnection",
        "http.client.HTTPSConnection",
        "urllib.request.urlopen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

#: Qualified constructors of thread-level (non-asyncio) locks.
_THREAD_LOCKS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)


@register_rule
class BlockingCallInAsyncRule(LintRule):
    """ASY001: no blocking calls lexically inside ``async def``.

    ``time.sleep``, synchronous sockets/HTTP, file I/O, and ``fsync``
    inside a coroutine freeze the whole event loop: every other
    connection, health check, and SSE heartbeat stops until the call
    returns. Use the asyncio equivalent (``await asyncio.sleep``,
    ``asyncio.open_connection``) or push the work onto a thread with
    ``loop.run_in_executor`` — the pattern
    :meth:`repro.dist.worker.WorkerDaemon._run_shard` already uses.
    """

    rule_id = "ASY001"
    title = "blocking call inside async def"

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Yield every violation of this rule found in ``source``."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = source.qualname(node.func)
            if qual not in _BLOCKING:
                continue
            scope = source.enclosing_function(node)
            if isinstance(scope, ast.AsyncFunctionDef):
                hint = (
                    "await asyncio.sleep(...)"
                    if qual == "time.sleep"
                    else "loop.run_in_executor(...) or the asyncio equivalent"
                )
                yield self.finding(
                    source,
                    node,
                    f"{qual}() blocks the event loop inside "
                    f"'async def {scope.name}'; use {hint}",
                )


def _looks_like_thread_lock(source: SourceFile, expr: ast.AST) -> str | None:
    """A human name for ``expr`` when it plausibly is a threading lock."""
    if isinstance(expr, ast.Call):
        # ``with threading.Lock():`` — constructed inline.
        qual = source.qualname(expr.func)
        return qual if qual in _THREAD_LOCKS else None
    qual = source.qualname(expr)
    if qual in _THREAD_LOCKS:
        return qual
    # Attribute/name heuristic: anything whose final segment mentions
    # "lock" or "mutex" (self._lock, self._contexts_lock, shard_mutex).
    # ``async with`` on an asyncio.Lock is an AsyncWith node and never
    # reaches this check.
    last: str | None = None
    if isinstance(expr, ast.Attribute):
        last = expr.attr
    elif isinstance(expr, ast.Name):
        last = expr.id
    if last is not None and ("lock" in last.lower() or "mutex" in last.lower()):
        return last
    return None


@register_rule
class AwaitUnderThreadLockRule(LintRule):
    """ASY002: never ``await`` while holding a ``threading.Lock``.

    A ``with self._lock:`` block in a coroutine that awaits inside the
    block parks the coroutine *with the lock held*. Any worker thread —
    or any other coroutine resumed on the loop — that then takes the
    same lock blocks forever: the loop cannot resume the holder because
    the thread holding the loop is waiting on the lock. Restructure so
    the lock is released before awaiting, or use ``asyncio.Lock`` with
    ``async with``.
    """

    rule_id = "ASY002"
    title = "await while holding a threading.Lock"

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Yield every violation of this rule found in ``source``."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            yield from self._check_coroutine(source, node)

    def _check_coroutine(
        self, source: SourceFile, coroutine: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in scope_statements(coroutine):
            if not isinstance(node, ast.With):
                continue
            lock_name = None
            for item in node.items:
                lock_name = _looks_like_thread_lock(source, item.context_expr)
                if lock_name:
                    break
            if lock_name is None:
                continue
            for inner in ast.walk(node):
                if isinstance(inner, (ast.Await,)):
                    inner_scope = source.enclosing_function(inner)
                    if inner_scope is coroutine:
                        yield self.finding(
                            source,
                            inner,
                            f"await while holding {lock_name!r} can deadlock "
                            f"the event loop against worker threads; release "
                            f"the lock first or use asyncio.Lock",
                        )
