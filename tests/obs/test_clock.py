"""The clock seam: thin aliases in production, freezable in tests."""

import time

import pytest

from repro.obs import clock


class TestRealClocks:
    def test_aliases_track_the_stdlib(self):
        assert clock.monotonic is time.monotonic
        assert clock.perf_counter is time.perf_counter
        assert clock.wall_time is time.time


class TestFixed:
    def test_freezes_all_three_clocks(self):
        with clock.fixed(500.0):
            assert clock.monotonic() == 500.0
            assert clock.perf_counter() == 500.0
            assert clock.wall_time() == 500.0

    def test_advance_moves_every_clock(self):
        with clock.fixed(100.0) as advance:
            advance(2.5)
            assert clock.monotonic() == 102.5
            assert clock.perf_counter() == 102.5
            advance(0.5)
            assert clock.wall_time() == 103.0

    def test_restores_real_clocks_on_exit(self):
        with clock.fixed(0.0):
            pass
        assert clock.monotonic is time.monotonic
        assert clock.perf_counter is time.perf_counter
        assert clock.wall_time is time.time

    def test_restores_real_clocks_after_an_exception(self):
        with pytest.raises(RuntimeError):
            with clock.fixed(0.0):
                raise RuntimeError("body failed")
        assert clock.monotonic is time.monotonic
        assert clock.wall_time is time.time
