"""Baseline round-trip: write, load, grandfather — and reject garbage."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Finding,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.errors import AnalysisError


def _finding(line: int = 4, snippet: str = "return time.time()") -> Finding:
    return Finding(
        rule="DET001",
        path="repro/engine/cache.py",
        line=line,
        col=11,
        message="time.time() varies run to run",
        snippet=snippet,
    )


class TestRoundTrip:
    def test_written_findings_are_grandfathered(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, [_finding()])
        baseline = load_baseline(baseline_path)
        kept, grandfathered = apply_baseline([_finding()], baseline)
        assert kept == []
        assert grandfathered == 1

    def test_fingerprint_survives_line_moves(self, tmp_path):
        # The file grew above the finding; the baseline still matches.
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, [_finding(line=4)])
        baseline = load_baseline(baseline_path)
        kept, grandfathered = apply_baseline([_finding(line=40)], baseline)
        assert kept == []
        assert grandfathered == 1

    def test_new_finding_is_kept(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, [_finding()])
        baseline = load_baseline(baseline_path)
        new = _finding(snippet="return time.time_ns()")
        kept, grandfathered = apply_baseline([new], baseline)
        assert kept == [new]
        assert grandfathered == 0

    def test_baseline_file_is_sorted_and_reviewable(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        first = _finding()
        second = Finding(
            rule="ASY001", path="repro/server/app.py", line=9, col=4,
            message="time.sleep() blocks", snippet="time.sleep(1)",
        )
        write_baseline(baseline_path, [second, first])
        document = json.loads(baseline_path.read_text())
        paths = [entry["path"] for entry in document["findings"]]
        assert paths == sorted(paths)
        assert all("snippet" in entry for entry in document["findings"])


class TestValidation:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="cannot read"):
            load_baseline(tmp_path / "absent.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError, match="not valid JSON"):
            load_baseline(path)

    def test_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(["not", "an", "object"]))
        with pytest.raises(AnalysisError, match="findings"):
            load_baseline(path)

    def test_unsupported_schema_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 99, "findings": []}))
        with pytest.raises(AnalysisError, match="schema"):
            load_baseline(path)

    def test_malformed_entry_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 1, "findings": [{"rule": "X"}]}))
        with pytest.raises(AnalysisError, match="malformed baseline entry"):
            load_baseline(path)
