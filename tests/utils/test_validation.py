"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    check_matrix,
    check_square,
    check_symmetric,
    check_unit_vector,
    check_vector,
)


class TestCheckVector:
    def test_accepts_list(self):
        out = check_vector([1, 2, 3])
        assert out.dtype == float
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-D"):
            check_vector(np.eye(2))

    def test_size_check(self):
        with pytest.raises(ValueError, match="length 4"):
            check_vector([1.0, 2.0], size=4)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_vector([1.0, float("nan")])

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="weights"):
            check_vector(np.eye(2), "weights")


class TestCheckMatrix:
    def test_shape_check(self):
        with pytest.raises(ValueError, match="shape"):
            check_matrix(np.zeros((2, 3)), shape=(3, 2))

    def test_rejects_vector(self):
        with pytest.raises(ValueError, match="2-D"):
            check_matrix([1.0, 2.0])


class TestCheckSquare:
    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            check_square(np.zeros((2, 3)))

    def test_size(self):
        with pytest.raises(ValueError, match="3x3"):
            check_square(np.eye(2), size=3)

    def test_accepts(self):
        np.testing.assert_array_equal(check_square(np.eye(3)), np.eye(3))


class TestCheckSymmetric:
    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            check_symmetric([[0.0, 1.0], [0.0, 0.0]])

    def test_tolerates_tiny_asymmetry(self):
        m = np.eye(2)
        m[0, 1] = 1e-12
        check_symmetric(m)  # should not raise


class TestCheckUnitVector:
    def test_accepts_unit(self):
        check_unit_vector([1.0, 0.0])

    def test_rejects_non_unit(self):
        with pytest.raises(ValueError, match="unit"):
            check_unit_vector([1.0, 1.0])

    def test_tolerance(self):
        check_unit_vector([1.0 + 1e-8, 0.0])


class TestCheckFinite:
    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_finite([np.inf])

    def test_accepts_finite(self):
        check_finite([[1.0, 2.0]])
