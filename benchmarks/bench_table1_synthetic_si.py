"""Table I: SI of the top first-iteration patterns across four iterations.

Paper: the three planted single-condition patterns top the list; once a
pattern is assimilated its SI (and its redundant variants') collapses to
a small negative value and stays there.
"""

from repro.experiments.synthetic_exp import run_table1


def bench_table1_synthetic_si(benchmark, save_result):
    result = benchmark.pedantic(run_table1, args=(0,), rounds=3, iterations=1)
    save_result("table1_synthetic_si", result.format())
    assert len(result.rows) == 10
    for row in result.rows:
        assert row.si_per_iteration[0] > 20.0
        assert row.si_per_iteration[3] < 1.0
