"""The subgroup description language.

Subgroup *intentions* are conjunctions of conditions on description
attributes (§II-A): inequality conditions on numeric/ordinal attributes,
equality conditions on categorical/binary ones. This package provides the
condition types, the conjunction (:class:`Description`) with a canonical
form, percentile-based discretization of numeric attributes, and the
refinement operator that beam search expands with.
"""

from repro.lang.conditions import Condition, EqualsCondition, NumericCondition
from repro.lang.description import Description
from repro.lang.discretize import split_points
from repro.lang.refinement import RefinementOperator

__all__ = [
    "Condition",
    "EqualsCondition",
    "NumericCondition",
    "Description",
    "split_points",
    "RefinementOperator",
]
