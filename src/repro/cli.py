"""Command-line interface: ``sisd`` (or ``python -m repro``).

Subcommands:

- ``sisd datasets`` — list the available datasets with their shapes.
- ``sisd mine DATASET`` — run iterative mining and print each pattern
  (``--workers N`` parallelizes the search itself).
- ``sisd batch JOBS.json`` — run a batch of declarative mining jobs
  concurrently over a worker pool.
- ``sisd experiment NAME`` — reproduce one of the paper's tables/figures.
- ``sisd experiments`` — list the reproducible experiments.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro import experiments
from repro.datasets import available_datasets, load_dataset
from repro.engine.executor import resolve_executor
from repro.engine.jobs import JobResult, run_jobs
from repro.errors import ReproError
from repro.interest.dl import DLParams
from repro.persist import job_result_to_dict, job_to_dict, load_jobs, save_json
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery
from repro.version import __version__

#: Experiment name -> zero-config runner returning an object with .format().
EXPERIMENTS: dict[str, Callable[[int], object]] = {
    "fig1": experiments.run_fig1,
    "fig2": experiments.run_fig2,
    "fig3": experiments.run_fig3,
    "fig4": experiments.run_fig4,
    "fig5": experiments.run_fig5,
    "fig6": experiments.run_fig6,
    "fig7": experiments.run_fig7,
    "fig8": experiments.run_fig8,
    "fig9": experiments.run_fig9,
    "fig10": experiments.run_fig10,
    "table1": experiments.run_table1,
    "table2": experiments.run_table2,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sisd",
        description=(
            "Subjectively Interesting Subgroup Discovery on real-valued "
            "targets (ICDE 2018 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"sisd {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list available datasets")

    mine = sub.add_parser("mine", help="run iterative subgroup discovery")
    mine.add_argument("dataset", choices=available_datasets())
    mine.add_argument("--seed", type=int, default=0, help="dataset/search seed")
    mine.add_argument("--iterations", type=int, default=3, help="mining iterations")
    mine.add_argument(
        "--kind", choices=("location", "spread"), default="location",
        help="pattern type per iteration (spread = the two-step process)",
    )
    mine.add_argument("--beam-width", type=int, default=40)
    mine.add_argument("--depth", type=int, default=4)
    mine.add_argument("--gamma", type=float, default=0.1, help="DL weight per condition")
    mine.add_argument(
        "--time-budget", type=float, default=None,
        help="wall-clock budget per beam search, in seconds",
    )
    mine.add_argument(
        "--sparsity", type=int, default=None,
        help="restrict spread directions to this many coordinates (2 only)",
    )
    mine.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the search itself (1 = serial)",
    )

    batch = sub.add_parser("batch", help="run a batch of mining jobs from JSON")
    batch.add_argument("jobs_file", help="JSON file with a 'jobs' list of specs")
    batch.add_argument(
        "--workers", type=int, default=1,
        help="worker processes running jobs concurrently (1 = serial)",
    )
    batch.add_argument(
        "--output", default=None,
        help="also write the results as JSON to this path",
    )

    sub.add_parser("experiments", help="list reproducible tables/figures")

    exp = sub.add_parser("experiment", help="reproduce a paper table/figure")
    exp.add_argument("name", choices=sorted(EXPERIMENTS))
    exp.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_datasets() -> int:
    for name in available_datasets():
        dataset = load_dataset(name, seed=0)
        print(
            f"{name:10s} n={dataset.n_rows:5d}  "
            f"d_x={dataset.n_descriptions:4d}  d_y={dataset.n_targets:4d}"
        )
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed)
    config = SearchConfig(
        beam_width=args.beam_width,
        max_depth=args.depth,
        time_budget_seconds=args.time_budget,
    )
    miner = SubgroupDiscovery(
        dataset,
        config=config,
        dl_params=DLParams(gamma=args.gamma),
        seed=args.seed,
        executor=resolve_executor(args.workers),
    )
    for iteration in miner.run(args.iterations, kind=args.kind, sparsity=args.sparsity):
        print(f"--- iteration {iteration.index} ---")
        print(iteration.location)
        if iteration.spread is not None:
            print(iteration.spread)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    try:
        jobs = load_jobs(args.jobs_file)
    except (OSError, ValueError) as exc:  # ValueError covers JSONDecodeError
        raise ReproError(f"cannot read {args.jobs_file}: {exc}") from exc
    outcomes = run_jobs(jobs, workers=args.workers, return_failures=True)
    done = [o for o in outcomes if isinstance(o, JobResult)]
    failed = [o for o in outcomes if not isinstance(o, JobResult)]
    for outcome in outcomes:
        print(outcome.format())
    total = sum(result.elapsed_seconds for result in done)
    print(
        f"{len(done)} job(s) done, {len(failed)} failed, "
        f"{total:.2f}s of mining time"
    )
    if args.output is not None:
        document = {
            "results": [job_result_to_dict(r) for r in done],
            "failures": [
                {"job": job_to_dict(f.job), "error": f.error} for f in failed
            ],
        }
        try:
            save_json(document, args.output)
        except OSError as exc:
            raise ReproError(f"cannot write {args.output}: {exc}") from exc
        print(f"results written to {args.output}")
    return 1 if failed else 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = EXPERIMENTS[args.name](args.seed)
    print(result.format())
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "datasets":
            return _cmd_datasets()
        if args.command == "experiments":
            for name in sorted(EXPERIMENTS):
                print(name)
            return 0
        if args.command == "mine":
            return _cmd_mine(args)
        if args.command == "batch":
            return _cmd_batch(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
