"""Zero-copy shared-memory data transport (engine layer).

The SI scorer evaluates thousands of candidate subgroups per beam level
against the same immutable arrays — targets, condition-mask stacks,
background-model vectors. Shipping those arrays to pool workers through
``pickle`` copies them once per session (and once per worker); on the
scalability-sized datasets that copying *is* the dominant parallel
overhead. This module moves the arrays into
``multiprocessing.shared_memory`` instead:

- :class:`ArrayStore` owns the segments one producer creates, packs many
  arrays into one segment, and guarantees they are unlinked exactly once
  (``close``/context manager/GC finalizer — whichever comes first).
- :class:`SharedArrayRef` is the lightweight handle that replaces an
  array during pickling. Unpickling it *is* the reattach: the receiving
  process maps the segment and the ref materializes as a read-only
  ``numpy`` view over shared pages, so consumers never see handles.
- :func:`publish` walks a session context (a scorer, an objective, a
  tuple of either) and swaps every array declared via the
  ``__shm_arrays__`` class hook for a ref, returning a lightweight
  shippable clone. The originals are untouched.

The views are read-only on the worker side: a worker that mutated a
shared page would poison its siblings and break the engine's
bit-identical determinism contract, so mutation fails loudly instead.

Leak accounting: every segment created by this process is tracked in a
module-level registry until it is unlinked; :func:`live_segments`
exposes the registry so tests can assert that a run left nothing behind
in ``/dev/shm``.
"""

from __future__ import annotations

import atexit
import copy
import os
import pickle
import threading
import uuid
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import EngineError

__all__ = [
    "ArrayStore",
    "SharedArrayRef",
    "SharedBytesRef",
    "attach_array",
    "collect_arrays",
    "live_segments",
    "publish",
    "segment_prefix",
]

#: Prefix of every segment this library creates; leak checks (and a
#: worried operator listing ``/dev/shm``) can filter on it.
SEGMENT_PREFIX = "sisd"

#: 64-byte alignment for packed arrays (cache line / SIMD friendly).
_ALIGN = 64

#: Names created by *this process* and not yet unlinked.
_LIVE_SEGMENTS: set[str] = set()
_LIVE_LOCK = threading.Lock()

#: Attachment cache of the *consuming* process: segment name -> mapping.
#: Old sessions' segments are closed once no view over them survives.
_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
_ATTACHED_SOFT_CAP = 64

#: Weakrefs to the numpy views handed out per attached segment (a plain
#: list of ``weakref.ref``s — arrays are unhashable, so no WeakSet).
#: ``memoryview.release()``'s BufferError guard is NOT a reliable
#: liveness signal for ``np.ndarray(buffer=...)`` views (numpy may drop
#: its Py_buffer export while the array still points into the mapping,
#: so a close() can succeed and unmap pages a live view dereferences — a
#: segfault, not an exception). Track liveness explicitly instead: a
#: segment is closable only when every view handed out over it has been
#: garbage collected.
_ATTACHED_VIEWS: dict[str, list] = {}


def _segment_busy(name: str) -> bool:
    """True while any view handed out over ``name`` is still alive."""
    refs = _ATTACHED_VIEWS.get(name)
    if not refs:
        return False
    live = [ref for ref in refs if ref() is not None]
    _ATTACHED_VIEWS[name] = live
    return bool(live)


def segment_prefix() -> str:
    """The name prefix of every segment this library creates."""
    return SEGMENT_PREFIX


def live_segments() -> frozenset[str]:
    """Names of segments this process created and has not unlinked."""
    with _LIVE_LOCK:
        return frozenset(_LIVE_SEGMENTS)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map a segment by name, caching the mapping per process.

    On Python < 3.13 attaching registers the segment with the resource
    tracker exactly like creating it does. That is safe here — pool
    workers inherit the *producer's* tracker (multiprocessing passes the
    tracker fd to fork/spawn/forkserver children alike), its name cache
    is a set, so the attach-side registration is an idempotent no-op and
    the producer's unlink unregisters exactly once. Do not "fix" this
    with ``resource_tracker.unregister`` in the consumer: that removes
    the shared entry early and the producer's unlink then crashes the
    tracker with a KeyError.
    """
    segment = _ATTACHED.get(name)
    if segment is not None:
        _ATTACHED.move_to_end(name)
        return segment
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        raise EngineError(
            f"shared-memory segment {name!r} is gone — it was unlinked "
            f"before this consumer attached (session closed too early?)"
        ) from None
    _ATTACHED[name] = segment
    if len(_ATTACHED) > _ATTACHED_SOFT_CAP:
        # The segment just mapped has no views yet — shield it.
        prune_attachments(keep=(name,))
    return segment


def prune_attachments(keep: tuple = ()) -> None:
    """Close cached mappings with no surviving views.

    A long-lived warm worker accumulates mappings of segments whose
    producers have long unlinked them; the pages stay resident until the
    mapping closes. Workers call this when a *new* session's context
    arrives (the old session's views have just been dropped), bounding
    resident shared memory to roughly the active session. Liveness comes
    from the per-segment view registry — see :data:`_ATTACHED_VIEWS` for
    why BufferError alone is not a safe guard. ``keep`` names segments
    to shield regardless of liveness (e.g. one mapped but not yet
    viewed).
    """
    for name in list(_ATTACHED):
        if name in keep or _segment_busy(name):
            continue
        try:
            _ATTACHED[name].close()
        except BufferError:  # pragma: no cover - belt and braces
            continue
        del _ATTACHED[name]
        _ATTACHED_VIEWS.pop(name, None)


def _close_attachments() -> None:  # pragma: no cover - exercised at exit
    for segment in _ATTACHED.values():
        try:
            segment.close()
        except Exception:
            pass
    _ATTACHED.clear()


atexit.register(_close_attachments)


def attach_array(
    name: str, offset: int, shape: tuple, dtype: str
) -> np.ndarray:
    """Materialize a read-only view over a shared segment.

    This is the unpickle target of :class:`SharedArrayRef`: the consumer
    process maps the segment (cached) and wraps the bytes in place — no
    copy is made, and the view rejects writes.
    """
    segment = _attach_segment(name)
    array = np.ndarray(
        tuple(shape), dtype=np.dtype(dtype), buffer=segment.buf, offset=offset
    )
    array.flags.writeable = False
    _ATTACHED_VIEWS.setdefault(name, []).append(weakref.ref(array))
    return array


def _load_bytes(name: str, size: int) -> bytes:
    """Unpickle target of :class:`SharedBytesRef`: read a raw payload."""
    segment = _attach_segment(name)
    return bytes(segment.buf[:size])


@dataclass(frozen=True)
class SharedArrayRef:
    """Handle to one array inside a shared segment.

    Pickling a ref ships four small fields; *unpickling it returns the
    array itself* (a read-only zero-copy view), so code downstream of a
    pickle boundary never has to know refs exist. On the producing side
    (no pickle round-trip) call :meth:`resolve`.
    """

    name: str
    offset: int
    shape: tuple
    dtype: str

    def resolve(self) -> np.ndarray:
        """The read-only view this ref describes (producer-side access)."""
        return attach_array(self.name, self.offset, self.shape, self.dtype)

    def __reduce__(self):
        return (attach_array, (self.name, self.offset, self.shape, self.dtype))


@dataclass(frozen=True)
class SharedBytesRef:
    """Handle to a raw byte payload (e.g. a pickled context) in a segment.

    Unlike :class:`SharedArrayRef` this unpickles as *itself* — callers
    decide when to :meth:`load`, so a cached consumer can skip the read
    entirely (the warm-worker fast path).
    """

    name: str
    size: int

    def load(self) -> bytes:
        """Read the payload out of shared memory."""
        return _load_bytes(self.name, self.size)


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class ArrayStore:
    """Owner of the shared segments one producer (session) creates.

    Every ``pack``/``share_bytes`` call creates one segment; the store
    remembers them all and :meth:`close` unlinks them exactly once —
    explicitly, via the context manager, or at garbage collection
    through a ``weakref.finalize``-style guard (``__del__`` here, since
    the store holds no cycles). Consumers attach read-only and never
    unlink; see :func:`_untrack` for why.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Producing
    # ------------------------------------------------------------------ #
    def _new_segment(self, size: int) -> shared_memory.SharedMemory:
        if self._closed:
            raise EngineError("ArrayStore is closed")
        name = f"{SEGMENT_PREFIX}_{os.getpid():x}_{uuid.uuid4().hex[:12]}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(size, 1)
        )
        with _LIVE_LOCK:
            _LIVE_SEGMENTS.add(segment.name)
        with self._lock:
            self._segments[segment.name] = segment
        return segment

    def pack(self, arrays: list[np.ndarray]) -> list[SharedArrayRef]:
        """Copy arrays into one new segment; returns their refs in order.

        Arrays are laid out back to back at 64-byte alignment in C
        order, so a ref's view has the exact bytes (and contiguity) of
        ``np.ascontiguousarray`` of the original.
        """
        specs = []
        offset = 0
        for array in arrays:
            array = np.asarray(array)
            if array.dtype.hasobject:
                raise EngineError(
                    f"cannot share object-dtype array (dtype {array.dtype})"
                )
            offset = _aligned(offset)
            specs.append((array, offset))
            offset += array.nbytes
        segment = self._new_segment(offset)
        refs = []
        for array, off in specs:
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=segment.buf, offset=off
            )
            np.copyto(view, array)
            refs.append(
                SharedArrayRef(
                    name=segment.name,
                    offset=off,
                    shape=tuple(array.shape),
                    dtype=array.dtype.str,
                )
            )
            del view  # release the buffer export before any later close
        return refs

    def share_array(self, array: np.ndarray) -> SharedArrayRef:
        """Put one array in its own segment (e.g. a per-level mask stack)."""
        return self.pack([array])[0]

    def share_bytes(self, payload: bytes) -> SharedBytesRef:
        """Put a raw byte payload (a pickled context) in its own segment."""
        segment = self._new_segment(len(payload))
        segment.buf[: len(payload)] = payload
        return SharedBytesRef(name=segment.name, size=len(payload))

    # ------------------------------------------------------------------ #
    # Releasing
    # ------------------------------------------------------------------ #
    def _destroy(self, segment: shared_memory.SharedMemory) -> None:
        try:
            segment.close()
        finally:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            with _LIVE_LOCK:
                _LIVE_SEGMENTS.discard(segment.name)

    def release(self, ref: SharedArrayRef | SharedBytesRef) -> None:
        """Unlink one ref's segment early (before the store closes).

        Consumers already attached keep their mapping — on POSIX an
        unlinked segment lives until the last mapping closes — but new
        attaches will fail, so release only after every ``map`` that
        ships the ref has returned.
        """
        with self._lock:
            segment = self._segments.pop(ref.name, None)
        if segment is not None:
            self._destroy(segment)

    def close(self) -> None:
        """Unlink every remaining segment; idempotent."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._closed = True
        for segment in segments:
            self._destroy(segment)

    @property
    def segment_names(self) -> tuple[str, ...]:
        """Names of this store's still-linked segments."""
        with self._lock:
            return tuple(self._segments)

    def __enter__(self) -> "ArrayStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayStore(segments={len(self.segment_names)})"


# --------------------------------------------------------------------- #
# Context publishing: the __shm_arrays__ walk
# --------------------------------------------------------------------- #
def collect_arrays(obj, found: dict[int, np.ndarray] | None = None) -> dict:
    """Gather every shareable array reachable from ``obj``, deduplicated.

    The walk descends into tuples/lists/dicts unconditionally and into
    objects exactly through their ``__shm_arrays__`` class hook (a tuple
    of attribute names); an attribute may hold an array, a container of
    arrays, or a nested object with its own hook. Arrays are keyed by
    identity so one array referenced twice ships once.
    """
    if found is None:
        found = {}
    if isinstance(obj, np.ndarray):
        if not obj.dtype.hasobject:
            found.setdefault(id(obj), obj)
        return found
    if isinstance(obj, (tuple, list)):
        for value in obj:
            collect_arrays(value, found)
        return found
    if isinstance(obj, dict):
        for value in obj.values():
            collect_arrays(value, found)
        return found
    names = getattr(type(obj), "__shm_arrays__", None)
    if names:
        for name in names:
            collect_arrays(getattr(obj, name), found)
    return found


def _swap(obj, mapping: dict[int, SharedArrayRef]):
    """Rebuild ``obj`` with every collected array replaced by its ref."""
    if isinstance(obj, np.ndarray):
        return mapping.get(id(obj), obj)
    if isinstance(obj, tuple):
        return tuple(_swap(value, mapping) for value in obj)
    if isinstance(obj, list):
        return [_swap(value, mapping) for value in obj]
    if isinstance(obj, dict):
        return {key: _swap(value, mapping) for key, value in obj.items()}
    names = getattr(type(obj), "__shm_arrays__", None)
    if names:
        clone = copy.copy(obj)
        for name in names:
            # object.__setattr__ so frozen dataclasses publish too.
            object.__setattr__(clone, name, _swap(getattr(obj, name), mapping))
        return clone
    return obj


def publish(context, store: ArrayStore):
    """A lightweight clone of ``context`` with its arrays in ``store``.

    The original context is untouched; the clone carries
    :class:`SharedArrayRef` handles in the array slots, which unpickle
    straight back into (read-only, zero-copy) arrays in the consumer.
    If nothing declares shareable arrays the context is returned as is.
    """
    found = collect_arrays(context)
    if not found:
        return context
    refs = store.pack(list(found.values()))
    mapping = dict(zip(found.keys(), refs))
    return _swap(context, mapping)


def payload_nbytes(context) -> int:
    """Pickled size of a context shipped the copying way (diagnostics)."""
    return len(pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL))
