"""SISD: Subjectively Interesting Subgroup Discovery on real-valued targets.

A from-scratch reproduction of Lijffijt et al., "Subjectively Interesting
Subgroup Discovery on Real-valued Targets" (ICDE 2018): the FORSIED
background model over multivariate real targets, location and spread
pattern syntaxes, the SI = IC/DL interestingness measure, beam search
over Cortana-style descriptions, and spread-direction optimization on
the unit sphere.

Quickstart — one declarative spec, one front door::

    from repro import MiningSpec, Workspace

    spec = MiningSpec.build("synthetic", kind="spread", n_iterations=3)
    with Workspace() as ws:
        for iteration in ws.stream(spec):   # yields patterns as mined
            print(iteration.location)
            print(iteration.spread)

The same spec (or its JSON file) drives inline runs (``ws.mine``),
interactive sessions (``ws.session``), and the submit/poll service
(``ws.submit``) with byte-identical results. The pre-spec entry points
(``SubgroupDiscovery``, ``MiningSession``, ``MiningJob`` + ``run_job``)
remain available as the execution substrate underneath.
"""

from repro.version import __version__
from repro.errors import (
    ConvergenceError,
    DataError,
    EngineError,
    LanguageError,
    ModelError,
    NotFittedError,
    ReproError,
    SearchError,
)
from repro.datasets import (
    AttributeKind,
    Column,
    Dataset,
    available_datasets,
    load_dataset,
    make_crime,
    make_mammals,
    make_socio,
    make_synthetic,
    make_water,
    from_dataframe,
    to_dataframe,
    read_csv,
    write_csv,
)
from repro.lang import (
    Condition,
    Description,
    EqualsCondition,
    NumericCondition,
    RefinementOperator,
)
from repro.model import (
    BackgroundModel,
    BlockPartition,
    LocationConstraint,
    Prior,
    SpreadConstraint,
    empirical_prior,
)
from repro.stats import Chi2Mixture, subgroup_cov, subgroup_mean, subgroup_spread
from repro.interest import (
    AttributeSurprisal,
    DLParams,
    PatternScore,
    attribute_surprisals,
    description_length,
    location_ic,
    score_location,
    score_spread,
    spread_ic,
)
from repro.search import (
    LocationBeamSearch,
    LocationPatternResult,
    MiningIteration,
    ResultSet,
    ScoredSubgroup,
    SearchConfig,
    SearchResult,
    SpreadObjective,
    SpreadPatternResult,
    SubgroupDiscovery,
    find_spread_direction,
)
from repro.search.branch_bound import (
    BranchAndBoundLocationSearch,
    find_optimal_location,
)
from repro.model.bernoulli import BernoulliBackgroundModel
from repro.session import MiningSession
from repro.engine import (
    ArrayStore,
    BeliefCache,
    JobFailure,
    JobResult,
    JobStatus,
    LRUCache,
    MiningJob,
    MiningService,
    ProcessExecutor,
    SerialExecutor,
    load_dataset_cached,
    resolve_executor,
    run_job,
    run_jobs,
)
from repro.registry import DATASETS, MEASURES, MODELS, SEARCHES, Registry
from repro.spec import (
    DatasetSpec,
    ExecutorSpec,
    InterestSpec,
    LanguageSpec,
    MiningSpec,
    ModelSpec,
    SearchSpec,
)
from repro.errors import DeadlineExpired, JobPreempted
from repro.events import (
    CallbackObserver,
    EventLog,
    MiningObserver,
    SchedulerEvent,
    broadcast,
)
from repro.api import Workspace, build_miner
from repro.server import MiningServer
from repro.client import RemoteWorkspace, ServerRestarted
from repro.store import BeliefStore, JobStore, Tenant, TenantRegistry

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "DataError",
    "LanguageError",
    "ModelError",
    "NotFittedError",
    "SearchError",
    "ConvergenceError",
    "EngineError",
    "DeadlineExpired",
    "JobPreempted",
    # datasets
    "AttributeKind",
    "Column",
    "Dataset",
    "available_datasets",
    "load_dataset",
    "make_synthetic",
    "make_crime",
    "make_mammals",
    "make_socio",
    "make_water",
    "from_dataframe",
    "to_dataframe",
    "read_csv",
    "write_csv",
    # language
    "Condition",
    "NumericCondition",
    "EqualsCondition",
    "Description",
    "RefinementOperator",
    # model
    "BackgroundModel",
    "BlockPartition",
    "LocationConstraint",
    "SpreadConstraint",
    "Prior",
    "empirical_prior",
    # statistics
    "subgroup_mean",
    "subgroup_cov",
    "subgroup_spread",
    "Chi2Mixture",
    # interestingness
    "DLParams",
    "description_length",
    "location_ic",
    "spread_ic",
    "PatternScore",
    "score_location",
    "score_spread",
    "AttributeSurprisal",
    "attribute_surprisals",
    # search
    "SearchConfig",
    "SubgroupDiscovery",
    "LocationBeamSearch",
    "LocationPatternResult",
    "SpreadPatternResult",
    "MiningIteration",
    "ResultSet",
    "ScoredSubgroup",
    "SearchResult",
    "SpreadObjective",
    "find_spread_direction",
    # extensions (paper's §V future work)
    "BranchAndBoundLocationSearch",
    "find_optimal_location",
    "BernoulliBackgroundModel",
    "MiningSession",
    # engine (parallel mining + job service)
    "SerialExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "ArrayStore",
    "LRUCache",
    "BeliefCache",
    "load_dataset_cached",
    "MiningJob",
    "JobResult",
    "JobFailure",
    "run_job",
    "run_jobs",
    "JobStatus",
    "MiningService",
    # registries (the declarative vocabulary)
    "Registry",
    "DATASETS",
    "SEARCHES",
    "MODELS",
    "MEASURES",
    # unified spec (the one config object)
    "MiningSpec",
    "DatasetSpec",
    "LanguageSpec",
    "ModelSpec",
    "InterestSpec",
    "SearchSpec",
    "ExecutorSpec",
    # events (streaming substrate)
    "MiningObserver",
    "CallbackObserver",
    "EventLog",
    "SchedulerEvent",
    "broadcast",
    # the front door
    "Workspace",
    "build_miner",
    # network (the served engine and its client twin)
    "MiningServer",
    "RemoteWorkspace",
    "ServerRestarted",
    # durability + tenancy (the persistent service substrate)
    "JobStore",
    "BeliefStore",
    "Tenant",
    "TenantRegistry",
]
