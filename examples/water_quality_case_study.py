"""River water-quality case study (§III-D, Figs. 9-10).

Reproduces the paper's finding: sites where Gammarus fossarum is absent
and Tubifex is frequent have strongly elevated oxygen-demand chemistry,
and - the paper's headline for this dataset - the most surprising
spread direction has *larger* variance than expected (polluted sites
are chemically heterogeneous), concentrated on BOD and KMnO4.

Run with::

    python examples/water_quality_case_study.py
"""

import numpy as np

from repro import MiningSpec, attribute_surprisals, build_miner, load_dataset
from repro.report.ascii import bar_chart


def main() -> None:
    dataset = load_dataset("water", seed=0)
    miner = build_miner(MiningSpec.build("water"))

    location = miner.find_location()
    print(f"pattern : {location.description}")
    print(f"records : {location.size} of {dataset.n_rows}  (paper: 91)")

    print()
    print("Fig. 10 - chemistry surprisals (z-scores; + above expectation):")
    records = attribute_surprisals(
        miner.model, location.indices, location.mean, names=dataset.target_names
    )
    top = records[:8]
    print(bar_chart([r.name for r in top], [r.z for r in top], width=44))

    miner.assimilate(location)
    spread = miner.find_spread_for(location)
    expected = miner.model.expected_spread(
        location.indices, spread.direction, spread.center
    )
    order = np.argsort(-np.abs(spread.direction))
    print()
    print("Fig. 9 - most surprising spread direction (top weights):")
    for j in order[:5]:
        print(f"  {dataset.target_names[j]:10s} {spread.direction[j]:+.3f}")
    ratio = spread.variance / expected
    print(f"  variance along w: observed {spread.variance:.2f} vs expected "
          f"{expected:.2f}  (x{ratio:.1f} LARGER than expected)")
    print("  -> surprising high-variance directions exist, not just displaced "
          "low-variance subgroups.")


if __name__ == "__main__":
    main()
