"""The thread-to-asyncio event bridge behind the server's SSE stream.

Mining events fire on worker threads (the engine's observer contract);
SSE subscribers live on the asyncio event loop. :class:`EventHub` is the
bridge the ROADMAP promised: :meth:`EventHub.publish` may be called from
any thread — it stamps the event with a monotonically increasing
sequence number, appends it to a bounded replay history, and fans it out
onto every subscriber's bounded ``asyncio.Queue`` via
``loop.call_soon_threadsafe``.

Three properties make the stream production-shaped:

- **Bounded everything.** History and per-subscriber queues have hard
  caps, so a slow consumer cannot grow server memory.
- **Slow consumers lose oldest first.** When a subscriber's queue is
  full, the oldest queued event is dropped (and counted) rather than
  blocking the miner or killing the stream; sequence numbers make the
  gap visible to the client.
- **Reconnect-and-resume.** A subscriber joining with ``since=N``
  first replays every retained event with a higher sequence number,
  then continues live — the mechanics behind SSE ``Last-Event-ID``.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from collections import deque
from typing import Any

from repro.obs.instruments import (
    EVENTS_DROPPED,
    EVENTS_PUBLISHED,
    EVENTS_RETAINED,
    EVENTS_SUBSCRIBERS,
    METRICS,
    SSE_RESUME_GAPS,
)

__all__ = ["EventHub", "Subscription"]

#: Sentinel a closing hub enqueues so blocked subscribers wake up.
_CLOSED = object()


class Subscription:
    """One subscriber's view of the stream: backlog replay, then live.

    Obtain via :meth:`EventHub.subscribe` (on the event loop). Iterate
    with :meth:`get`, which yields ``(seq, event)`` pairs in sequence
    order and ``None`` once the hub shuts down. Call :meth:`close` (or
    use ``async with``) to detach.
    """

    def __init__(
        self,
        hub: "EventHub",
        sub_id: int,
        backlog: list,
        maxsize: int,
        job_id: str | None = None,
    ):
        self._hub = hub
        self._id = sub_id
        self._backlog = deque(backlog)
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        #: When set, only events of this job enter the queue at all —
        #: foreign floods can neither fill it nor evict this job's
        #: events (the filter runs before enqueueing, not on read).
        self.job_id = job_id
        #: Events dropped for this subscriber because its queue was full.
        self.dropped = 0
        self._closed = False

    async def get(self) -> "tuple[int, dict] | None":
        """Next ``(seq, event)`` pair, or ``None`` when the hub closed."""
        if self._backlog:
            return self._backlog.popleft()
        entry = await self.queue.get()
        if entry is _CLOSED:
            return None
        return entry

    def get_nowait(self) -> "tuple[int, dict] | None":
        """Non-blocking :meth:`get`; raises ``asyncio.QueueEmpty`` if dry."""
        if self._backlog:
            return self._backlog.popleft()
        entry = self.queue.get_nowait()
        if entry is _CLOSED:
            return None
        return entry

    def close(self) -> None:
        """Detach from the hub (idempotent)."""
        if not self._closed:
            self._closed = True
            self._hub._unsubscribe(self._id)

    async def __aenter__(self) -> "Subscription":
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()


class EventHub:
    """Sequence-numbered fan-out from worker threads to asyncio queues."""

    def __init__(self, *, history: int = 4096, queue_maxsize: int = 512) -> None:
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        if queue_maxsize < 1:
            raise ValueError(f"queue_maxsize must be >= 1, got {queue_maxsize}")
        self._history: deque = deque(maxlen=history)
        self._queue_maxsize = queue_maxsize
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._latest = 0
        self._subscribers: dict[int, Subscription] = {}
        self._sub_ids = itertools.count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._dropped_total = 0
        self._closed = False
        METRICS.register_collector(self._collect_metrics)

    # ------------------------------------------------------------------ #
    # Loop binding and lifecycle
    # ------------------------------------------------------------------ #
    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach the event loop that owns the subscriber queues."""
        with self._lock:
            self._loop = loop

    def close(self) -> None:
        """Stop delivery and wake every blocked subscriber with ``None``."""
        METRICS.remove_collector(self._collect_metrics)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            loop = self._loop
            subscribers = list(self._subscribers.values())
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._fan_out_closed, subscribers)
            except RuntimeError:
                pass  # the loop already exited; nobody is left to wake

    def _fan_out_closed(self, subscribers: list) -> None:
        for sub in subscribers:
            self._offer(sub, _CLOSED)

    # ------------------------------------------------------------------ #
    # Publishing (any thread)
    # ------------------------------------------------------------------ #
    def publish(self, event: dict) -> int:
        """Stamp, retain, and fan out one event; returns its sequence.

        Thread-safe and non-blocking: callable straight from an engine
        observer callback on a mining worker thread. Events published
        before :meth:`bind` are retained for replay but not fanned out
        (there is no loop to deliver them on yet).
        """
        with self._lock:
            if self._closed:
                return self._latest
            seq = next(self._seq)
            self._latest = seq
            entry = (seq, event)
            self._history.append(entry)
            # Schedule the fan-out while still holding the lock: two
            # threads publishing back-to-back must enqueue their loop
            # callbacks in sequence order, or a subscriber could see
            # N+1 before N and (filtering on seq) drop N forever.
            # call_soon_threadsafe is itself non-blocking, so this adds
            # no meaningful time under the lock.
            if self._loop is not None and self._subscribers:
                self._loop.call_soon_threadsafe(
                    self._fan_out, entry, list(self._subscribers.values())
                )
        return seq

    def _fan_out(self, entry: tuple, subscribers: list) -> None:
        for sub in subscribers:
            self._offer(sub, entry)

    def _offer(self, sub: Subscription, entry: Any) -> None:
        """Enqueue to one subscriber, dropping its oldest event if full."""
        if (
            entry is not _CLOSED
            and sub.job_id is not None
            and entry[1].get("job_id") != sub.job_id
        ):
            return  # filtered before it can occupy (or evict from) the queue
        while True:
            try:
                sub.queue.put_nowait(entry)
                return
            except asyncio.QueueFull:
                try:
                    dropped = sub.queue.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - tiny race
                    continue
                if dropped is _CLOSED:
                    # Never drop the shutdown sentinel: re-deliver it in
                    # place of the incoming event.
                    entry = _CLOSED
                    continue
                sub.dropped += 1
                with self._lock:
                    self._dropped_total += 1

    # ------------------------------------------------------------------ #
    # Subscribing (event-loop thread)
    # ------------------------------------------------------------------ #
    def subscribe(
        self, since: int | None = None, *, job_id: str | None = None
    ) -> Subscription:
        """Join the stream; ``since`` replays retained events after it.

        Must be called on the bound event loop (the queue it creates
        belongs to that loop). ``since=None`` starts from *now*;
        ``since=0`` replays the whole retained history. If ``since``
        predates the oldest retained event the replay silently starts at
        the oldest — the sequence numbers tell the client how much it
        missed. ``job_id`` filters at the source: only that job's events
        (backlog and live) ever enter this subscriber's queue, so an
        unrelated job's event flood cannot evict them.
        """
        with self._lock:
            if since is None:
                backlog: list = []
            else:
                # A resume whose anchor predates the retained history has
                # irrecoverably missed events; count the gap so operators
                # can size ``history`` from /metrics instead of guessing.
                oldest = (
                    self._history[0][0] if self._history else self._latest + 1
                )
                if oldest - 1 > since:
                    SSE_RESUME_GAPS.inc()
                backlog = [
                    entry
                    for entry in self._history
                    if entry[0] > since
                    and (job_id is None or entry[1].get("job_id") == job_id)
                ]
            sub = Subscription(
                self,
                next(self._sub_ids),
                backlog,
                self._queue_maxsize,
                job_id=job_id,
            )
            if not self._closed:
                self._subscribers[sub._id] = sub
            closed = self._closed
        if closed:
            sub.queue.put_nowait(_CLOSED)
        return sub

    def _unsubscribe(self, sub_id: int) -> None:
        with self._lock:
            self._subscribers.pop(sub_id, None)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def latest_seq(self) -> int:
        """Sequence number of the most recently published event."""
        with self._lock:
            return self._latest

    def stats(self) -> dict:
        """Counters for the health endpoint."""
        with self._lock:
            return {
                "published": self._latest,
                "retained": len(self._history),
                "subscribers": len(self._subscribers),
                "dropped": self._dropped_total,
            }

    def _collect_metrics(self) -> None:
        """Refresh the stream gauges at scrape time (registry collector)."""
        stats = self.stats()
        EVENTS_PUBLISHED.set(float(stats["published"]))
        EVENTS_RETAINED.set(float(stats["retained"]))
        EVENTS_SUBSCRIBERS.set(float(stats["subscribers"]))
        EVENTS_DROPPED.set(float(stats["dropped"]))
