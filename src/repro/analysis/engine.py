"""The lint engine: collect files once, parse once, run every rule.

:class:`LintEngine` owns the O(files) discipline: each file is read and
parsed into one shared :class:`~repro.analysis.source.SourceFile`
(parent links, import table, pragma index), and every applicable rule
visits that one tree. Findings come back pragma-filtered and sorted by
``(path, line, col, rule)``, so two runs over the same tree produce
byte-identical reports — which is what makes ``--json`` output
diffable and the CI artifact reviewable.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import repro.analysis.rules  # noqa: F401  - registers the built-in pack
from repro.analysis.base import RULES, LintRule
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile
from repro.errors import AnalysisError

__all__ = ["LintEngine", "LintReport", "changed_files"]

#: Pseudo-rule id for files the parser rejects outright.
SYNTAX_RULE = "E100"


@dataclass
class LintReport:
    """Everything one lint run produced, in stable order."""

    findings: list[Finding] = field(default_factory=list)
    #: Findings silenced by inline ``# sisd: ignore[...]`` pragmas.
    suppressed: int = 0
    #: Python files examined.
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


class LintEngine:
    """Run a rule set over files or directory trees.

    Parameters
    ----------
    rules:
        Rule ids to run (default: every registered rule). Unknown ids
        raise, listing what is registered.
    root:
        Paths in findings are shown relative to this directory when
        possible (default: the current working directory), keeping
        reports machine-independent.
    """

    def __init__(
        self,
        rules: Iterable[str] | None = None,
        *,
        root: str | Path | None = None,
    ) -> None:
        ids = list(rules) if rules is not None else list(RULES)
        self.rules: list[LintRule] = [RULES.get(rule_id)() for rule_id in ids]
        self.root = Path(root) if root is not None else Path.cwd()

    # ------------------------------------------------------------------ #
    # File collection
    # ------------------------------------------------------------------ #
    def collect(self, paths: Sequence[str | Path]) -> list[Path]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        collected: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                collected.update(
                    candidate
                    for candidate in path.rglob("*.py")
                    if "__pycache__" not in candidate.parts
                )
            elif path.is_file():
                if path.suffix == ".py":
                    collected.add(path)
            else:
                raise AnalysisError(f"no such file or directory: {path}")
        return sorted(collected)

    # ------------------------------------------------------------------ #
    # Linting
    # ------------------------------------------------------------------ #
    def lint(self, paths: Sequence[str | Path]) -> LintReport:
        """Lint every python file under ``paths``; see :class:`LintReport`."""
        report = LintReport()
        for path in self.collect(paths):
            findings, suppressed = self.lint_file(path)
            report.findings.extend(findings)
            report.suppressed += suppressed
            report.files += 1
        report.findings.sort(key=lambda finding: finding.sort_key)
        return report

    def lint_file(self, path: Path) -> tuple[list[Finding], int]:
        """Lint one file; returns (findings, pragma-suppressed count)."""
        try:
            source = SourceFile.from_path(path, root=self.root)
        except SyntaxError as exc:
            display = self._display(path)
            return (
                [
                    Finding(
                        rule=SYNTAX_RULE,
                        path=display,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}",
                        snippet=(exc.text or "").strip(),
                    )
                ],
                0,
            )
        except UnicodeDecodeError as exc:
            return (
                [
                    Finding(
                        rule=SYNTAX_RULE,
                        path=self._display(path),
                        line=1,
                        col=0,
                        message=f"file is not UTF-8: {exc}",
                    )
                ],
                0,
            )
        findings: list[Finding] = []
        suppressed = 0
        for rule in self.rules:
            if not rule.applies(source):
                continue
            for finding in rule.check(source):
                if source.is_ignored(finding.rule, finding.line):
                    suppressed += 1
                else:
                    findings.append(finding)
        return findings, suppressed

    def _display(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()


def changed_files(
    ref: str, *, cwd: str | Path | None = None
) -> list[Path]:
    """Python files changed versus ``ref``, plus untracked ones.

    The ``sisd lint --changed`` fast path: lints only what a commit
    would touch, so the pre-commit hook stays sub-second on a large
    tree.
    """
    base = Path(cwd) if cwd is not None else Path.cwd()
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "-z", ref, "--", "*.py"],
            cwd=base,
            capture_output=True,
            text=True,
            check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard", "-z", "*.py"],
            cwd=base,
            capture_output=True,
            text=True,
            check=True,
        )
    except FileNotFoundError as exc:
        raise AnalysisError("--changed needs git on PATH") from exc
    except subprocess.CalledProcessError as exc:
        detail = (exc.stderr or "").strip() or f"git exited {exc.returncode}"
        raise AnalysisError(f"--changed {ref!r}: {detail}") from exc
    names = set()
    for blob in (diff.stdout, untracked.stdout):
        names.update(name for name in blob.split("\0") if name)
    return sorted(
        path
        for name in names
        if (path := base / name).is_file() and path.suffix == ".py"
    )
