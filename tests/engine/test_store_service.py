"""MiningService + JobStore: restart recovery, tenancy, preemption.

The durable-service contract under test:

- terminal records survive a restart **bit-identically** and are served
  from the store with zero recompute;
- queued/running jobs are re-enqueued in their original submit order;
- warm belief prefixes replay from the on-disk spill (no candidate
  evaluation for replayed iterations);
- tenant fair-share ordering and cooperative preemption.
"""

import time

import pytest

from repro.engine.jobs import MiningJob
from repro.engine.service import JobStatus, MiningService
from repro.errors import EngineError
from repro.events import MiningObserver
from repro.persist import job_result_to_dict
from repro.search.config import SearchConfig
from repro.store import JobStore

FAST = SearchConfig(beam_width=6, max_depth=2, top_k=10)
SLOW = SearchConfig(beam_width=40, max_depth=4, top_k=150)


def _job(seed=0, config=FAST, **kwargs):
    return MiningJob(dataset="synthetic", seed=seed, config=config, **kwargs)


class _ScheduleLog(MiningObserver):
    """Collects scheduler events (thread-safely appended tuples)."""

    def __init__(self):
        self.events = []

    def on_schedule(self, event):
        self.events.append((event.kind, event.job_id, event.job.name))

    def kinds(self, kind):
        return [e for e in self.events if e[0] == kind]


class TestRestartRecovery:
    def test_terminal_records_served_bit_identically_with_zero_recompute(
        self, tmp_path
    ):
        with MiningService(
            max_workers=2, backend="thread", store=tmp_path
        ) as service:
            ids = [
                service.submit(_job(seed=s, n_iterations=2, kind="spread"))
                for s in range(3)
            ]
            docs = {
                i: job_result_to_dict(service.result(i, 120)) for i in ids
            }

        log = _ScheduleLog()
        with MiningService(
            max_workers=2, backend="thread", store=tmp_path, observer=log
        ) as service:
            for i in ids:
                # Already DONE on open: no queueing, no dispatch.
                assert service.status(i) == JobStatus.DONE
                assert job_result_to_dict(service.result(i, 5)) == docs[i]
            assert log.kinds("dispatched") == []
            assert log.kinds("recovered") == []
            # A resubmission of a recovered spec is a result-cache hit.
            again = service.submit(_job(seed=0, n_iterations=2, kind="spread"))
            assert service.status(again) == JobStatus.DONE
            assert log.kinds("dispatched") == []

    def test_failed_jobs_recover_their_error(self, tmp_path):
        with MiningService(backend="serial", store=tmp_path) as service:
            job_id = service.submit(_job(targets=("not-a-target",)))
            assert service.status(job_id) == JobStatus.FAILED
        with MiningService(backend="serial", store=tmp_path) as service:
            assert service.status(job_id) == JobStatus.FAILED
            with pytest.raises(EngineError):
                service.result(job_id)

    def test_interrupted_jobs_reenqueue_in_submit_order(self, tmp_path):
        import threading

        # Simulate a crash: close the *store* under a live service (its
        # later persistence attempts are swallowed), leaving the records
        # at their last durable states: running / queued.
        running = threading.Event()

        class _Stall(MiningObserver):
            """Keeps the blocker visibly RUNNING across the 'crash'."""

            def on_iteration(self, iteration):
                running.set()
                time.sleep(0.5)

        service = MiningService(max_workers=1, backend="thread", store=tmp_path)
        blocker = service.submit(
            _job(seed=9, n_iterations=4, name="blocker"), observer=_Stall()
        )
        assert running.wait(60)  # the blocker reached RUNNING (persisted)
        queued = [
            service.submit(_job(seed=s, name=f"queued-{s}")) for s in (1, 2, 3)
        ]
        service.store.close()  # "crash": nothing after this persists

        log = _ScheduleLog()
        recovered = MiningService(
            max_workers=1, backend="thread", store=tmp_path, observer=log
        )
        try:
            assert len(log.kinds("recovered")) == 4
            statuses = recovered.wait_all(timeout=180)
            assert statuses[blocker] == JobStatus.DONE
            assert [statuses[i] for i in queued] == [JobStatus.DONE] * 3
            # One worker: dispatch order == recovery order == submit order.
            names = [e[2] for e in log.kinds("dispatched")]
            assert names == ["blocker", "queued-1", "queued-2", "queued-3"]
        finally:
            recovered.shutdown()
            service.shutdown(wait=False)

    def test_warm_belief_prefix_replays_from_disk_without_candidates(
        self, tmp_path
    ):
        spec = dict(seed=4, kind="spread", config=FAST)
        with MiningService(
            max_workers=1, backend="thread", store=tmp_path
        ) as service:
            job_id = service.submit(_job(n_iterations=2, **spec))
            first = job_result_to_dict(service.result(job_id, 120))

        class _Trace(MiningObserver):
            def __init__(self):
                self.trace = []

            def on_candidate(self, candidate):
                self.trace.append("candidate")

            def on_iteration(self, iteration):
                self.trace.append(("iteration", iteration.index))

        trace = _Trace()
        with MiningService(
            max_workers=1, backend="thread", store=tmp_path
        ) as service:
            # A *longer* run of the same spec: not a result-cache hit,
            # but its first two iterations replay from the spilled
            # belief prefix — instantly, with zero candidates evaluated.
            job_id = service.submit(
                _job(n_iterations=3, **spec), observer=trace
            )
            extended = job_result_to_dict(service.result(job_id, 120))
        assert trace.trace[0] == ("iteration", 1)
        assert trace.trace[1] == ("iteration", 2)
        assert "candidate" in trace.trace  # iteration 3 was really mined
        # The replayed prefix is bit-identical to the original mine.
        assert extended["iterations"][:2] == first["iterations"]


class TestTerminalExpiry:
    def test_cap_evicts_oldest_terminal_records(self, tmp_path):
        log = _ScheduleLog()
        with MiningService(
            backend="serial",
            store=tmp_path,
            max_terminal_records=1,
            observer=log,
        ) as service:
            ids = [service.submit(_job(seed=s)) for s in range(3)]
            # Pruning runs on scheduling actions; the next submit is one.
            trigger = service.submit(_job(seed=99))
            jobs = service.jobs()
            # The oldest terminal records are gone, the newest survive.
            assert ids[0] not in jobs and ids[1] not in jobs
            assert ids[2] in jobs
            assert len(log.kinds("evicted")) == 2
        with JobStore(tmp_path) as store:
            stored = [d["job_id"] for d in store.records()]
            assert ids[2] in stored and trigger in stored
            assert ids[0] not in stored and ids[1] not in stored

    def test_ttl_expires_terminal_records(self, tmp_path):
        with MiningService(
            backend="serial", store=tmp_path, record_ttl_seconds=0.05
        ) as service:
            old = service.submit(_job(seed=0))
            time.sleep(0.1)
            service.submit(_job(seed=1))  # any submit triggers pruning
            assert old not in service.jobs()

    def test_validation(self, tmp_path):
        with pytest.raises(EngineError):
            MiningService(store=tmp_path, record_ttl_seconds=0.0)
        with pytest.raises(EngineError):
            MiningService(store=tmp_path, max_terminal_records=0)


class TestTenantFairShare:
    def _run(self, shares, submissions, tmp_path):
        """Submit per-tenant jobs behind a blocker; return dispatch order."""
        import threading

        running = threading.Event()
        release = threading.Event()

        class _Gate(MiningObserver):
            """Parks the blocker until every contender is queued."""

            def on_iteration(self, iteration):
                running.set()
                release.wait(60)

        log = _ScheduleLog()
        with MiningService(
            max_workers=1, backend="thread", observer=log, store=tmp_path
        ) as service:
            service.submit(
                _job(seed=9, n_iterations=2, name="blocker"), observer=_Gate()
            )
            assert running.wait(60)  # the blocker occupies the only worker
            for seed, (name, tenant) in enumerate(submissions, start=10):
                service.submit(
                    _job(seed=seed, name=name),
                    tenant=tenant,
                    tenant_share=shares.get(tenant, 1.0),
                )
            release.set()
            service.wait_all(timeout=180)
        order = [e[2] for e in log.kinds("dispatched")]
        assert order[0] == "blocker"
        return order[1:]

    def test_equal_shares_interleave(self, tmp_path):
        order = self._run(
            {},
            [
                ("A1", "alice"),
                ("A2", "alice"),
                ("A3", "alice"),
                ("A4", "alice"),
                ("B1", "bob"),
                ("B2", "bob"),
            ],
            tmp_path,
        )
        assert order == ["A1", "B1", "A2", "B2", "A3", "A4"]

    def test_weighted_share_gets_proportionally_more_slots(self, tmp_path):
        order = self._run(
            {"alice": 2.0},
            [
                ("A1", "alice"),
                ("A2", "alice"),
                ("A3", "alice"),
                ("A4", "alice"),
                ("B1", "bob"),
                ("B2", "bob"),
            ],
            tmp_path,
        )
        assert order == ["A1", "B1", "A2", "A3", "B2", "A4"]

    def test_tenant_load_counts_live_jobs(self, tmp_path):
        import threading

        running = threading.Event()

        class _Stall(MiningObserver):
            def on_iteration(self, iteration):
                running.set()
                time.sleep(0.4)

        with MiningService(max_workers=1, backend="thread") as service:
            service.submit(
                _job(seed=9, n_iterations=3), tenant="alice", observer=_Stall()
            )
            assert running.wait(60)
            service.submit(_job(seed=1), tenant="alice")
            service.submit(_job(seed=2), tenant="bob")
            assert service.tenant_load("alice") == 2
            assert service.tenant_load("bob") == 1
            assert service.tenant_load("nobody") == 0
            service.wait_all(timeout=180)
            assert service.tenant_load("alice") == 0

    def test_untenanted_submissions_keep_exact_fifo_behavior(self, tmp_path):
        import threading

        running = threading.Event()
        release = threading.Event()

        class _Gate(MiningObserver):
            def on_iteration(self, iteration):
                running.set()
                release.wait(60)

        log = _ScheduleLog()
        with MiningService(
            max_workers=1, backend="thread", observer=log
        ) as service:
            service.submit(
                _job(seed=9, n_iterations=2, name="blocker"), observer=_Gate()
            )
            assert running.wait(60)
            for s in (1, 2, 3):
                service.submit(_job(seed=s, name=f"plain-{s}"))
            release.set()
            service.wait_all(timeout=180)
        names = [e[2] for e in log.kinds("dispatched")]
        assert names == ["blocker", "plain-1", "plain-2", "plain-3"]


class TestPreemption:
    def test_preempted_job_requeues_and_completes(self, tmp_path):
        import threading

        started = threading.Event()

        class _SlowIterations(MiningObserver):
            def on_iteration(self, iteration):
                started.set()
                time.sleep(0.25)

        log = _ScheduleLog()
        with MiningService(
            max_workers=1, backend="thread", observer=log, store=tmp_path
        ) as service:
            job_id = service.submit(
                _job(seed=5, n_iterations=6), observer=_SlowIterations()
            )
            assert started.wait(60)
            assert service.preempt(job_id)
            result = service.result(job_id, 180)
            assert len(result.iterations) == 6
        kinds = [e[0] for e in log.events if e[1] == job_id]
        assert "preempt_requested" in kinds
        assert "preempted" in kinds
        assert kinds.count("dispatched") == 2  # ran, yielded, ran again

    def test_process_backend_preempts_via_flag_file(self, tmp_path):
        """Cooperative preemption crosses the process boundary.

        The thread backend hands the worker a ``threading.Event``; the
        process backend cannot, so the service plants a
        :class:`~repro.engine.jobs.FileYieldFlag` instead. Same
        contract: yield at the next iteration boundary, requeue, finish.
        """
        log = _ScheduleLog()
        with MiningService(
            max_workers=1, backend="process", observer=log, store=tmp_path
        ) as service:
            job_id = service.submit(_job(seed=5, n_iterations=8))
            deadline = time.monotonic() + 60
            while service.status(job_id) != JobStatus.RUNNING:
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.02)
            assert service.preempt(job_id)
            result = service.result(job_id, 180)
            assert len(result.iterations) == 8
        kinds = [e[0] for e in log.events if e[1] == job_id]
        assert "preempt_requested" in kinds
        assert "preempted" in kinds
        assert kinds.count("dispatched") == 2  # ran, yielded, ran again

    def test_preempt_unknown_or_finished_job(self):
        with MiningService(backend="serial") as service:
            job_id = service.submit(_job())
            assert not service.preempt(job_id)  # already terminal
            with pytest.raises(EngineError):
                service.preempt("no-such-job")
