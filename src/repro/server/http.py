"""Minimal HTTP/1.1 plumbing over asyncio streams (stdlib only).

The server speaks just enough HTTP for its JSON + SSE surface: request
line, headers, ``Content-Length`` bodies, keep-alive, and chunk-free
streaming responses that end by closing the connection. No external web
framework — the ROADMAP's constraint is a stdlib-only network layer —
and no chunked transfer, multipart, or TLS: put a real proxy in front
for those.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ReproError

#: Upper bounds keeping one bad client from ballooning server memory.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 65536
MAX_BODY_BYTES = 16 * 2**20

#: Bodies below this stay identity-encoded: gzip's header plus the CPU
#: round-trip outweigh any wire saving on tiny JSON documents.
GZIP_MIN_BYTES = 512

_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
}


class HttpError(ReproError):
    """A request the server rejects with an HTTP status code.

    ``headers`` are extra response headers the rejection must carry
    (``Retry-After`` on a 429, ``WWW-Authenticate`` on a 401).
    """

    def __init__(
        self, status: int, message: str, *, headers: tuple = ()
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = tuple(headers)


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body parsed as a JSON object; raises :class:`HttpError`."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            data = json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise HttpError(400, "request body must be a JSON object")
        return data

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_request(reader, *, max_body: int = MAX_BODY_BYTES) -> Request | None:
    """Parse one request off the stream; ``None`` on a clean EOF.

    ``max_body`` overrides the default body cap: the JSON surface keeps
    the conservative :data:`MAX_BODY_BYTES`, while the dist worker tier
    (pickled shard payloads carrying numpy stacks) raises it.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    except ValueError:
        # asyncio's own stream limit (64 KiB) tripped before ours: the
        # line is oversized either way, so answer 400, don't crash the
        # connection task with an unhandled ValueError.
        raise HttpError(400, "request line too long") from None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")
    headers: dict = {}
    total = 0
    while True:
        try:
            line = await reader.readline()
        except ValueError:
            raise HttpError(400, "headers too large") from None
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(400, "headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all
            raise HttpError(400, "undecodable header") from None
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length!r}") from None
        if n < 0 or n > max_body:
            raise HttpError(413, f"body of {n} bytes exceeds {max_body}")
        body = await reader.readexactly(n) if n else b""
    elif headers.get("transfer-encoding"):
        raise HttpError(501, "chunked request bodies are not supported")
    split = urlsplit(target)
    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: tuple = (),
) -> bytes:
    """Serialize one complete (non-streaming) response."""
    phrase = _PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = "\r\n".join(lines).encode("latin-1")
    return head + b"\r\n\r\n" + body


def json_body(document: dict) -> bytes:
    """Encode a JSON response body (exact float round-trips)."""
    return json.dumps(document, allow_nan=False).encode("utf-8")


# --------------------------------------------------------------------- #
# Content negotiation: ETag revalidation and gzip coding
# --------------------------------------------------------------------- #
def etag_for(body: bytes) -> str:
    """A strong validator of one exact (identity-encoded) body.

    Content-hashed, so it is stable across server restarts — which is
    what lets a client revalidate a result document against a *restarted*
    server and still get its 304.
    """
    return '"' + hashlib.sha256(body).hexdigest()[:32] + '"'


def etag_matches(header_value: str | None, etag: str) -> bool:
    """Does an ``If-None-Match`` header match this validator?

    Handles the comma-separated list form, ``W/`` weak prefixes (weak
    comparison is fine for a GET whose body is byte-stable), and ``*``.
    """
    if not header_value:
        return False
    for candidate in header_value.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == "*" or candidate == etag:
            return True
    return False


def wants_gzip(headers: dict) -> bool:
    """Did the client's ``Accept-Encoding`` offer gzip (q>0)?"""
    accept = headers.get("accept-encoding", "")
    for token in accept.split(","):
        coding, _, params = token.strip().partition(";")
        if coding.strip().lower() not in ("gzip", "*"):
            continue
        params = params.strip()
        if params.startswith("q="):
            try:
                return float(params[2:]) > 0.0
            except ValueError:
                return False
        return True
    return False


def gzip_body(body: bytes) -> bytes:
    """gzip-code a response body, deterministically (mtime pinned to 0).

    Determinism matters: the same result document must compress to the
    same bytes on every request and every server generation, or caching
    layers in front would see spurious changes.
    """
    return gzip.compress(body, compresslevel=6, mtime=0)


def bearer_token(headers: dict) -> str | None:
    """The ``Authorization: Bearer`` credential, or None."""
    value = headers.get("authorization", "")
    scheme, _, credential = value.partition(" ")
    if scheme.lower() != "bearer":
        return None
    credential = credential.strip()
    return credential or None


def sse_preamble(*, retry_ms: int = 2000) -> bytes:
    """Response head + retry hint opening a Server-Sent-Events stream.

    The stream carries no ``Content-Length`` and ends when the server
    closes the connection, so the preamble pins ``Connection: close``.
    """
    head = (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + f"retry: {retry_ms}\r\n\r\n".encode("latin-1")


def sse_event(seq: int, event_type: str, data: dict) -> bytes:
    """Serialize one SSE frame (``id`` carries the sequence number)."""
    payload = json.dumps(data, allow_nan=False)
    return (
        f"id: {seq}\r\nevent: {event_type}\r\ndata: {payload}\r\n\r\n"
    ).encode("utf-8")


def sse_comment(text: str = "keep-alive") -> bytes:
    """A comment frame (heartbeat; ignored by SSE parsers)."""
    return f": {text}\r\n\r\n".encode("utf-8")
