"""Consistent hashing for fingerprint-keyed job placement.

A :class:`HashRing` maps every key (a job fingerprint) to one node (a
replica name) such that adding or removing a node only moves the keys
that must move (~1/N of them), while every other key keeps its replica
— and with it the replica-local belief and result caches a repeat
submission wants to hit. Virtual nodes smooth the load split.

Hashing is sha256 of stable strings, so placement is identical across
processes, machines, and restarts: any router over the same healthy
membership routes the same spec to the same replica.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator

from repro.errors import EngineError

__all__ = ["HashRing"]


def _point(label: str) -> int:
    """A stable 64-bit position on the ring."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Deterministic consistent-hash ring with virtual nodes."""

    def __init__(self, nodes: Iterable[str] = (), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise EngineError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def add(self, node: str) -> None:
        """Join one node (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.vnodes):
            point = _point(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Leave one node (idempotent); its keys move to their successors."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        points, owners = [], []
        for point, owner in zip(self._points, self._owners):
            if owner != node:
                points.append(point)
                owners.append(owner)
        self._points, self._owners = points, owners

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def node_for(self, key: str) -> str:
        """The node owning ``key`` (first vnode clockwise of its point)."""
        for node in self.preference(key):
            return node
        raise EngineError("hash ring is empty")

    def preference(self, key: str) -> Iterator[str]:
        """Every node, in failover order for ``key``.

        The first yield is :meth:`node_for`; each later yield is the
        next *distinct* node clockwise — the deterministic replica a
        router retries on when the owner is down.
        """
        if not self._points:
            return
        start = bisect.bisect(self._points, _point(key)) % len(self._points)
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                yield owner
