"""``MiningRouter``: fingerprint-routed federation of MiningServer replicas.

The service tier scales out by running several
:class:`~repro.server.MiningServer` replicas and putting this router in
front. Placement is *content-based*: the router computes the submitted
spec's fingerprint (the same digest the engine caches by) and walks a
:class:`~repro.dist.ring.HashRing` keyed on it, so an identical spec
always lands on the replica already holding its belief prefixes and
result cache — federation without giving up the cache hit.

Replica job ids are tagged on the way out (``job-0001`` on replica
``r1`` becomes ``job-0001@r1``) and untagged on the way back in, which
makes the router stateless: any follow-up request carries its own
routing. Replicas are health-checked over ``GET /health``; the PR 6
boot-generation marker tells a restart (fresh sequence space, recovered
jobs) from a blip, and membership changes rebalance the ring. The
router also hosts the worker registry of the compute tier
(``POST /workers/register`` / ``GET /workers``), so one address
bootstraps both tiers.

``repro.client.RemoteWorkspace`` speaks to a router unchanged: submit,
status, result (ETag/gzip relayed verbatim), cancel, and the per-job
SSE stream all work, with ``data:`` frames rewritten in flight so event
job ids match the tagged id the client submitted under.
"""

from __future__ import annotations

import asyncio
import json
import secrets
import threading
from urllib.parse import urlsplit

from repro.dist import wire as dwire
from repro.dist.ring import HashRing
from repro.errors import EngineError, ReproError
from repro.obs import clock
from repro.obs.instruments import (
    METRICS,
    ROUTER_FORWARDED,
    ROUTER_REBALANCES,
    ROUTER_SUBMITTED,
)
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.obs.trace import TRACER
from repro.persist import job_from_dict
from repro.server import http
from repro.server.app import ServerHandle
from repro.server.wire import WIRE_SCHEMA, error_to_wire
from repro.spec import MiningSpec
from repro.version import __version__

__all__ = ["MiningRouter"]

#: Stream-reader limit of upstream connections: SSE ``data:`` lines
#: carry whole result documents, which can run to megabytes.
_UPSTREAM_LIMIT = 2**26

#: Request headers forwarded to replicas verbatim.
_FORWARD_REQUEST_HEADERS = (
    "authorization",
    "content-type",
    "accept-encoding",
    "if-none-match",
    "last-event-id",
)

#: Response headers relayed back to the client verbatim.
_FORWARD_RESPONSE_HEADERS = ("etag", "vary", "content-encoding", "retry-after")


class _Replica:
    """Health state of one MiningServer replica."""

    def __init__(self, name: str, url: str) -> None:
        if "//" not in url:
            url = "http://" + url
        split = urlsplit(url)
        if split.scheme not in ("", "http"):
            raise EngineError(f"replica URLs are plain http, got {split.scheme!r}")
        self.name = name
        self.url = url.rstrip("/")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.healthy = False
        self.generation: str | None = None
        self.restarts = 0
        self.last_error: str | None = None


class MiningRouter:
    """Route jobs across MiningServer replicas by spec fingerprint.

    Parameters
    ----------
    replicas:
        Base URLs of the MiningServer replicas, in a stable order: the
        i-th URL becomes ring node ``r{i}``, and that name — not the
        URL — is what job ids are tagged with, so a replica can move
        hosts without invalidating outstanding ids.
    host / port:
        Bind address of the router itself (``port=0``: ephemeral).
    check_interval / probe_timeout:
        Health-check cadence and per-probe timeout, seconds.
    vnodes:
        Virtual nodes per replica on the ring.
    """

    def __init__(
        self,
        replicas,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        check_interval: float = 2.0,
        probe_timeout: float = 5.0,
        vnodes: int = 64,
    ) -> None:
        urls = list(replicas)
        if not urls:
            raise EngineError("MiningRouter needs at least one replica URL")
        self.host = host
        self.port = port
        self.check_interval = check_interval
        self.probe_timeout = probe_timeout
        self.generation = secrets.token_hex(8)
        self._replicas = [
            _Replica(f"r{index}", url) for index, url in enumerate(urls)
        ]
        self._by_name = {replica.name: replica for replica in self._replicas}
        self._ring = HashRing(vnodes=vnodes)
        self._workers: list[str] = []
        self._workers_lock = threading.Lock()
        self._server: asyncio.AbstractServer | None = None
        self._checker: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._started_at: float | None = None
        self._stats = {"submitted": 0, "forwarded": 0, "rebalances": 0}

    # ------------------------------------------------------------------ #
    # Lifecycle (mirrors MiningServer; ServerHandle works unchanged)
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Probe every replica, then bind and begin accepting traffic."""
        if self._server is not None:
            raise EngineError("router is already running")
        # Probe every replica once *before* accepting traffic, so the
        # first submission sees the real membership, not an empty ring.
        await asyncio.gather(
            *(self._probe(replica) for replica in self._replicas)
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = clock.monotonic()
        self._checker = asyncio.ensure_future(self._check_loop())

    async def serve_forever(self) -> None:
        """Serve until cancelled; requires a prior :meth:`start`."""
        if self._server is None:
            raise EngineError("call start() before serve_forever()")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop health checks, close the listener, drain connections."""
        if self._checker is not None:
            self._checker.cancel()
            try:
                await self._checker
            except asyncio.CancelledError:
                pass
            self._checker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Cancel parked keep-alive handlers while the loop is still
        # live, so their cleanup awaits resolve; left to the loop's
        # teardown they would be GC-closed mid-await instead.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            self._conn_tasks.clear()

    def run(self, *, announce=None) -> None:
        """Blocking entry point (``sisd route``): serve until Ctrl-C."""
        try:
            asyncio.run(self._run_forever(announce))
        except KeyboardInterrupt:
            pass

    async def _run_forever(self, announce) -> None:
        await self.start()
        if announce is not None:
            announce(self)
        await self.serve_forever()

    def run_in_thread(self, *, ready_timeout: float = 30.0) -> ServerHandle:
        """Start on a daemon thread; returns a :class:`ServerHandle`."""
        started = threading.Event()
        handle = ServerHandle(self)

        def target() -> None:
            try:
                asyncio.run(self._serve_until_stopped(started, handle))
            except BaseException as exc:  # pragma: no cover - surfaced below
                handle.error = exc
            finally:
                started.set()

        thread = threading.Thread(
            target=target, name="repro-dist-router", daemon=True
        )
        handle._thread = thread
        thread.start()
        started.wait(ready_timeout)
        if handle.error is not None:
            raise EngineError(f"router failed to start: {handle.error}")
        if self._server is None:
            raise EngineError("router failed to start within ready_timeout")
        return handle

    async def _serve_until_stopped(self, started, handle: ServerHandle) -> None:
        await self.start()
        handle._loop = asyncio.get_running_loop()
        handle._stop = asyncio.Event()
        started.set()
        await handle._stop.wait()
        await self.stop()

    # ------------------------------------------------------------------ #
    # Health checking and membership
    # ------------------------------------------------------------------ #
    async def _check_loop(self) -> None:
        while True:
            await asyncio.sleep(self.check_interval)
            await asyncio.gather(
                *(self._probe(replica) for replica in self._replicas)
            )

    async def _probe(self, replica: _Replica) -> None:
        """One health check; updates the ring on a liveness flip."""
        try:
            status, _, body = await asyncio.wait_for(
                self._exchange(replica, "GET", "/health", {}, b""),
                self.probe_timeout,
            )
            document = json.loads(body)
            healthy = status == 200 and document.get("status") == "ok"
            generation = document.get("generation")
        except (OSError, ValueError, asyncio.TimeoutError) as exc:
            healthy, generation = False, replica.generation
            replica.last_error = str(exc)
        if healthy:
            replica.last_error = None
            if (
                replica.generation is not None
                and generation is not None
                and str(generation) != replica.generation
            ):
                # PR 6 boot marker moved: same replica, fresh process.
                # Placement is by name so the ring is unchanged, but
                # the restart is worth counting — its SSE sequence
                # space reset and a durable store just recovered jobs.
                replica.restarts += 1
            if generation is not None:
                replica.generation = str(generation)
        self._set_health(replica, healthy)

    def _set_health(self, replica: _Replica, healthy: bool) -> None:
        if healthy == replica.healthy:
            return
        replica.healthy = healthy
        if healthy:
            self._ring.add(replica.name)
        else:
            self._ring.remove(replica.name)
        self._stats["rebalances"] += 1
        ROUTER_REBALANCES.inc()

    # ------------------------------------------------------------------ #
    # Upstream plumbing
    # ------------------------------------------------------------------ #
    async def _exchange(
        self,
        replica: _Replica,
        method: str,
        path: str,
        headers: dict,
        body: bytes,
    ) -> tuple[int, dict, bytes]:
        """One proxied round trip to a replica (connection: close)."""
        reader, writer = await asyncio.open_connection(
            replica.host, replica.port, limit=_UPSTREAM_LIMIT
        )
        try:
            lines = [
                f"{method} {path} HTTP/1.1",
                f"Host: {replica.host}:{replica.port}",
                f"Content-Length: {len(body)}",
                "Connection: close",
            ]
            lines.extend(
                f"{name}: {value}"
                for name, value in headers.items()
                if name.lower() in _FORWARD_REQUEST_HEADERS
            )
            writer.write(
                "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n" + body
            )
            await writer.drain()
            status, response_headers = await self._read_response_head(reader)
            length = response_headers.get("content-length")
            if length is not None:
                payload = await reader.readexactly(int(length))
            else:
                payload = await reader.read()
            return status, response_headers, payload
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    @staticmethod
    async def _read_response_head(reader) -> tuple[int, dict]:
        line = await reader.readline()
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise OSError(f"malformed upstream status line {line!r}")
        status = int(parts[1])
        headers: dict = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    async def _forward(
        self,
        replica: _Replica,
        request: http.Request,
        path: str,
    ) -> tuple[int, dict, bytes]:
        """Forward one request; a transport failure sidelines the replica."""
        try:
            result = await asyncio.wait_for(
                self._exchange(
                    replica, request.method, path, request.headers, request.body
                ),
                self.probe_timeout + 35.0,  # covers one ?wait= long-poll leg
            )
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError) as exc:
            replica.last_error = str(exc)
            self._set_health(replica, False)
            raise http.HttpError(
                503,
                f"replica {replica.name} ({replica.url}) is unreachable: {exc}",
                headers=(("Retry-After", "1"),),
            ) from exc
        self._stats["forwarded"] += 1
        ROUTER_FORWARDED.inc()
        return result

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await http.read_request(reader)
                except http.HttpError as exc:
                    writer.write(self._error(exc.status, str(exc), keep=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                if request.method == "GET" and request.path == "/events":
                    await self._handle_events(request, writer)
                    break  # SSE ends by closing the connection
                keep = request.keep_alive
                try:
                    response = await self._dispatch(request, keep)
                except http.HttpError as exc:
                    response = self._error(
                        exc.status, str(exc), keep=keep, headers=exc.headers
                    )
                except ReproError as exc:
                    response = self._error(400, str(exc), keep=keep)
                except Exception as exc:  # noqa: BLE001 - last-resort guard
                    response = self._error(500, str(exc), keep=keep)
                writer.write(response)
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _error(
        self, status: int, message: str, *, keep: bool, headers: tuple = ()
    ) -> bytes:
        document = {
            "schema": WIRE_SCHEMA,
            "error": error_to_wire(http.HttpError(status, message)),
        }
        return http.render_response(
            status,
            http.json_body(document),
            keep_alive=keep,
            extra_headers=headers,
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: http.Request, keep: bool) -> bytes:
        parts = [part for part in request.path.split("/") if part]
        if parts == ["health"] and request.method == "GET":
            return http.render_response(
                200, http.json_body(self._health()), keep_alive=keep
            )
        if parts == ["metrics"] and request.method == "GET":
            return http.render_response(
                200,
                METRICS.render().encode("utf-8"),
                content_type=PROMETHEUS_CONTENT_TYPE,
                keep_alive=keep,
            )
        if parts == ["workers"]:
            return self._handle_workers(request, keep)
        if parts == ["workers", "register"] and request.method == "POST":
            return self._register_worker(request, keep)
        if parts == ["jobs"] and request.method == "POST":
            return await self._submit(request, keep)
        if parts == ["jobs"] and request.method == "GET":
            return await self._list_jobs(request, keep)
        if len(parts) >= 2 and parts[0] == "jobs":
            return await self._forward_job(request, parts, keep)
        raise http.HttpError(
            404,
            f"no route for {request.method} {request.path}; this is a sisd "
            f"router: /health, /metrics, /workers, /jobs, "
            f"/jobs/{{id}}[@replica], /jobs/{{id}}/result, "
            f"/jobs/{{id}}/cancel, /events?job_id=",
        )

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    def _health(self) -> dict:
        return {
            "schema": WIRE_SCHEMA,
            "status": "ok" if len(self._ring) else "degraded",
            "role": "router",
            "version": __version__,
            "generation": self.generation,
            "uptime_seconds": (
                0.0
                if self._started_at is None
                else clock.monotonic() - self._started_at
            ),
            "replicas": [
                {
                    "name": replica.name,
                    "url": replica.url,
                    "healthy": replica.healthy,
                    "generation": replica.generation,
                    "restarts": replica.restarts,
                    "error": replica.last_error,
                }
                for replica in self._replicas
            ],
            "ring": {"nodes": len(self._ring), "vnodes": self._ring.vnodes},
            "workers": list(self._workers),
            "router": dict(self._stats),
            "observability": {
                "metrics": "/metrics",
                "spans_retained": len(TRACER.finished()),
            },
        }

    def _handle_workers(self, request: http.Request, keep: bool) -> bytes:
        if request.method != "GET":
            raise http.HttpError(405, f"{request.method} not allowed on /workers")
        with self._workers_lock:
            workers = list(self._workers)
        return http.render_response(
            200,
            http.json_body({"schema": WIRE_SCHEMA, "workers": workers}),
            keep_alive=keep,
        )

    def _register_worker(self, request: http.Request, keep: bool) -> bytes:
        document = request.json()
        url = document.get("url")
        if not isinstance(url, str) or "://" not in url:
            raise http.HttpError(400, "register body needs a worker base url")
        with self._workers_lock:
            if url not in self._workers:
                self._workers.append(url)
            count = len(self._workers)
        return http.render_response(
            200,
            http.json_body({"schema": WIRE_SCHEMA, "registered": url,
                            "workers": count}),
            keep_alive=keep,
        )

    def _fingerprint_of(self, body: bytes) -> str:
        """The submitted work's content digest (the ring key)."""
        try:
            data = json.loads(body) if body else {}
        except ValueError as exc:
            raise http.HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise http.HttpError(400, "submit body must be a JSON object")
        try:
            if "job" in data:
                return job_from_dict(data["job"]).fingerprint()
            if "spec" in data:
                return MiningSpec.from_dict(data["spec"]).to_job().fingerprint()
            if "dataset" in data:
                return MiningSpec.from_dict(data).to_job().fingerprint()
        except ReproError as exc:
            raise http.HttpError(400, str(exc)) from exc
        raise http.HttpError(
            400,
            'submit body must be {"spec": {...}}, {"job": {...}}, or a bare '
            "MiningSpec document",
        )

    async def _submit(self, request: http.Request, keep: bool) -> bytes:
        fingerprint = self._fingerprint_of(request.body)
        last_error: http.HttpError | None = None
        for name in list(self._ring.preference(fingerprint)):
            replica = self._by_name[name]
            try:
                status, headers, body = await self._forward(
                    replica, request, "/jobs"
                )
            except http.HttpError as exc:
                last_error = exc
                continue  # owner down: the ring's next node takes the spec
            self._stats["submitted"] += 1
            ROUTER_SUBMITTED.inc()
            return self._retag_response(
                status, headers, body, replica.name, keep
            )
        if last_error is not None:
            raise last_error
        raise http.HttpError(
            503,
            "no healthy replica to place the job on",
            headers=(("Retry-After", "1"),),
        )

    async def _list_jobs(self, request: http.Request, keep: bool) -> bytes:
        """Merged listing across every healthy replica, tagged ids."""
        healthy = [replica for replica in self._replicas if replica.healthy]
        listings = await asyncio.gather(
            *(self._forward(replica, request, "/jobs") for replica in healthy),
            return_exceptions=True,
        )
        entries: list = []
        for replica, outcome in zip(healthy, listings):
            if isinstance(outcome, BaseException):
                continue  # sidelined mid-listing; its jobs reappear next poll
            status, _, body = outcome
            if status != 200:
                continue
            try:
                document = json.loads(body)
            except ValueError:
                continue
            for entry in document.get("jobs", ()):
                entry = dict(entry)
                entry["job_id"] = dwire.tag_job_id(
                    str(entry.get("job_id")), replica.name
                )
                entries.append(entry)
        entries.sort(key=lambda entry: entry.get("job_id", ""))
        return http.render_response(
            200,
            http.json_body({"schema": WIRE_SCHEMA, "jobs": entries}),
            keep_alive=keep,
        )

    def _owning_replica(self, tagged: str) -> tuple[_Replica, str]:
        local_id, name = dwire.untag_job_id(tagged)
        if name is None or name not in self._by_name:
            raise http.HttpError(
                404,
                f"job id {tagged!r} carries no known replica tag; routed "
                f"ids look like job-0001@r0",
            )
        replica = self._by_name[name]
        if not replica.healthy:
            raise http.HttpError(
                503,
                f"replica {name} holding {tagged!r} is down; retry shortly",
                headers=(("Retry-After", "1"),),
            )
        return replica, local_id

    async def _forward_job(
        self, request: http.Request, parts: list, keep: bool
    ) -> bytes:
        replica, local_id = self._owning_replica(parts[1])
        suffix = "/" + "/".join(parts[2:]) if len(parts) > 2 else ""
        query = ""
        if request.query:
            query = "?" + "&".join(
                f"{key}={value}" for key, value in request.query.items()
            )
        status, headers, body = await self._forward(
            replica, request, f"/jobs/{local_id}{suffix}{query}"
        )
        if suffix == "/result" or headers.get("content-encoding"):
            # Result documents relay verbatim: their ETag is a hash of
            # the replica's exact bytes, so rewriting would break client
            # revalidation (and cost a decompress). The id inside stays
            # replica-local; clients key on the tagged id they hold.
            extra = tuple(
                (name.title(), value)
                for name, value in headers.items()
                if name in _FORWARD_RESPONSE_HEADERS
            )
            return http.render_response(
                status, body, keep_alive=keep, extra_headers=extra
            )
        return self._retag_response(status, headers, body, replica.name, keep)

    def _retag_response(
        self, status: int, headers: dict, body: bytes, name: str, keep: bool
    ) -> bytes:
        """Tag the ``job_id`` of a small JSON response with its replica."""
        try:
            document = json.loads(body) if body else {}
        except ValueError:
            document = None
        if isinstance(document, dict) and "job_id" in document:
            document["job_id"] = dwire.tag_job_id(
                str(document["job_id"]), name
            )
            body = http.json_body(document)
        extra = tuple(
            (header.title(), value)
            for header, value in headers.items()
            if header in _FORWARD_RESPONSE_HEADERS
        )
        return http.render_response(
            status, body, keep_alive=keep, extra_headers=extra
        )

    # ------------------------------------------------------------------ #
    # SSE relay
    # ------------------------------------------------------------------ #
    async def _handle_events(self, request: http.Request, writer) -> None:
        tagged = request.query.get("job_id")
        if tagged is None:
            writer.write(
                self._error(
                    501,
                    "the router streams per-job events only: subscribe with "
                    "/events?job_id=<id>@<replica> (a firehose across "
                    "replicas would interleave unrelated sequence spaces)",
                    keep=False,
                )
            )
            await writer.drain()
            return
        try:
            replica, local_id = self._owning_replica(tagged)
        except http.HttpError as exc:
            writer.write(
                self._error(exc.status, str(exc), keep=False, headers=exc.headers)
            )
            await writer.drain()
            return
        query = f"?job_id={local_id}"
        if "since" in request.query:
            query += f"&since={request.query['since']}"
        upstream_reader = upstream_writer = None
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                replica.host, replica.port, limit=_UPSTREAM_LIMIT
            )
            lines = [
                f"GET /events{query} HTTP/1.1",
                f"Host: {replica.host}:{replica.port}",
                "Accept: text/event-stream",
                "Connection: close",
            ]
            lines.extend(
                f"{name}: {value}"
                for name, value in request.headers.items()
                if name.lower() in _FORWARD_REQUEST_HEADERS
            )
            upstream_writer.write(
                "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
            )
            await upstream_writer.drain()
            status, _ = await self._read_response_head(upstream_reader)
            if status != 200:
                writer.write(
                    self._error(
                        503,
                        f"replica {replica.name} refused the event stream "
                        f"(HTTP {status})",
                        keep=False,
                        headers=(("Retry-After", "1"),),
                    )
                )
                await writer.drain()
                return
            writer.write(
                (
                    "HTTP/1.1 200 OK\r\n"
                    "Content-Type: text/event-stream\r\n"
                    "Cache-Control: no-store\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
            )
            await writer.drain()
            # Relay frame lines as-is, rewriting only the data lines'
            # job id so the stream matches the tagged id the client
            # subscribed under. JSON round-trip is value-exact (floats
            # re-serialize shortest-repr), so payloads stay canonical.
            while True:
                line = await upstream_reader.readline()
                if not line:
                    break
                if line.startswith(b"data:"):
                    line = self._retag_data_line(line, local_id, replica.name)
                writer.write(line)
                if line in (b"\r\n", b"\n"):
                    await writer.drain()  # frame boundary: flush
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # either side went away; client resumes via Last-Event-ID
        finally:
            if upstream_writer is not None:
                upstream_writer.close()
                try:
                    await upstream_writer.wait_closed()
                except (ConnectionError, OSError):  # pragma: no cover
                    pass

    @staticmethod
    def _retag_data_line(line: bytes, local_id: str, name: str) -> bytes:
        try:
            document = json.loads(line[len(b"data:"):].strip())
        except ValueError:
            return line
        if isinstance(document, dict) and document.get("job_id") == local_id:
            document["job_id"] = dwire.tag_job_id(local_id, name)
            return b"data: " + json.dumps(
                document, allow_nan=False
            ).encode("utf-8") + b"\r\n"
        return line
