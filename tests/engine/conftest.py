"""Engine-test fixtures: shared-memory leak detection.

Every engine test runs under a teardown check that no shared-memory
segment created by this process survived the test — the acceptance
criterion of the zero-copy transport is that a run (including a failing
one) leaves ``/dev/shm`` exactly as it found it.
"""

import os

import pytest

from repro.engine import shm
from repro.engine.cache import BELIEF_CACHE


@pytest.fixture(autouse=True)
def fresh_belief_cache():
    """Start every engine test with a cold process-wide belief cache.

    Services default to the shared BELIEF_CACHE, so without this a
    test's 'slow blocker' job replays instantly once any earlier test
    mined the same belief chain — timing-based scheduling tests would
    couple across the file. Results are bit-identical either way; only
    timing isolation is at stake.
    """
    BELIEF_CACHE.clear()
    yield


def _dev_shm_segments() -> set[str]:
    """Library-created segment files visible in /dev/shm (Linux only)."""
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(shm.segment_prefix())
        }
    except OSError:  # pragma: no cover - non-Linux fallback
        return set()


@pytest.fixture(autouse=True)
def no_shared_memory_leaks():
    """Fail any engine test that leaks a shared-memory segment."""
    before = _dev_shm_segments()
    yield
    assert shm.live_segments() == frozenset(), (
        "test leaked shared-memory segments (ArrayStore not closed): "
        f"{sorted(shm.live_segments())}"
    )
    leaked = _dev_shm_segments() - before
    assert not leaked, f"test leaked /dev/shm segments: {sorted(leaked)}"
