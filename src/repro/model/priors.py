"""Prior belief specifications for the initial MaxEnt background model.

The paper considers a user who expects the overall mean of the targets
to be a vector ``mu`` and their covariance to be ``Sigma`` (§II-B); the
MaxEnt distribution under those expectations is i.i.d. multivariate
normal. In all the paper's experiments the prior is set to the empirical
values of the full data; :func:`empirical_prior` builds that, with a tiny
relative jitter to keep near-singular covariances (e.g. 124 correlated
binary species indicators) safely positive definite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.model.gaussian import validate_covariance
from repro.utils.validation import check_vector


@dataclass(frozen=True)
class Prior:
    """An (expected mean, expected covariance) pair for the targets."""

    #: Shareable via the engine's shared-memory transport when a model
    #: ships to pool workers (:func:`repro.engine.shm.publish`).
    __shm_arrays__ = ("mean", "cov")

    mean: np.ndarray
    cov: np.ndarray

    def __post_init__(self) -> None:
        mean = check_vector(self.mean, "mean")
        cov = validate_covariance(self.cov)
        if cov.shape[0] != mean.shape[0]:
            raise ModelError(
                f"prior mean has dim {mean.shape[0]} but cov is {cov.shape[0]}x{cov.shape[1]}"
            )
        mean.setflags(write=False)
        cov.setflags(write=False)
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "cov", cov)

    @property
    def dim(self) -> int:
        return int(self.mean.shape[0])


def empirical_prior(
    targets: np.ndarray,
    *,
    weights: np.ndarray | None = None,
    jitter: float = 1e-9,
    shrinkage: float = 0.0,
) -> Prior:
    """Prior equal to the empirical mean/covariance of ``targets``.

    Parameters
    ----------
    targets:
        ``(n, d)`` target matrix (a 1-D array is treated as one target).
    weights:
        Optional per-row case weights. The prior becomes the *weighted*
        empirical mean and (1/W-normalized) covariance, matching the
        belief a user would form from the reweighted population; ``None``
        takes the exact unweighted code path.
    jitter:
        Relative diagonal jitter: ``jitter * mean(diag)`` is added to the
        covariance diagonal so downstream Cholesky factorizations cannot
        fail on rank-deficient data.
    shrinkage:
        Optional convex shrinkage toward the diagonal,
        ``(1 - shrinkage) * S + shrinkage * diag(S)`` — useful when
        ``d`` approaches ``n`` and the empirical covariance is noisy.
    """
    targets = np.asarray(targets, dtype=float)
    if targets.ndim == 1:
        targets = targets[:, None]
    if targets.ndim != 2 or targets.shape[0] < 2:
        raise ModelError(f"targets must be (n>=2, d), got shape {targets.shape}")
    if not 0.0 <= shrinkage <= 1.0:
        raise ModelError(f"shrinkage must be in [0, 1], got {shrinkage}")

    if weights is None:
        mean = targets.mean(axis=0)
        centered = targets - mean
        cov = (centered.T @ centered) / targets.shape[0]
    else:
        w = np.asarray(weights, dtype=float)
        if w.ndim != 1 or w.shape[0] != targets.shape[0]:
            raise ModelError(
                f"weights must be 1-D of length {targets.shape[0]}, got shape {w.shape}"
            )
        if not np.all(np.isfinite(w)) or np.any(w <= 0.0):
            raise ModelError("weights must be positive finite floats")
        # Premultiplied forms: with unit weights every intermediate is
        # bit-identical to the unweighted branch (w == 1.0 premultiplies
        # and n/W == 1.0 rescales without changing a single bit), which
        # the engine's weighted-determinism contract relies on. The
        # sqrt(w) form keeps the product an x.T @ x of one buffer, the
        # same BLAS syrk call the unweighted branch hits.
        total = float(w.sum())
        mean = (targets * w[:, None]).mean(axis=0) * (targets.shape[0] / total)
        scaled = (targets - mean) * np.sqrt(w)[:, None]
        cov = scaled.T @ scaled / total
    if shrinkage > 0.0:
        cov = (1.0 - shrinkage) * cov + shrinkage * np.diag(np.diag(cov))
    diag_scale = float(np.mean(np.diag(cov)))
    if diag_scale <= 0.0:
        raise ModelError("targets have zero variance; no informative prior exists")
    cov = cov + (jitter * diag_scale) * np.eye(cov.shape[0])
    return Prior(mean, cov)
