"""Quickstart: mine subjectively interesting subgroups in ~20 lines.

Runs the paper's two-step mining loop on the bundled synthetic data:
find the most informative location pattern, find its most surprising
variance direction, update the belief model, repeat. Each iteration
surfaces a *different* planted subgroup because the model remembers what
it has already been told.

Run with::

    python examples/quickstart.py
"""

from repro import SubgroupDiscovery, load_dataset


def main() -> None:
    dataset = load_dataset("synthetic", seed=0)
    print(dataset.summary())
    print()

    miner = SubgroupDiscovery(dataset, seed=0)
    for iteration in miner.run(3, kind="spread"):
        print(f"--- iteration {iteration.index} ---")
        print(iteration.location)
        print(iteration.spread)
        mean = iteration.location.mean
        print(
            f"    subgroup mean = ({mean[0]:+.2f}, {mean[1]:+.2f}); "
            f"the background now expects this, so re-finding it is worthless."
        )
    print()
    print(
        "Three iterations, three distinct planted subgroups - the SI measure "
        "collapses for assimilated patterns (Table I of the paper)."
    )


if __name__ == "__main__":
    main()
