"""Fixed-width table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError


def _render_cell(value, floatfmt: str) -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    floatfmt: str = ".2f",
    title: str | None = None,
) -> str:
    """Render an aligned, pipe-separated text table.

    Numbers are right-aligned, text left-aligned; floats use
    ``floatfmt``. The output is stable (no terminal-width dependence) so
    benchmark logs diff cleanly across runs.
    """
    headers = [str(h) for h in headers]
    rendered: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells for {len(headers)} headers: {row!r}"
            )
        rendered.append([_render_cell(cell, floatfmt) for cell in row])

    widths = [len(h) for h in headers]
    for row in rendered:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def align(cell: str, j: int, original) -> str:
        if isinstance(original, (int, float)):
            return cell.rjust(widths[j])
        return cell.ljust(widths[j])

    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[j]) for j, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for raw, row in zip(rows, rendered):
        lines.append(" | ".join(align(cell, j, raw[j]) for j, cell in enumerate(row)))
    return "\n".join(lines)
