"""Exception hierarchy for the SISD library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DataError(ReproError):
    """Raised when a dataset is malformed or inconsistent.

    Examples: mismatched row counts between description and target blocks,
    a column whose declared kind does not match its values, or an unknown
    attribute name in a condition.
    """


class LanguageError(ReproError):
    """Raised for invalid descriptions or conditions.

    Examples: a numeric condition on a categorical attribute, an empty
    value set for a categorical inclusion condition, or a malformed
    serialized description string.
    """


class ModelError(ReproError):
    """Raised when the background model is used or updated incorrectly.

    Examples: updating with an empty extension, a non-positive-definite
    prior covariance, or querying statistics before the model is fitted.
    """


class NotFittedError(ModelError):
    """Raised when a model/miner method requires :meth:`fit` first."""


class SearchError(ReproError):
    """Raised when pattern search cannot proceed.

    Examples: a beam search with zero admissible refinements at depth one,
    or a spread search on a subgroup with fewer than two rows.
    """


class EngineError(ReproError):
    """Raised by the parallel mining engine (executors, jobs, service).

    Examples: an invalid worker count, a malformed job spec, or querying
    the mining service for an unknown job id.
    """


class DeadlineExpired(EngineError):
    """Raised when a queued job's deadline passed before it could start.

    The scheduler never starts work that can no longer be useful: a
    :class:`~repro.engine.jobs.MiningJob` submitted with a ``deadline``
    that elapses while the job is still waiting for a worker slot is
    moved to the terminal ``EXPIRED`` state, and
    :meth:`~repro.engine.service.MiningService.result` re-raises this.
    """


class JobPreempted(EngineError):
    """Raised inside a worker when the scheduler preempts a running job.

    Preemption is cooperative and lands only at iteration boundaries, so
    every completed iteration is already in the belief cache — when the
    job is re-dispatched it replays the finished prefix from cache and
    resumes mining where it stopped. The service catches this internally
    (the job goes back to ``QUEUED``); callers never see it from
    :meth:`~repro.engine.service.MiningService.result`.
    """


class AnalysisError(ReproError):
    """Raised by the static-analysis engine (:mod:`repro.analysis`).

    Examples: an unknown lint rule id passed to ``sisd lint --explain``,
    a malformed baseline file, or a ``--changed`` ref that git cannot
    resolve.
    """


class ObsError(ReproError):
    """Raised by the observability layer (:mod:`repro.obs`).

    Examples: registering two instruments under one metric name with
    different kinds or label sets, observing a non-finite value on a
    histogram, or feeding ``sisd top`` a document that is not
    Prometheus text.
    """


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to converge.

    Carries enough context (``iterations``, ``residual``) for callers to
    decide whether to retry with looser tolerances.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
