"""Wall-clock helpers: a stopwatch for measurements and a budget for search.

The paper's miner "supports time constraints (e.g., stop after 1 minute of
mining)"; :class:`TimeBudget` is the mechanism the beam search uses to honor
that. :class:`Stopwatch` backs the Table II runtime experiment.
"""

from __future__ import annotations

import math
import time


class Stopwatch:
    """Accumulating stopwatch with context-manager support.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed = 0.0

    def start(self) -> "Stopwatch":
        """Begin timing; returns self so ``Stopwatch().start()`` chains."""
        if self._start is not None:
            raise RuntimeError("Stopwatch already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing and return the total accumulated seconds."""
        if self._start is None:
            raise RuntimeError("Stopwatch is not running")
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    def reset(self) -> None:
        """Discard all accumulated time and stop the watch."""
        self._start = None
        self._elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds (includes the running span, if any)."""
        if self._start is None:
            return self._elapsed
        return self._elapsed + (time.perf_counter() - self._start)

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class TimeBudget:
    """A deadline that long-running searches poll cooperatively.

    ``TimeBudget(None)`` never expires, so call sites do not need to branch
    on whether a budget was configured.
    """

    def __init__(self, seconds: float | None) -> None:
        if seconds is not None and (not math.isfinite(seconds) or seconds < 0):
            raise ValueError(f"seconds must be None or non-negative, got {seconds}")
        self.seconds = seconds
        self._deadline = None if seconds is None else time.perf_counter() + seconds

    @property
    def expired(self) -> bool:
        return self._deadline is not None and time.perf_counter() >= self._deadline

    @property
    def remaining(self) -> float:
        """Seconds left; ``inf`` for an unlimited budget, floored at 0."""
        if self._deadline is None:
            return math.inf
        return max(0.0, self._deadline - time.perf_counter())
