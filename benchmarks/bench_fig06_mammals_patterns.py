"""Fig. 6: the top three location patterns on the mammal data.

Paper: (a) cold March (north + Alps), (b) dry August (south),
(c) dry October + warm wettest quarter (east). Benchmarks the full
three-iteration location mining (beam over 67 climate attributes,
n = 2220, d_y = 124).
"""

from repro.experiments.mammals_exp import run_fig6


def bench_fig6_mammals_patterns(benchmark, save_result):
    result = benchmark.pedantic(run_fig6, args=(0,), rounds=1, iterations=1)
    save_result("fig06_mammals_patterns", result.format(with_maps=True))
    regions = {p.best_region for p in result.patterns}
    assert regions == {"cold_march", "dry_august", "dry_october_warm"}
    assert result.patterns[0].best_region == "cold_march"
