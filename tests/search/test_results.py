"""Tests for search result records."""

import numpy as np
import pytest

from repro.interest.si import PatternScore
from repro.lang.conditions import EqualsCondition
from repro.lang.description import Description
from repro.model.patterns import LocationConstraint, SpreadConstraint
from repro.search.results import (
    LocationPatternResult,
    ScoredSubgroup,
    SpreadPatternResult,
)


def description():
    return Description((EqualsCondition("a", 1.0),))


class TestScoredSubgroup:
    def test_properties(self):
        entry = ScoredSubgroup(
            description=description(),
            indices=np.array([1, 3, 5]),
            observed_mean=np.array([0.5]),
            score=PatternScore(ic=11.0, dl=1.1),
        )
        assert entry.size == 3
        assert entry.si == pytest.approx(10.0)
        assert "SI=10.00" in str(entry)


class TestLocationPatternResult:
    def test_constraint_conversion(self):
        result = LocationPatternResult(
            description=description(),
            indices=np.array([0, 2]),
            mean=np.array([1.5]),
            score=PatternScore(ic=5.0, dl=1.1),
            coverage=0.1,
        )
        constraint = result.constraint()
        assert isinstance(constraint, LocationConstraint)
        np.testing.assert_array_equal(constraint.indices, [0, 2])
        np.testing.assert_array_equal(constraint.mean, [1.5])

    def test_str_mentions_coverage(self):
        result = LocationPatternResult(
            description=description(),
            indices=np.arange(5),
            mean=np.array([0.0]),
            score=PatternScore(ic=5.0, dl=1.1),
            coverage=0.25,
        )
        assert "25.0%" in str(result)


class TestSpreadPatternResult:
    def test_constraint_conversion(self):
        result = SpreadPatternResult(
            description=description(),
            indices=np.array([0, 1, 2]),
            direction=np.array([1.0, 0.0]),
            variance=0.5,
            center=np.array([0.0, 0.0]),
            score=PatternScore(ic=3.0, dl=2.1),
        )
        constraint = result.constraint()
        assert isinstance(constraint, SpreadConstraint)
        assert constraint.variance == 0.5

    def test_str_shows_direction(self):
        result = SpreadPatternResult(
            description=description(),
            indices=np.arange(3),
            direction=np.array([0.6, -0.8]),
            variance=0.5,
            center=np.zeros(2),
            score=PatternScore(ic=3.0, dl=2.1),
        )
        assert "+0.600" in str(result)
        assert "-0.800" in str(result)
