"""Tests for the mining service (submit/status/result/cancel)."""

import concurrent.futures

import pytest

from repro.engine.jobs import MiningJob
from repro.engine.service import JobStatus, MiningService
from repro.errors import EngineError
from repro.search.config import SearchConfig

FAST = SearchConfig(beam_width=6, max_depth=2, top_k=10)
#: A noticeably slower job, used to keep a one-worker pool busy.
SLOW = SearchConfig(beam_width=40, max_depth=4, top_k=150)


def _job(seed=0, config=FAST, **kwargs):
    return MiningJob(dataset="synthetic", seed=seed, config=config, **kwargs)


class TestSerialBackend:
    def test_submit_resolves_immediately(self):
        with MiningService(backend="serial") as service:
            job_id = service.submit(_job())
            assert service.status(job_id) == JobStatus.DONE
            result = service.result(job_id)
            assert result.iterations[0].location.si > 0

    def test_failure_is_reported(self):
        with MiningService(backend="serial") as service:
            job_id = service.submit(_job(targets=("not-a-target",)))
            assert service.status(job_id) == JobStatus.FAILED
            with pytest.raises(Exception):
                service.result(job_id)


class TestThreadBackend:
    def test_many_jobs_complete(self):
        jobs = [_job(seed=s) for s in range(4)]
        with MiningService(max_workers=2, backend="thread") as service:
            ids = [service.submit(job) for job in jobs]
            statuses = service.wait_all()
            assert [statuses[i] for i in ids] == [JobStatus.DONE] * 4
            seen = {service.job(i).seed for i in ids}
            assert seen == {0, 1, 2, 3}

    def test_identical_spec_hits_the_cache(self):
        with MiningService(max_workers=1, backend="thread") as service:
            first = service.submit(_job(name="original"))
            service.result(first)
            second = service.submit(_job(name="duplicate"))
            # Cached submissions resolve without touching the pool.
            assert service.status(second) == JobStatus.DONE
            assert service.cache_stats.hits == 1
            assert service.result(second).job.name == "original"

    def test_cancel_pending_job(self):
        with MiningService(max_workers=1, backend="thread") as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            victim = service.submit(_job(seed=99))
            cancelled = service.cancel(victim)
            if cancelled:  # the pool was still busy with the blocker
                assert service.status(victim) == JobStatus.CANCELLED
                with pytest.raises(concurrent.futures.CancelledError):
                    service.result(victim)
            service.result(blocker)

    def test_wait_all_timeout_is_total_and_raises(self):
        with MiningService(max_workers=1, backend="thread") as service:
            for seed in range(2):
                service.submit(_job(seed=seed, config=SLOW, n_iterations=2))
            with pytest.raises(concurrent.futures.TimeoutError):
                service.wait_all(timeout=0.001)
            service.wait_all()  # then drain for a clean shutdown

    def test_unknown_id_raises(self):
        with MiningService(backend="thread") as service:
            with pytest.raises(EngineError):
                service.status("job-9999")
            with pytest.raises(EngineError):
                service.result("job-9999")
            with pytest.raises(EngineError):
                service.job("job-9999")


class TestProcessBackend:
    def test_jobs_complete_in_worker_processes(self):
        jobs = [_job(seed=s) for s in range(2)]
        with MiningService(max_workers=2, backend="process") as service:
            ids = [service.submit(job) for job in jobs]
            results = [service.result(i, timeout=120) for i in ids]
        assert [r.job.seed for r in results] == [0, 1]
        assert all(r.iterations[0].location.si > 0 for r in results)


class TestValidation:
    def test_rejects_bad_backend(self):
        with pytest.raises(EngineError):
            MiningService(backend="quantum")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(EngineError):
            MiningService(max_workers=0)

    def test_rejects_non_job(self):
        with MiningService(backend="serial") as service:
            with pytest.raises(EngineError):
                service.submit("not a job")


class TestServiceStartMethod:
    """Regression: MiningService must thread start_method into its pool."""

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_pool_uses_requested_start_method(self, method):
        with MiningService(
            max_workers=1, backend="process", start_method=method
        ) as service:
            assert service._pool._mp_context.get_start_method() == method
            assert service.start_method == method

    def test_fork_spawn_parity(self):
        """The same job mines identical patterns under either method."""
        results = {}
        for method in ("fork", "spawn"):
            with MiningService(
                max_workers=1, backend="process", start_method=method
            ) as service:
                job_id = service.submit(_job(seed=2))
                results[method] = service.result(job_id, timeout=120)
        fork, spawn = results["fork"], results["spawn"]
        assert len(fork.iterations) == len(spawn.iterations)
        for a, b in zip(fork.iterations, spawn.iterations):
            assert a.location.description == b.location.description
            assert a.location.score.ic == b.location.score.ic

    def test_non_process_backends_ignore_start_method(self):
        with MiningService(backend="thread", start_method="spawn") as service:
            job_id = service.submit(_job())
            assert service.result(job_id, timeout=60) is not None


class TestEdgePaths:
    """The paths a high-traffic service exercises daily: cancels of work
    that never started, failures crossing worker boundaries, and
    duplicate submissions racing the first run."""

    def test_cancel_of_never_started_job(self):
        with MiningService(max_workers=1, backend="thread") as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            victim = service.submit(_job(seed=99))
            # Deterministic: a job the scheduler has not dispatched
            # always cancels (no racing the pool for the slot).
            assert service.cancel(victim) is True
            assert service.status(victim) == JobStatus.CANCELLED
            with pytest.raises(concurrent.futures.CancelledError):
                service.result(victim)
            # Terminal: a second cancel reports failure, statuses stick.
            assert service.cancel(victim) is False
            assert service.status(victim) == JobStatus.CANCELLED
            assert service.result(blocker).iterations

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_result_on_failed_job_reraises_the_worker_error(self, backend):
        from repro.errors import DataError

        with MiningService(max_workers=1, backend=backend) as service:
            job_id = service.submit(_job(targets=("not-a-target",)))
            with pytest.raises(DataError, match="not-a-target"):
                service.result(job_id, timeout=120)
            assert service.status(job_id) == JobStatus.FAILED
            # Re-asking re-raises; the failure is stable, not consumed.
            with pytest.raises(DataError):
                service.result(job_id)

    def test_double_submit_of_identical_fingerprint_hits_the_cache(self):
        with MiningService(max_workers=1, backend="thread") as service:
            first = service.submit(_job(seed=5))
            service.result(first)
            second = service.submit(_job(seed=5, name="rerun"))
            assert service.status(second) == JobStatus.DONE
            assert service.result(second) is service.result(first)
            assert service.cache_stats.hits == 1

    def test_double_submit_while_first_still_inflight_runs_once(self):
        # The race the cache alone cannot catch: the duplicate arrives
        # before the first run finishes. It must coalesce, not re-mine.
        with MiningService(max_workers=1, backend="thread") as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            first = service.submit(_job(seed=5))
            duplicate = service.submit(_job(seed=5, name="race"))
            assert service.result(duplicate, timeout=120) is service.result(first)
            # While the primary is queued/running the duplicate reports
            # the primary's progress rather than a stuck PENDING.
            assert service.status(duplicate) == JobStatus.DONE
            service.result(blocker)


class TestServiceSharedMemory:
    def test_serial_backend_threads_shared_memory_through(self):
        """submit(shared_memory=True) must mine the same patterns."""
        with MiningService(backend="serial") as service:
            baseline = service.result(service.submit(_job(seed=5)))
        with MiningService(backend="serial") as service:
            job_id = service.submit(
                _job(seed=5), workers=2, shared_memory=True
            )
            shared = service.result(job_id)
        assert len(baseline.iterations) == len(shared.iterations)
        a = baseline.iterations[0].location
        b = shared.iterations[0].location
        assert a.description == b.description
        assert a.score.ic == b.score.ic


class TestPerJobObserver:
    """submit(observer=...) hears exactly its own submission's events."""

    def _log(self):
        from repro.events import EventLog

        return EventLog()

    def test_hears_only_its_own_job(self):
        mine, other = self._log(), self._log()
        with MiningService(max_workers=2, backend="thread") as service:
            a = service.submit(_job(seed=0), observer=mine)
            b = service.submit(_job(seed=1), observer=other)
            result_a = service.result(a)
            result_b = service.result(b)
        # Exactly one terminal on_job carrying this submission's result.
        assert [r.job.seed for r in mine.jobs] == [0]
        assert [r.job.seed for r in other.jobs] == [1]
        # Iterations arrive once (live on the thread backend, no replay).
        assert len(mine.iterations) == len(result_a.iterations)
        assert mine.iterations[0] is result_a.iterations[0]
        assert len(other.iterations) == len(result_b.iterations)
        # Scheduling decisions are this job's only.
        assert mine.schedule and all(e.job_id == a for e in mine.schedule)
        assert all(e.job_id == b for e in other.schedule)

    def test_serial_backend_fires_live(self):
        log = self._log()
        with MiningService(backend="serial") as service:
            job_id = service.submit(_job(n_iterations=2), observer=log)
            result = service.result(job_id)
        assert [e.kind for e in log.schedule] == ["queued", "dispatched"]
        assert len(log.iterations) == 2
        assert log.candidates  # live beam candidates reached the observer
        assert log.jobs == [result]

    def test_cache_hit_replays_iterations(self):
        log = self._log()
        with MiningService(max_workers=1, backend="thread") as service:
            first = service.submit(_job(seed=5))
            original = service.result(first)
            second = service.submit(_job(seed=5), observer=log)
            assert service.result(second) is original
        kinds = [e.kind for e in log.schedule]
        assert kinds == ["queued", "cache_hit"]
        assert len(log.iterations) == len(original.iterations)
        assert log.jobs == [original]

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_failure_reaches_the_per_job_observer(self, backend):
        log = self._log()
        kwargs = {} if backend == "serial" else {"max_workers": 1}
        with MiningService(backend=backend, **kwargs) as service:
            job_id = service.submit(
                _job(targets=("not-a-target",)), observer=log
            )
            with pytest.raises(Exception):
                service.result(job_id)
        assert len(log.failures) == 1
        assert log.failures[0][0].targets == ("not-a-target",)
        assert not log.jobs

    def test_process_backend_replays_at_completion(self):
        log = self._log()
        with MiningService(max_workers=1, backend="process") as service:
            job_id = service.submit(_job(seed=7, n_iterations=2), observer=log)
            result = service.result(job_id)
        assert len(log.iterations) == 2
        assert [r.job.seed for r in log.jobs] == [7]
        # Pool workers cannot call back live: no candidates crossed over.
        assert not log.candidates
        assert str(log.iterations[0].location) == str(result.iterations[0].location)

    def test_coalesced_duplicate_gets_its_own_terminal_event(self):
        primary_log, dup_log = self._log(), self._log()
        with MiningService(max_workers=1, backend="thread") as service:
            blocker = service.submit(_job(config=SLOW, n_iterations=2))
            primary = service.submit(_job(seed=3), observer=primary_log)
            dup = service.submit(_job(seed=3, name="twin"), observer=dup_log)
            result = service.result(dup)
            service.wait_all()
        assert [e.kind for e in dup_log.schedule][:2] == ["queued", "coalesced"]
        assert dup_log.jobs and dup_log.jobs[0].iterations == result.iterations
        assert primary_log.jobs  # the primary's observer also closed out
        assert len(dup_log.iterations) == len(result.iterations)

    def test_observer_exceptions_never_fail_the_job(self):
        from repro.events import CallbackObserver

        def boom(_):
            raise RuntimeError("observer bug")

        angry = CallbackObserver(on_iteration=boom, on_schedule=boom)
        with MiningService(max_workers=1, backend="thread") as service:
            job_id = service.submit(_job(seed=11), observer=angry)
            assert service.result(job_id).iterations
            assert service.status(job_id) == JobStatus.DONE
