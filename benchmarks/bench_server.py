"""Server: HTTP/SSE round-trip overhead over the mining engine.

Measures what the network layer adds on top of the engine:

- **submit→result latency** for a batch of small jobs over HTTP,
  versus running the same jobs through a local ``Workspace`` (the
  difference is pure wire + scheduling overhead);
- **cached round-trip**: the same spec re-submitted, so the service
  answers from its result cache and the timing is almost entirely
  serialization + HTTP;
- **SSE delivery**: how many stream events arrive while a job mines,
  and the latency from submit to the first live event.

Results go to ``BENCH_server.json`` at the repo root (the perf
trajectory file, like the engine benchmark's). Runs standalone too::

    PYTHONPATH=src python benchmarks/bench_server.py
"""

import json
import os
import threading
import time
from pathlib import Path

from bench_schema import envelope
from repro.api import Workspace
from repro.client import RemoteWorkspace
from repro.report.tables import format_table
from repro.server import MiningServer
from repro.spec import MiningSpec

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"

#: Small jobs: the benchmark prices the wire, not the mining.
N_JOBS = 4


def _spec(seed: int) -> MiningSpec:
    return MiningSpec.build(
        "synthetic", seed=seed, n_iterations=2, beam_width=8, max_depth=2, top_k=12
    )


def measure(seed: int = 0) -> list:
    specs = [_spec(seed + i) for i in range(N_JOBS)]

    local_started = time.perf_counter()
    with Workspace() as workspace:
        local_results = [workspace.mine(spec) for spec in specs]
    local_seconds = time.perf_counter() - local_started

    server = MiningServer(port=0, backend="thread", max_workers=2)
    handle = server.run_in_thread()
    try:
        remote = RemoteWorkspace(handle.url, timeout=60.0)

        # SSE: time-to-first-event while the first job mines.
        events_seen = 0
        first_event_at: list = []
        stream_done = threading.Event()

        def consume() -> None:
            nonlocal events_seen
            for event in remote.events():
                if not first_event_at:
                    first_event_at.append(time.perf_counter())
                events_seen += 1
                if event.type in ("job", "job_failed"):
                    stream_done.set()
                    return

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        time.sleep(0.1)  # subscriber online before the first submit

        remote_started = time.perf_counter()
        remote_results = [remote.mine(spec) for spec in specs]
        remote_seconds = time.perf_counter() - remote_started
        stream_done.wait(30)
        first_event_ms = (
            (first_event_at[0] - remote_started) * 1000 if first_event_at else None
        )

        # Determinism across the wire: same patterns, exact scores.
        for local_result, remote_result in zip(local_results, remote_results):
            for a, b in zip(local_result.iterations, remote_result.iterations):
                assert str(a.location) == str(b.location)
                assert a.location.score.ic == b.location.score.ic

        cached_started = time.perf_counter()
        remote.mine(specs[0])  # service result cache: pure wire cost
        cached_seconds = time.perf_counter() - cached_started

        health = remote.health()
    finally:
        handle.stop()

    per_job_overhead = (remote_seconds - local_seconds) / N_JOBS
    rows = [
        (f"local Workspace.mine x{N_JOBS}", local_seconds, ""),
        (f"remote mine x{N_JOBS} (HTTP)", remote_seconds,
         f"{per_job_overhead * 1000:+.1f} ms/job vs local"),
        ("remote mine, cached", cached_seconds, "wire + cache hit only"),
        ("first SSE event", (first_event_ms or 0) / 1000,
         f"{events_seen} events streamed"),
    ]
    JSON_PATH.write_text(
        json.dumps(
            envelope({
                "benchmark": "server",
                "n_jobs": N_JOBS,
                "cpu_count": os.cpu_count(),
                "local_seconds": round(local_seconds, 4),
                "remote_seconds": round(remote_seconds, 4),
                "per_job_wire_overhead_seconds": round(per_job_overhead, 4),
                "cached_roundtrip_seconds": round(cached_seconds, 4),
                "first_sse_event_ms": (
                    round(first_event_ms, 2) if first_event_ms is not None else None
                ),
                "events_streamed": events_seen,
                "events_published": health["events"]["published"],
                "events_dropped": health["events"]["dropped"],
            }),
            indent=2,
        )
        + "\n"
    )
    return rows


def bench_server(benchmark, save_result):
    rows = benchmark.pedantic(measure, args=(0,), rounds=1, iterations=1)
    table = format_table(
        ["path", "seconds", "note"],
        rows,
        floatfmt=".4f",
        title=f"Server: HTTP/SSE overhead ({os.cpu_count()} core(s) available)",
    )
    save_result("server", table)
    assert len(rows) == 4
    assert JSON_PATH.exists()


if __name__ == "__main__":  # pragma: no cover - manual/CI entry point
    for row in measure(0):
        print(row)
    print(f"wrote {JSON_PATH}")
