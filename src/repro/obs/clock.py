"""The blessed clock: every instrumented module reads time through here.

Observability code needs wall and monotonic clocks, yet the repository's
determinism contract forbids results from depending on them. The way to
keep those two facts compatible is a *seam*: one module that owns every
``time.*`` read, so (a) the static gate can verify nothing on an
instrumented path consults a clock directly (rule ``DET004`` in
:mod:`repro.analysis.rules.determinism`), and (b) tests can freeze or
step time in one place instead of monkeypatching half the codebase.

The functions are deliberately thin aliases — the seam exists for
*auditability and substitution*, not abstraction. Tests substitute via
:func:`fixed`, which swaps the module-level callables and restores them
on exit.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["monotonic", "perf_counter", "wall_time", "fixed"]

#: Monotonic clock for intervals that must survive wall-clock jumps
#: (scheduler deadlines, uptime, RTT timeouts).
monotonic: Callable[[], float] = time.monotonic

#: Highest-resolution monotonic clock, for phase/span durations.
perf_counter: Callable[[], float] = time.perf_counter

#: Wall clock (seconds since the epoch), for human-facing stamps only —
#: never for anything that feeds a fingerprint or a result.
wall_time: Callable[[], float] = time.time


@contextmanager
def fixed(at: float = 1_000_000.0) -> Iterator[Callable[[float], None]]:
    """Freeze all three clocks at ``at``; yields an ``advance(dt)``.

    Purely a test utility: within the block every clock read returns the
    frozen value, and the yielded callable moves it forward. The real
    clocks are restored on exit even if the body raises.
    """
    global monotonic, perf_counter, wall_time
    state = {"now": float(at)}

    def read() -> float:
        return state["now"]

    def advance(dt: float) -> None:
        state["now"] += dt

    saved = (monotonic, perf_counter, wall_time)
    monotonic = perf_counter = wall_time = read
    try:
        yield advance
    finally:
        monotonic, perf_counter, wall_time = saved
