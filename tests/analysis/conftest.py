"""Shared fixture: every rule test lints a snippet planted at a chosen path.

Rules scope themselves by display path (``applies_to``), so fixtures
are written into a temp tree at path suffixes the rules recognise —
``<tmp>/repro/engine/cache.py`` for the determinism pack,
``<tmp>/repro/store/mod.py`` for RES002 — and linted with the temp root
as the engine root.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import LintEngine, LintReport


@pytest.fixture
def lint_snippet(tmp_path):
    """Write ``code`` at ``relpath`` under a temp root and lint it."""

    def _lint(relpath: str, code: str, rules=None) -> LintReport:
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code), encoding="utf-8")
        engine = LintEngine(rules, root=tmp_path)
        return engine.lint([path])

    return _lint
