"""Quickstart: one declarative spec, patterns streamed as they are mined.

Runs the paper's two-step mining loop on the bundled synthetic data
through the library's front door: a :class:`repro.MiningSpec` says what
to mine (dataset, pattern kind, iteration count), a
:class:`repro.Workspace` streams each iteration the moment it is mined.
Each iteration surfaces a *different* planted subgroup because the
background model remembers what it has already been told.

Run with::

    python examples/quickstart.py
"""

from repro import MiningSpec, Workspace, load_dataset


def main() -> None:
    dataset = load_dataset("synthetic", seed=0)
    print(dataset.summary())
    print()

    spec = MiningSpec.build("synthetic", kind="spread", n_iterations=3)
    with Workspace() as workspace:
        for iteration in workspace.stream(spec):
            print(f"--- iteration {iteration.index} ---")
            print(iteration.location)
            print(iteration.spread)
            mean = iteration.location.mean
            print(
                f"    subgroup mean = ({mean[0]:+.2f}, {mean[1]:+.2f}); "
                f"the background now expects this, so re-finding it is worthless."
            )
    print()
    print(
        "Three iterations, three distinct planted subgroups - the SI measure "
        "collapses for assimilated patterns (Table I of the paper)."
    )
    print()
    print(
        "The same spec drives every mode: Workspace.mine(spec) inline, "
        "Workspace.session(spec) interactively, Workspace.submit(spec) "
        "on the service - byte-identical results."
    )


if __name__ == "__main__":
    main()
