"""``repro.dist``: the mining engine across machines.

Two tiers, both stdlib-only on the wire:

**Tier A — compute fan-out.** :class:`~repro.dist.worker.WorkerDaemon`
(``sisd worker``) is a small HTTP daemon that caches session contexts by
content address and executes beam/spread shards.
:class:`~repro.dist.executor.DistExecutor` implements the engine's
:class:`~repro.engine.executor.Executor` protocol over a set of those
daemons: the context ships once per content digest (repeat jobs ship
nothing), shards are dispatched concurrently, and replies are merged in
canonical shard order — so results are bit-identical to
:class:`~repro.engine.executor.SerialExecutor` regardless of worker
count, arrival order, or failover. A dead or timed-out worker is
sidelined with exponential backoff and its shard retried on another
node (or run locally); no job ever fails because a node died.

**Tier B — service federation.**
:class:`~repro.dist.router.MiningRouter` (``sisd route``) fronts several
:class:`~repro.server.MiningServer` replicas and places each submission
by fingerprint-keyed consistent hashing
(:class:`~repro.dist.ring.HashRing`), so identical specs always land on
the replica holding their belief/result caches. Replicas are
health-checked through their boot-generation markers and the ring
rebalances on membership change. Job ids are tagged with the owning
replica (``job-0001@r0``), which keeps the router stateless:
``repro.client.RemoteWorkspace`` works against a router unchanged.
"""

from repro.dist.executor import DistExecutor, ShardError, WorkerClient, WorkerUnavailable
from repro.dist.ring import HashRing
from repro.dist.router import MiningRouter
from repro.dist.worker import WorkerDaemon

__all__ = [
    "DistExecutor",
    "HashRing",
    "MiningRouter",
    "ShardError",
    "WorkerClient",
    "WorkerDaemon",
    "WorkerUnavailable",
]
