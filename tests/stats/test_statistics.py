"""Tests for the f_I and g_I^w statistics."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.stats.statistics import subgroup_cov, subgroup_mean, subgroup_spread


class TestSubgroupMean:
    def test_matches_numpy(self, rng):
        targets = rng.standard_normal((20, 3))
        np.testing.assert_allclose(
            subgroup_mean(targets, np.arange(7)), targets[:7].mean(axis=0)
        )

    def test_boolean_mask(self, rng):
        targets = rng.standard_normal((10, 2))
        mask = np.zeros(10, dtype=bool)
        mask[[1, 4]] = True
        np.testing.assert_allclose(
            subgroup_mean(targets, mask), targets[[1, 4]].mean(axis=0)
        )

    def test_1d_targets(self, rng):
        targets = rng.standard_normal(15)
        assert subgroup_mean(targets, np.arange(5)).shape == (1,)

    def test_empty_rejected(self, rng):
        with pytest.raises(ModelError, match="empty"):
            subgroup_mean(rng.standard_normal((5, 2)), np.array([], dtype=int))

    def test_mask_length_mismatch(self, rng):
        with pytest.raises(ModelError, match="length"):
            subgroup_mean(rng.standard_normal((5, 2)), np.ones(3, dtype=bool))


class TestSubgroupCov:
    def test_one_over_n_normalization(self, rng):
        targets = rng.standard_normal((30, 2))
        cov = subgroup_cov(targets, np.arange(10))
        sub = targets[:10]
        centered = sub - sub.mean(axis=0)
        np.testing.assert_allclose(cov, centered.T @ centered / 10)

    def test_quadratic_form_equals_spread(self, rng):
        targets = rng.standard_normal((30, 3))
        idx = np.arange(12)
        w = rng.standard_normal(3)
        w /= np.linalg.norm(w)
        np.testing.assert_allclose(
            float(w @ subgroup_cov(targets, idx) @ w),
            subgroup_spread(targets, idx, w),
            rtol=1e-10,
        )


class TestSubgroupSpread:
    def test_known_value(self):
        targets = np.array([[0.0], [2.0]])
        # mean = 1; squared deviations = 1, 1; spread = 1.
        assert subgroup_spread(targets, np.arange(2), np.array([1.0])) == 1.0

    def test_custom_center(self):
        targets = np.array([[0.0], [2.0]])
        value = subgroup_spread(
            targets, np.arange(2), np.array([1.0]), center=np.array([0.0])
        )
        assert value == pytest.approx(2.0)  # (0 + 4) / 2

    def test_requires_unit_direction(self, rng):
        targets = rng.standard_normal((5, 2))
        with pytest.raises(ValueError, match="unit"):
            subgroup_spread(targets, np.arange(3), np.array([1.0, 1.0]))

    def test_dimension_mismatch(self, rng):
        targets = rng.standard_normal((5, 2))
        with pytest.raises(ModelError, match="dim"):
            subgroup_spread(targets, np.arange(3), np.array([1.0, 0.0, 0.0]))

    def test_rotation_invariance_of_trace(self, rng):
        """Sum of spreads over an orthonormal basis equals total variance."""
        targets = rng.standard_normal((40, 3))
        idx = np.arange(20)
        q, _ = np.linalg.qr(rng.standard_normal((3, 3)))
        total = sum(subgroup_spread(targets, idx, q[:, j]) for j in range(3))
        assert total == pytest.approx(
            np.trace(subgroup_cov(targets, idx)), rel=1e-10
        )
