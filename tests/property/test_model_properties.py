"""Property-based tests of the background-model invariants.

Hypothesis generates random priors, subgroups and statistics; the model
must satisfy its constraints exactly and keep its covariances positive
definite regardless.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.model.background import BackgroundModel
from repro.model.patterns import LocationConstraint, SpreadConstraint
from repro.model.priors import Prior

DIM = st.integers(min_value=1, max_value=4)


@st.composite
def model_and_targets(draw):
    """A random prior-based model plus consistent target data."""
    d = draw(DIM)
    n = draw(st.integers(min_value=6, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    mean = rng.uniform(-3.0, 3.0, d)
    a = rng.standard_normal((d, d))
    cov = a @ a.T + (0.5 + rng.random()) * np.eye(d)
    targets = rng.multivariate_normal(mean, cov, size=n)
    model = BackgroundModel(n, Prior(mean, cov))
    return model, targets, rng


@st.composite
def subgroup_indices(draw, n):
    size = draw(st.integers(min_value=2, max_value=max(2, n // 2)))
    start = draw(st.integers(min_value=0, max_value=n - size))
    return np.arange(start, start + size)


class TestLocationUpdateProperties:
    @given(data=model_and_targets(), payload=st.data())
    @settings(max_examples=40, deadline=None)
    def test_constraint_exact_and_pd(self, data, payload):
        model, targets, _ = data
        idx = payload.draw(subgroup_indices(model.n_rows))
        constraint = LocationConstraint.from_data(targets, idx)
        model.assimilate(constraint)
        np.testing.assert_allclose(
            model.expected_subgroup_mean(idx), constraint.mean, atol=1e-8
        )
        for b in range(model.n_blocks):
            np.linalg.cholesky(model.block_cov(b))

    @given(data=model_and_targets(), payload=st.data())
    @settings(max_examples=25, deadline=None)
    def test_sequential_disjoint_constraints_all_hold(self, data, payload):
        model, targets, _ = data
        n = model.n_rows
        half = n // 2
        idx1 = np.arange(0, max(2, half // 2))
        idx2 = np.arange(half, half + max(2, (n - half) // 2))
        c1 = LocationConstraint.from_data(targets, idx1)
        c2 = LocationConstraint.from_data(targets, idx2)
        model.assimilate(c1).assimilate(c2)
        assert model.max_residual() < 1e-8

    @given(data=model_and_targets(), payload=st.data())
    @settings(max_examples=25, deadline=None)
    def test_refit_converges_with_overlap(self, data, payload):
        model, targets, _ = data
        n = model.n_rows
        a = payload.draw(subgroup_indices(n))
        b = payload.draw(subgroup_indices(n))
        constraints = [
            LocationConstraint.from_data(targets, a),
            LocationConstraint.from_data(targets, b),
        ]
        model.refit(constraints, tol=1e-8, max_rounds=500)
        assert model.max_residual() < 1e-8


class TestSpreadUpdateProperties:
    @given(data=model_and_targets(), payload=st.data())
    @settings(max_examples=40, deadline=None)
    def test_constraint_exact_and_pd(self, data, payload):
        model, targets, rng = data
        idx = payload.draw(subgroup_indices(model.n_rows))
        w = rng.standard_normal(model.dim)
        w /= np.linalg.norm(w)
        constraint = SpreadConstraint.from_data(targets, idx, w)
        model.assimilate(constraint)
        achieved = model.expected_spread(idx, w, constraint.center)
        assert achieved == pytest.approx(constraint.variance, rel=1e-6)
        for b in range(model.n_blocks):
            np.linalg.cholesky(model.block_cov(b))

    @given(data=model_and_targets(), payload=st.data())
    @settings(max_examples=25, deadline=None)
    def test_block_count_bounded(self, data, payload):
        """After t patterns there are at most t+1 blocks (nested splits)."""
        model, targets, rng = data
        n_patterns = 3
        for _ in range(n_patterns):
            idx = payload.draw(subgroup_indices(model.n_rows))
            model.assimilate(LocationConstraint.from_data(targets, idx))
        assert model.n_blocks <= 2**n_patterns
        assert model.block_sizes().sum() == model.n_rows
