"""Tests for the European-mammals stand-in (§III-B calibration)."""

import numpy as np
import pytest

from repro.datasets.mammals import FOCAL_SPECIES, make_mammals


class TestShape:
    def test_paper_dimensions(self, mammals_dataset):
        assert mammals_dataset.n_rows == 2220
        assert mammals_dataset.n_descriptions == 67
        assert mammals_dataset.n_targets == 124

    def test_targets_binary(self, mammals_dataset):
        assert set(np.unique(mammals_dataset.targets)) <= {0.0, 1.0}

    def test_focal_species_present(self, mammals_dataset):
        for name, _ in FOCAL_SPECIES:
            assert name in mammals_dataset.target_names

    def test_metadata_grid(self, mammals_dataset):
        lat = mammals_dataset.metadata["lat"]
        lon = mammals_dataset.metadata["lon"]
        assert lat.shape == (2220,)
        assert lon.shape == (2220,)
        assert lat.min() >= 35.0 and lat.max() <= 72.0

    def test_too_few_species_rejected(self):
        with pytest.raises(ValueError):
            make_mammals(0, n_species=3)


class TestClimate:
    def test_temperature_decreases_with_latitude(self, mammals_dataset):
        lat = mammals_dataset.metadata["lat"]
        temp = mammals_dataset.column("annual_mean_temp").values
        rho = np.corrcoef(lat, temp)[0, 1]
        assert rho < -0.8

    def test_cold_march_region_fraction(self, mammals_dataset):
        cold = mammals_dataset.column("tmp_mar").values <= -1.68
        assert 0.15 <= cold.mean() <= 0.28

    def test_alps_are_cold(self, mammals_dataset):
        lat = mammals_dataset.metadata["lat"]
        lon = mammals_dataset.metadata["lon"]
        tmp = mammals_dataset.column("tmp_mar").values
        alps = (np.abs(lat - 46.5) < 1.0) & (np.abs(lon - 10.0) < 3.0)
        south_lowland = (lat < 42.0) & (lon > -5.0) & (lon < 5.0)
        assert tmp[alps].mean() < tmp[south_lowland].mean() - 5.0

    def test_mediterranean_dry_august(self, mammals_dataset):
        lat = mammals_dataset.metadata["lat"]
        rain = mammals_dataset.column("rain_aug").values
        assert rain[lat < 42.0].mean() < rain[lat > 50.0].mean() - 20.0

    def test_east_dry_october_warm_summerwet(self, mammals_dataset):
        lon = mammals_dataset.metadata["lon"]
        lat = mammals_dataset.metadata["lat"]
        east = (lon > 20.0) & (lat > 44.0) & (lat < 55.0)
        west = (lon < 0.0) & (lat > 44.0) & (lat < 55.0)
        rain_oct = mammals_dataset.column("rain_oct").values
        warm_wet = mammals_dataset.column("mean_temp_wettest_quarter").values
        assert rain_oct[east].mean() < rain_oct[west].mean() - 15.0
        assert warm_wet[east].mean() > warm_wet[west].mean() + 5.0


class TestSpecies:
    def presence(self, ds, name):
        return ds.targets[:, ds.target_index(name)] > 0.5

    def test_mountain_hare_boreal(self, mammals_dataset):
        cold = mammals_dataset.column("tmp_mar").values <= -1.68
        hare = self.presence(mammals_dataset, "lepus_timidus")
        assert hare[cold].mean() > 0.75
        assert hare[~cold].mean() < 0.35

    def test_wood_mouse_temperate(self, mammals_dataset):
        cold = mammals_dataset.column("tmp_mar").values <= -1.68
        mouse = self.presence(mammals_dataset, "apodemus_sylvaticus")
        assert mouse[~cold].mean() > 0.6
        assert mouse[cold].mean() < mouse[~cold].mean() - 0.3

    def test_iberian_hare_only_in_dry_south(self, mammals_dataset):
        hare = self.presence(mammals_dataset, "lepus_granatensis")
        dry = mammals_dataset.column("rain_aug").values <= 47.62
        # Nearly all occurrences lie inside the dry-summer region.
        assert hare[~dry].mean() < 0.25
        assert hare[dry].mean() > hare[~dry].mean() + 0.2

    def test_moist_species_avoid_dry_summer(self, mammals_dataset):
        stoat = self.presence(mammals_dataset, "mustela_erminea")
        dry = mammals_dataset.column("rain_aug").values <= 30.0
        wet = mammals_dataset.column("rain_aug").values >= 70.0
        assert stoat[wet].mean() > stoat[dry].mean() + 0.3
