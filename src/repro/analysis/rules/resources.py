"""Resource-safety rules: handles close on every path, renames hit disk.

Shared-memory segments outlive the process on leak (``/dev/shm`` fills
until reboot), sqlite connections hold file locks, and a write-then-
rename that skips the ``fsync`` can publish a zero-length file after a
crash — the exact torn-state class :mod:`repro.store.wal` exists to
prevent. These rules check the lexical shape of acquisition: a context
manager, or a ``try``/``finally`` that releases the handle.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.base import LintRule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile, scope_statements

#: Calls that acquire a handle the caller must release.
_CREATORS = {
    "open": "close()",
    "os.fdopen": "close()",
    "sqlite3.connect": "close()",
    "socket.socket": "close()",
    "socket.create_connection": "close()",
    "http.client.HTTPConnection": "close()",
    "http.client.HTTPSConnection": "close()",
    "multiprocessing.shared_memory.SharedMemory": "close() and unlink()",
}

#: Method names that count as releasing a handle.
_RELEASES = frozenset(
    {"close", "unlink", "shutdown", "terminate", "release", "stop"}
)


def _released_in_finally(scope: ast.AST, name: str) -> bool:
    """True when ``name.<release>()`` appears inside a finally block."""
    for node in scope_statements(scope):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for stmt in node.finalbody:
            for inner in ast.walk(stmt):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr in _RELEASES
                    and isinstance(inner.func.value, ast.Name)
                    and inner.func.value.id == name
                ):
                    return True
    return False


def _escapes(source: SourceFile, scope: ast.AST, name: str) -> bool:
    """True when the handle leaves this scope (ownership transferred).

    Returned/yielded handles belong to the caller; handles stored into
    attributes, containers, or passed to other calls are released by
    whoever holds them (e.g. the shm leak registry). Only a handle that
    provably stays local is this scope's problem. Method calls *on* the
    handle (``fh.read()``, ``conn.close()``) do not count as escaping.
    """
    for node in scope_statements(scope):
        if not (isinstance(node, ast.Name) and node.id == name):
            continue
        parent = source.parent(node)
        # Receiver of a method call: fh.read(), conn.close() — local use.
        if isinstance(parent, ast.Attribute):
            continue
        # Store target (the creating assignment or a rebind).
        if isinstance(node.ctx, ast.Store):
            continue
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        # Positional/keyword argument of some other call, or packed into
        # a container/starred expression: ownership moved.
        if isinstance(parent, ast.Call) and node in parent.args:
            return True
        if isinstance(parent, ast.keyword):
            return True
        if isinstance(
            parent, (ast.List, ast.Tuple, ast.Set, ast.Dict, ast.Starred)
        ):
            return True
        if isinstance(parent, ast.Assign) and node is parent.value:
            return True  # aliased: the alias may be the one closed
        if isinstance(parent, ast.Subscript):
            return True  # registry[name] = handle style
    return False


@register_rule
class UnclosedHandleRule(LintRule):
    """RES001: acquired handles must release on all paths.

    A ``SharedMemory`` segment, sqlite connection, socket, or file
    handle assigned to a local variable and closed only on the happy
    path leaks the moment an exception skips the ``close()`` —
    shared-memory segments survive the *process* and fill ``/dev/shm``
    until reboot. Acquire under ``with``, or release in a
    ``try``/``finally``. Handles that escape the function (returned,
    registered, stored on ``self``) are the holder's responsibility and
    are not flagged.
    """

    rule_id = "RES001"
    title = "resource acquired without close()/unlink() on all paths"

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Yield every violation of this rule found in ``source``."""
        for scope in source.scopes():
            yield from self._check_scope(source, scope)

    def _check_scope(self, source: SourceFile, scope: ast.AST) -> Iterator[Finding]:
        for node in scope_statements(scope):
            if not (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                continue
            qual = source.qualname(node.value.func)
            release = _CREATORS.get(qual or "")
            if release is None:
                continue
            if self._inside_with(source, node):
                continue
            name = node.targets[0].id
            if _released_in_finally(scope, name):
                continue
            if _escapes(source, scope, name):
                continue
            yield self.finding(
                source,
                node.value,
                f"{qual}() result {name!r} is not guaranteed {release}; "
                f"use a with block or try/finally",
            )

    @staticmethod
    def _inside_with(source: SourceFile, node: ast.AST) -> bool:
        for ancestor in source.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                return True
        return False


@register_rule
class RenameWithoutFsyncRule(LintRule):
    """RES002: write-then-rename must fsync before the rename.

    ``os.replace`` publishes a file atomically — but atomicity is about
    *names*, not bytes. If the data was never fsynced, a crash after
    the rename can leave the final path holding a zero-length or
    partial file: the metadata journal committed the rename while the
    data pages were still in the page cache. Every durable write in
    :mod:`repro.store` follows write → flush → ``os.fsync`` →
    ``os.replace``; this rule keeps it that way.
    """

    rule_id = "RES002"
    title = "write-then-rename without an intervening fsync"
    applies_to = ("repro/store/",)

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Yield every violation of this rule found in ``source``."""
        for scope in source.scopes():
            if isinstance(scope, ast.Lambda):
                continue
            yield from self._check_scope(source, scope)

    def _check_scope(self, source: SourceFile, scope: ast.AST) -> Iterator[Finding]:
        writes: list[int] = []
        fsyncs: list[int] = []
        renames: list[ast.Call] = []
        for node in scope_statements(scope):
            if not isinstance(node, ast.Call):
                continue
            qual = source.qualname(node.func)
            if qual in ("os.replace", "os.rename"):
                renames.append(node)
            elif qual == "os.fsync":
                fsyncs.append(node.lineno)
            elif qual in ("open", "os.fdopen"):
                if self._opens_for_write(node):
                    writes.append(node.lineno)
        for rename in renames:
            wrote_before = any(line < rename.lineno for line in writes)
            synced_before = any(line < rename.lineno for line in fsyncs)
            if wrote_before and not synced_before:
                yield self.finding(
                    source,
                    rename,
                    "rename publishes data that was never fsynced; call "
                    "os.fsync(fh.fileno()) after the write and before "
                    "os.replace",
                )

    @staticmethod
    def _opens_for_write(node: ast.Call) -> bool:
        mode = None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            mode = node.args[1].value
        for keyword in node.keywords:
            if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
                mode = keyword.value.value
        if not isinstance(mode, str):
            return False
        return any(flag in mode for flag in ("w", "a", "x", "+"))
