"""Reproductions of every table and figure of the paper's evaluation.

One module per experiment family; each exposes ``run_*`` functions that
return plain-dataclass results and ``format_*`` helpers that render the
same rows the paper reports. The benchmarks under ``benchmarks/`` and
the CLI both call into this package, so the numbers in test logs, bench
logs and terminal output always agree.
"""

from repro.experiments.crime_example import Fig1Result, run_fig1
from repro.experiments.synthetic_exp import (
    Fig2Result,
    Fig3Result,
    Table1Result,
    run_fig2,
    run_fig3,
    run_table1,
)
from repro.experiments.mammals_exp import (
    Fig4Result,
    Fig5Result,
    Fig6Result,
    run_fig4,
    run_fig5,
    run_fig6,
)
from repro.experiments.socio_exp import Fig7Result, Fig8Result, run_fig7, run_fig8
from repro.experiments.water_exp import Fig9Result, Fig10Result, run_fig9, run_fig10
from repro.experiments.runtime_exp import Table2Result, run_table2

__all__ = [
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_table1",
    "run_table2",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "Table1Result",
    "Table2Result",
]
