"""The pattern statistics of §II-A: subgroup location and spread.

Eq. 1: ``f_I(Y) = sum_{i in I} y_i / |I|`` — the subgroup mean vector.
Eq. 2: ``g_I^w(Y) = sum_{i in I} ((y_i - yhat_I)' w)^2 / |I|`` — the
spread around the *empirical* subgroup mean along a unit direction
``w``. Note the normalization by ``|I|`` (not ``|I| - 1``): the paper's
statistic is the mean squared projection, and the model updates and the
chi-squared machinery all assume exactly that normalization.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.utils.validation import check_unit_vector


def _subgroup(
    targets: np.ndarray, indices, weights: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None]:
    targets = np.asarray(targets, dtype=float)
    if targets.ndim == 1:
        targets = targets[:, None]
    arr = np.asarray(indices)
    if arr.dtype == bool:
        if arr.shape[0] != targets.shape[0]:
            raise ModelError("boolean mask length does not match targets")
        idx = arr
    else:
        idx = arr.astype(np.int64)
    sub = targets[idx]
    if sub.shape[0] == 0:
        raise ModelError("subgroup is empty")
    if weights is None:
        return sub, None
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1 or w.shape[0] != targets.shape[0]:
        raise ModelError("weights length does not match targets")
    return sub, w[idx]


def _weighted_mean(sub: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``sum w_i y_i / sum w_i``, evaluated so that unit weights reduce
    to the exact unweighted operations: premultiplying by ``w == 1.0``
    and rescaling by ``n / sum(w) == 1.0`` leave every intermediate
    bit-identical to ``sub.mean(axis=0)``. A direct ``w @ sub / w.sum()``
    would route through BLAS and drift in the last ulp."""
    return (sub * w[:, None]).mean(axis=0) * (sub.shape[0] / float(w.sum()))


def subgroup_mean(targets: np.ndarray, indices, weights: np.ndarray | None = None) -> np.ndarray:
    """Eq. 1: the location statistic ``f_I`` evaluated on the data.

    With case ``weights`` (frequency semantics: weight ``w`` counts the
    row ``w`` times) the statistic becomes ``sum w_i y_i / sum w_i``;
    ``weights=None`` takes the exact unweighted code path.
    """
    sub, w = _subgroup(targets, indices, weights)
    if w is None:
        return sub.mean(axis=0)
    return _weighted_mean(sub, w)


def subgroup_cov(targets: np.ndarray, indices, weights: np.ndarray | None = None) -> np.ndarray:
    """Empirical covariance of the subgroup (1/|I| normalization).

    This is the matrix ``S`` with ``g_I^w = w' S w``; the spread search
    optimizes ``w`` against it. With case weights the normalization is
    the total subgroup weight ``W = sum w_i`` and the center is the
    weighted mean, matching the duplicated-rows interpretation.
    """
    sub, w = _subgroup(targets, indices, weights)
    if w is None:
        centered = sub - sub.mean(axis=0)
        return (centered.T @ centered) / sub.shape[0]
    # sqrt(w) premultiplication keeps this an x.T @ x of a single buffer
    # (the same BLAS syrk call as above), so unit weights stay
    # bit-identical to the unweighted branch.
    scaled = (sub - _weighted_mean(sub, w)) * np.sqrt(w)[:, None]
    return scaled.T @ scaled / float(w.sum())


def subgroup_spread(
    targets: np.ndarray,
    indices,
    direction: np.ndarray,
    *,
    center: np.ndarray | None = None,
    weights: np.ndarray | None = None,
) -> float:
    """Eq. 2: the spread statistic ``g_I^w`` evaluated on the data.

    ``center`` defaults to the empirical subgroup mean (the paper's
    definition); passing it explicitly supports evaluating the statistic
    a pattern was originally communicated with. With case weights the
    mean squared projection is weight-averaged, ``sum w p^2 / sum w``.
    """
    sub, w = _subgroup(targets, indices, weights)
    direction = check_unit_vector(direction, "direction")
    if direction.shape[0] != sub.shape[1]:
        raise ModelError(
            f"direction has dim {direction.shape[0]}, targets have {sub.shape[1]}"
        )
    if center is None:
        center = sub.mean(axis=0) if w is None else _weighted_mean(sub, w)
    projections = (sub - np.asarray(center, dtype=float)) @ direction
    if w is None:
        return float(np.mean(projections**2))
    return float(
        np.mean(projections**2 * w) * (projections.shape[0] / float(w.sum()))
    )
