"""Server-test fixtures: one shared HTTP server per module.

The server runs on a background thread with its own asyncio loop (the
``run_in_thread`` path the examples and benchmarks use), bound to an
ephemeral port so parallel test runs never collide.
"""

import pytest

from repro.client import RemoteWorkspace
from repro.server import MiningServer


@pytest.fixture(scope="module")
def server_handle():
    handle = MiningServer(port=0, backend="thread", max_workers=2).run_in_thread()
    yield handle
    handle.stop()


@pytest.fixture(scope="module")
def remote(server_handle):
    return RemoteWorkspace(server_handle.url, timeout=30.0)
