"""``sisd lint --changed``: lint only what a commit would touch."""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import textwrap

import pytest

from repro.analysis import changed_files
from repro.analysis.cli import add_lint_arguments, run_lint
from repro.errors import AnalysisError

pytestmark = pytest.mark.skipif(
    shutil.which("git") is None, reason="git not on PATH"
)

_BAD = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
)


def _git(repo, *argv):
    subprocess.run(
        ["git", *argv],
        cwd=repo,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@example.com",
            "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@example.com",
            "HOME": str(repo),
            "PATH": os.environ["PATH"],
        },
    )


@pytest.fixture
def repo(tmp_path, monkeypatch):
    """A git repo with two committed critical modules, cwd inside."""
    monkeypatch.chdir(tmp_path)
    engine = tmp_path / "repro" / "engine"
    engine.mkdir(parents=True)
    (engine / "cache.py").write_text("def fine():\n    return 1\n")
    (engine / "jobs.py").write_text("def fine():\n    return 2\n")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")
    return tmp_path


def run_cli(*argv: str) -> int:
    parser = argparse.ArgumentParser(prog="sisd lint")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(list(argv)))


class TestChangedFiles:
    def test_modified_and_untracked_are_listed(self, repo):
        (repo / "repro" / "engine" / "cache.py").write_text(_BAD)
        (repo / "repro" / "engine" / "fresh.py").write_text("x = 1\n")
        names = [path.name for path in changed_files("HEAD", cwd=repo)]
        assert names == ["cache.py", "fresh.py"]

    def test_clean_checkout_lists_nothing(self, repo):
        assert changed_files("HEAD", cwd=repo) == []

    def test_bad_ref_raises(self, repo):
        with pytest.raises(AnalysisError, match="no-such-ref"):
            changed_files("no-such-ref", cwd=repo)


class TestChangedMode:
    def test_only_changed_files_are_linted(self, repo, capsys):
        # Both files would fire DET001, but only cache.py changed.
        (repo / "repro" / "engine" / "cache.py").write_text(_BAD)
        assert run_cli("--changed", "HEAD", ".") == 1
        out = capsys.readouterr().out
        assert "cache.py" in out
        assert "jobs.py" not in out

    def test_untracked_files_are_included(self, repo, capsys):
        # repro/spec.py is determinism-critical and was never committed.
        (repo / "repro" / "spec.py").write_text(_BAD)
        assert run_cli("--changed", "HEAD", ".") == 1
        assert "spec.py" in capsys.readouterr().out

    def test_no_changes_is_a_clean_run(self, repo, capsys):
        assert run_cli("--changed", "HEAD", ".") == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_changed_respects_requested_paths(self, repo, capsys):
        # The change is outside the requested subtree: nothing to lint.
        outside = repo / "other"
        outside.mkdir()
        (outside / "mod.py").write_text(_BAD)
        assert run_cli("--changed", "HEAD", "repro") == 0

    def test_bad_ref_exits_two(self, repo, capsys):
        assert run_cli("--changed", "no-such-ref", ".") == 2
        assert "no-such-ref" in capsys.readouterr().err
