"""Deterministic random-number-generator helpers.

Every stochastic component of the library accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int``, or an existing
:class:`numpy.random.Generator`. :func:`as_rng` normalizes all three into a
``Generator`` so downstream code never touches the legacy ``RandomState``
API and experiments are reproducible from a single integer.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Passing an existing generator returns it unchanged, so helper functions
    can thread one RNG through a pipeline without reseeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, count: int) -> list[np.random.Generator]:
    """Split a seed into ``count`` independent generators.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees the
    child streams are statistically independent — the right tool for
    multi-start optimizers and noise-sweep experiments where each arm must
    be reproducible on its own.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's bit stream.
        root = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]
