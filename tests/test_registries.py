"""Tests for the string-keyed registries behind MiningSpec."""

import pytest

import repro
from repro.errors import DataError, ModelError, ReproError, SearchError
from repro.registry import DATASETS, MEASURES, MODELS, SEARCHES, Registry


class TestRegistryMechanics:
    def test_register_and_get(self):
        registry = Registry("widget")
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry
        assert len(registry) == 1

    def test_decorator_form(self):
        registry = Registry("widget")

        @registry.registered("fn")
        def fn():
            return 42

        assert registry.get("fn") is fn

    def test_register_without_value_is_an_immediate_error(self):
        registry = Registry("widget")
        with pytest.raises(ReproError, match="needs a value"):
            registry.register("forgotten")
        with pytest.raises(ReproError, match="needs a value"):
            registry.register("explicit-none", None)
        assert "forgotten" not in registry

    def test_unknown_key_names_registry_and_lists_keys(self):
        registry = Registry("widget")
        registry.register("alpha", 1)
        registry.register("beta", 2)
        with pytest.raises(ReproError, match="unknown widget 'gamma'"):
            registry.get("gamma")
        with pytest.raises(ReproError, match="available: alpha, beta"):
            registry.get("gamma")

    def test_duplicate_key_raises(self):
        registry = Registry("widget")
        registry.register("a", 1)
        with pytest.raises(ReproError, match="already registered"):
            registry.register("a", 2)

    def test_empty_key_rejected(self):
        with pytest.raises(ReproError, match="non-empty string"):
            Registry("widget").register("", 1)

    def test_custom_error_class(self):
        registry = Registry("thing", error=DataError)
        with pytest.raises(DataError):
            registry.get("nope")

    def test_keys_sorted_and_iterable(self):
        registry = Registry("widget")
        registry.register("b", 2)
        registry.register("a", 1)
        assert registry.keys() == ["a", "b"]
        assert list(registry) == ["a", "b"]


class TestBuiltinsRegisteredAtImport:
    """``import repro`` must always see the full vocabulary.

    These guard ``__init__`` drift: a new dataset/strategy/model/measure
    that is not registered here is invisible to every MiningSpec.
    """

    def test_datasets(self):
        assert DATASETS.keys() == ["crime", "mammals", "socio", "synthetic", "water"]

    def test_search_strategies(self):
        assert SEARCHES.keys() == ["beam", "branch_bound", "quality_beam"]

    def test_models(self):
        assert MODELS.keys() == ["bernoulli", "gaussian"]

    def test_measures(self):
        assert MEASURES.keys() == [
            "dispersion_corrected", "mean_shift", "si", "wracc",
        ]

    def test_top_level_reexports_are_the_same_objects(self):
        assert repro.DATASETS is DATASETS
        assert repro.SEARCHES is SEARCHES
        assert repro.MODELS is MODELS
        assert repro.MEASURES is MEASURES

    def test_registered_values_resolve(self):
        from repro.model.background import BackgroundModel
        from repro.search.beam import LocationBeamSearch

        assert MODELS.get("gaussian") is BackgroundModel
        assert SEARCHES.get("beam") is LocationBeamSearch

    def test_typed_errors(self):
        with pytest.raises(DataError):
            DATASETS.get("nope")
        with pytest.raises(SearchError):
            SEARCHES.get("nope")
        with pytest.raises(ModelError):
            MODELS.get("nope")


class TestDatasetRegistryDelegation:
    def test_load_dataset_goes_through_the_registry(self):
        registered = DATASETS.get("synthetic")
        dataset = registered(0)
        assert repro.load_dataset("synthetic", seed=0).n_rows == dataset.n_rows

    def test_extension_is_visible_everywhere(self):
        def make_aliased(seed=0, **kwargs):
            return repro.make_synthetic(seed, **kwargs)

        DATASETS.register("aliased-test", make_aliased)
        try:
            assert "aliased-test" in repro.available_datasets()
            loaded = repro.load_dataset("aliased-test", seed=1)
            assert loaded.n_rows == repro.make_synthetic(1).n_rows
        finally:
            DATASETS._entries.pop("aliased-test")
