"""Per-phase timing reports: the ``profile=`` hook behind Workspace.mine.

A profile is a *diff of the metrics registry* around a block of work:
snapshot :data:`~repro.obs.instruments.METRICS` before, run, snapshot
after, and report every counter/histogram that moved. Because the hot
paths are already instrumented (beam phases, miner steps, shard RTTs),
profiling adds **zero** new measurement cost — the hook only pays for
two snapshots and a table render.

>>> from repro.obs.profile import profile_block
>>> with profile_block() as report:          # doctest: +SKIP
...     workspace.mine(spec)
>>> print(report.format())                   # doctest: +SKIP
"""

from __future__ import annotations

from repro.obs import clock
from repro.obs.instruments import METRICS
from repro.obs.metrics import MetricsRegistry

__all__ = ["ProfileReport", "profile_block"]

#: Rows are (metric, labels) pairs; histogram families surface as
#: ``*_sum``/``*_count`` and are folded into one row each.
_SECONDS_SUFFIX = "_seconds_sum"


class ProfileReport:
    """Mutable capture of one profiled block; render with :meth:`format`."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else METRICS
        self._before: dict = {}
        self._after: dict = {}
        self._started = 0.0
        self.elapsed = 0.0

    # ----------------------------- capture ---------------------------- #
    def start(self) -> "ProfileReport":
        """Snapshot the registry; the block being profiled starts now."""
        self._before = self.registry.snapshot()
        self._started = clock.perf_counter()
        return self

    def stop(self) -> "ProfileReport":
        """Snapshot again; deltas/format read the difference."""
        self.elapsed = clock.perf_counter() - self._started
        self._after = self.registry.snapshot()
        return self

    # ------------------------------ reads ----------------------------- #
    def deltas(self) -> dict[str, dict[tuple[str, ...], float]]:
        """Every sample that moved: ``{name: {labels: delta}}``."""
        moved: dict[str, dict[tuple[str, ...], float]] = {}
        for name, series in self._after.items():
            baseline = self._before.get(name, {})
            for labels, value in series.items():
                delta = value - baseline.get(labels, 0.0)
                if delta:
                    moved.setdefault(name, {})[labels] = delta
        return moved

    def phase_seconds(self) -> dict[str, float]:
        """Seconds per beam/step phase observed during the block."""
        phases: dict[str, float] = {}
        deltas = self.deltas()
        for name in ("sisd_beam_phase_seconds_sum", "sisd_step_phase_seconds_sum"):
            for labels, delta in deltas.get(name, {}).items():
                key = labels[0] if labels else name
                phases[key] = phases.get(key, 0.0) + delta
        return phases

    def format(self) -> str:
        """The human-facing per-phase timing table."""
        from repro.report.tables import format_table

        deltas = self.deltas()
        rows: list[tuple] = []
        for name in sorted(deltas):
            if name.endswith("_count") and name[:-6] + "_sum" in deltas:
                continue  # folded into the _sum row below
            for labels, delta in sorted(deltas[name].items()):
                label_text = ",".join(labels)
                if name.endswith("_sum"):
                    base = name[:-4]
                    count = deltas.get(base + "_count", {}).get(labels, 0.0)
                    rows.append(
                        (base, label_text, f"{delta:.4f}s", f"x{count:g}")
                    )
                else:
                    rows.append((name, label_text, f"{delta:g}", ""))
        if not rows:
            rows.append(("(no instrumented activity)", "", "", ""))
        table = format_table(
            ["metric", "labels", "delta", "events"],
            rows,
            title=f"profile: {self.elapsed:.4f}s wall",
        )
        return table

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()


class profile_block:
    """``with profile_block() as report: ...`` captures a metrics diff."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.report = ProfileReport(registry)

    def __enter__(self) -> ProfileReport:
        return self.report.start()

    def __exit__(self, *exc_info: object) -> None:
        self.report.stop()
