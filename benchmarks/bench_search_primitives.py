"""Micro-benchmarks of the search primitives.

The batched candidate scorer is the beam search's inner loop; the spread
objective's value-and-gradient is the sphere optimizer's.
"""

import numpy as np
import pytest

from repro.datasets.mammals import make_mammals
from repro.datasets.water import make_water
from repro.model.background import BackgroundModel
from repro.search.beam import LocationICScorer
from repro.search.spread import SpreadObjective


@pytest.fixture(scope="module")
def mammal_scorer():
    dataset = make_mammals(0)
    model = BackgroundModel.from_targets(dataset.targets)
    scorer = LocationICScorer(model, dataset.targets)
    rng = np.random.default_rng(0)
    masks = np.stack([rng.random(dataset.n_rows) < 0.2 for _ in range(256)])
    return scorer, masks


def bench_batched_scoring_256_candidates(benchmark, mammal_scorer):
    """256 subgroup ICs on the mammals data (n=2220, d_y=124)."""
    scorer, masks = mammal_scorer
    benchmark(lambda: scorer.score_masks(masks))


@pytest.fixture(scope="module")
def water_objective():
    dataset = make_water(0)
    model = BackgroundModel.from_targets(dataset.targets)
    objective = SpreadObjective(model, np.arange(100), dataset.targets)
    rng = np.random.default_rng(0)
    w = rng.standard_normal(dataset.n_targets)
    w /= np.linalg.norm(w)
    return objective, w


def bench_spread_value_and_grad(benchmark, water_objective):
    """One objective+gradient evaluation on the water data (d_y=16)."""
    objective, w = water_objective
    benchmark(lambda: objective.value_and_grad(w))


def bench_spread_pair_search(benchmark, water_objective):
    """The 2-sparse pair sweep over all 120 target pairs (socio-style)."""
    from repro.search.spread import _best_pair_direction

    objective, _ = water_objective
    benchmark.pedantic(
        lambda: _best_pair_direction(objective), rounds=1, iterations=1
    )
