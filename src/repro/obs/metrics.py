"""Counters, gauges, and histograms with a Prometheus-text face.

The design constraints come straight from the engine it observes:

- **Off the hot path.** Call sites hold *pre-bound* instrument handles
  (module-level ``Counter``/``Histogram`` children) so recording one
  event is a lock, an add, an unlock — no name lookups, no label
  joins, no string formatting. All rendering cost is paid at scrape
  time.
- **Deterministic.** Instrument families live in a string-keyed
  :class:`repro.registry.Registry` (the ``MODELS``/``MEASURES`` idiom:
  typed errors, duplicate rejection), registration order is recorded,
  and :meth:`MetricsRegistry.render` emits families sorted by name and
  children sorted by label values — two scrapes of the same state are
  byte-identical.
- **Out of the results.** Nothing here ever feeds a fingerprint; the
  engine's bit-identical-results contract is tested with metrics *on*.

Histogram buckets are fixed at family creation (default
:data:`LATENCY_BUCKETS`, chosen for sub-millisecond shard RTTs up
through multi-second beam levels) — fixed boundaries keep scrapes
comparable across processes and over time.

:func:`parse_prometheus` is the read side — ``sisd top`` and
``sisd admin usage`` scrape ``GET /metrics`` and work from the parsed
samples, so the CLI needs no second wire format.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import ObsError
from repro.registry import Registry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "parse_prometheus",
]

#: Content type of the Prometheus text exposition format, served by
#: every ``GET /metrics`` endpoint (server, worker daemon, router).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default histogram boundaries (seconds): spans shard RTTs (~1ms)
#: through whole beam searches (~10s). ``+Inf`` is implicit.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_KINDS = ("counter", "gauge", "histogram")


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ObsError(
            f"metric name must be [a-zA-Z0-9_:]+, got {name!r}"
        )
    if name[0].isdigit():
        raise ObsError(f"metric name cannot start with a digit: {name!r}")
    return name


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render bare, floats shortest."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_suffix(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing count (one labeled child)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise ObsError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (one labeled child)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount``."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-boundary cumulative histogram (one labeled child).

    :meth:`observe` costs one binary search plus three adds under a
    lock; :meth:`time` wraps a block and observes its duration through
    the :mod:`repro.obs.clock` seam.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self._lock = threading.Lock()
        self.buckets = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation (finite numbers only)."""
        if not math.isfinite(value):
            raise ObsError(f"histogram observations must be finite, got {value}")
        # Linear scan is fine: bucket lists are short (~14) and the
        # common observations land in the first few buckets anyway.
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def time(self) -> "_HistogramTimer":
        """``with histogram.time(): ...`` observes the block's seconds."""
        return _HistogramTimer(self)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> tuple[list[int], float, int]:
        """(per-bucket counts, sum, count) under one lock."""
        with self._lock:
            return list(self._counts), self._sum, self._count


class _HistogramTimer:
    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_HistogramTimer":
        from repro.obs import clock

        self._started = clock.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        from repro.obs import clock

        self._histogram.observe(clock.perf_counter() - self._started)


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric: kind, help text, label names, children.

    A label-less family has exactly one child (pre-created); a labeled
    family materializes children on first :meth:`labels` call and
    memoizes them, so call sites bind once and record forever.
    """

    __slots__ = ("name", "kind", "help", "label_names", "buckets",
                 "_children", "_lock")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()
        if not label_names:
            self._children[()] = self._new_child()

    def _new_child(self):
        if self.kind == "histogram":
            return Histogram(self.buckets or LATENCY_BUCKETS)
        return _CHILD_TYPES[self.kind]()

    def labels(self, *values: str):
        """The memoized child for one label-value tuple."""
        if len(values) != len(self.label_names):
            raise ObsError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {len(values)} value(s)"
            )
        key = tuple(str(value) for value in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
        return child

    @property
    def default(self):
        """The single child of a label-less family."""
        if self.label_names:
            raise ObsError(
                f"metric {self.name!r} is labeled by {self.label_names}; "
                f"bind a child with .labels(...)"
            )
        return self._children[()]

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        """(label values, child) pairs, sorted for stable rendering."""
        with self._lock:
            return sorted(self._children.items())

    # ------------------------------- render --------------------------- #
    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for values, child in self.children():
            suffix = _label_suffix(self.label_names, values)
            if self.kind == "histogram":
                assert isinstance(child, Histogram)
                counts, total, count = child.snapshot()
                cumulative = 0
                bounds = [*child.buckets, math.inf]
                for bound, bucket_count in zip(bounds, counts):
                    cumulative += bucket_count
                    le = _label_suffix(
                        (*self.label_names, "le"),
                        (*values, _format_value(bound)),
                    )
                    lines.append(f"{self.name}_bucket{le} {cumulative}")
                lines.append(f"{self.name}_sum{suffix} {_format_value(total)}")
                lines.append(f"{self.name}_count{suffix} {count}")
            else:
                value = child.value  # type: ignore[union-attr]
                lines.append(f"{self.name}{suffix} {_format_value(value)}")
        return lines


class MetricsRegistry:
    """Instrument families keyed by name, plus scrape-time collectors.

    Families are held in a :class:`repro.registry.Registry` (typed
    errors, duplicate rejection). Requesting an existing name with the
    *same* signature returns the existing family — module-level
    instrumentation must be import-idempotent — while a kind/label/
    bucket mismatch is a hard :class:`~repro.errors.ObsError`.

    *Collectors* bridge pull-style state (cache hit counts, queue
    depth, journal lag) into gauges: a registered callable runs at the
    top of every :meth:`render`/:meth:`collect`, reading live objects
    and ``set()``-ing gauges, so scrapes see current values without the
    hot path paying for continuous updates.
    """

    def __init__(self) -> None:
        self._families = Registry("metric", error=ObsError)
        self._collectors: list[Callable[[], None]] = []
        self._lock = threading.Lock()

    # ----------------------------- creation --------------------------- #
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        buckets: tuple[float, ...] | None = None,
    ) -> _Family:
        _check_name(name)
        label_names = tuple(labels)
        with self._lock:
            if name in self._families:
                family: _Family = self._families.get(name)
                if (
                    family.kind != kind
                    or family.label_names != label_names
                    or (kind == "histogram" and buckets is not None
                        and family.buckets != buckets)
                ):
                    raise ObsError(
                        f"metric {name!r} is already registered as a "
                        f"{family.kind} with labels {family.label_names}; "
                        f"cannot re-register as a {kind} with labels "
                        f"{label_names}"
                    )
                return family
            family = _Family(name, kind, help_text, label_names, buckets)
            self._families.register(name, family)
            return family

    def counter(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> "Counter | _Family":
        """Get-or-create a counter family; label-less returns the child."""
        family = self._family(name, "counter", help_text, labels)
        return family.default if not family.label_names else family

    def gauge(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> "Gauge | _Family":
        """Get-or-create a gauge family; label-less returns the child."""
        family = self._family(name, "gauge", help_text, labels)
        return family.default if not family.label_names else family

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> "Histogram | _Family":
        """Get-or-create a histogram family with fixed boundaries."""
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ObsError(
                f"histogram buckets must be strictly increasing, got {bounds}"
            )
        family = self._family(name, "histogram", help_text, labels, bounds)
        return family.default if not family.label_names else family

    # ---------------------------- collectors -------------------------- #
    def register_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector`` before every render (pull-style gauges)."""
        with self._lock:
            self._collectors.append(collector)

    def remove_collector(self, collector: Callable[[], None]) -> None:
        """Forget a collector (absent is a no-op; lifecycle-safe)."""
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    def collect(self) -> None:
        """Refresh pull-style gauges now (a failing collector is skipped).

        Collectors read live engine objects that may be mid-shutdown at
        scrape time; one dying collector must not take the whole
        ``/metrics`` endpoint down with it.
        """
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector()
            except Exception:  # noqa: BLE001 - scrape must survive
                pass

    # ------------------------------ reads ----------------------------- #
    def names(self) -> list[str]:
        """Registered family names, sorted."""
        return self._families.keys()

    def family(self, name: str) -> _Family:
        """The family registered under ``name`` (typed error if absent)."""
        return self._families.get(name)

    def render(self) -> str:
        """The registry as Prometheus text (collectors refreshed first)."""
        self.collect()
        lines: list[str] = []
        for name in self.names():
            lines.extend(self.family(name).render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict[str, dict[tuple[str, ...], float]]:
        """Scalar view: ``{name: {label values: value}}``.

        Histograms contribute ``name_sum`` and ``name_count`` entries —
        exactly what diff-based consumers (the ``profile=`` hook) need.
        """
        self.collect()
        out: dict[str, dict[tuple[str, ...], float]] = {}
        for name in self.names():
            family = self.family(name)
            if family.kind == "histogram":
                sums: dict[tuple[str, ...], float] = {}
                counts: dict[tuple[str, ...], float] = {}
                for values, child in family.children():
                    assert isinstance(child, Histogram)
                    _, total, count = child.snapshot()
                    sums[values] = total
                    counts[values] = float(count)
                out[f"{name}_sum"] = sums
                out[f"{name}_count"] = counts
            else:
                out[name] = {
                    values: child.value  # type: ignore[union-attr]
                    for values, child in family.children()
                }
        return out


# --------------------------------------------------------------------- #
# The read side: parse what a /metrics endpoint rendered.
# --------------------------------------------------------------------- #
def parse_prometheus(
    text: str,
) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Prometheus text -> ``{sample name: [(labels, value), ...]}``.

    Covers what :meth:`MetricsRegistry.render` emits (HELP/TYPE
    comments, escaped label values, ``+Inf``). Histogram series appear
    under their sample names (``*_bucket``, ``*_sum``, ``*_count``) —
    the consumer-side mirror of the flat exposition format.
    """
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, value = _parse_sample(line)
        samples.setdefault(name, []).append((labels, value))
    return samples


def _parse_sample(line: str) -> tuple[str, dict[str, str], float]:
    if "{" in line:
        name, _, rest = line.partition("{")
        label_text, _, value_text = rest.rpartition("}")
        labels = _parse_labels(label_text)
    else:
        parts = line.split()
        if len(parts) != 2:
            raise ObsError(f"unparseable metric sample line: {line!r}")
        name, value_text = parts
        labels = {}
    name = name.strip()
    value_text = value_text.strip()
    try:
        value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
    except ValueError as exc:
        raise ObsError(f"bad sample value in line {line!r}") from exc
    return name, labels, value


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise ObsError(f"label value must be quoted in {text!r}")
        j = eq + 2
        out: list[str] = []
        while j < len(text):
            ch = text[j]
            if ch == "\\" and j + 1 < len(text):
                nxt = text[j + 1]
                out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
                j += 2
                continue
            if ch == '"':
                break
            out.append(ch)
            j += 1
        labels[key] = "".join(out)
        i = j + 1
    return labels
