"""Fig. 1 / §I running example: mine the crime data's top pattern.

Benchmarks the full pipeline (beam search over 122 attributes, n = 1994,
plus the three KDE series) and saves the reproduced summary. The paper's
reference values: intention PctIlleg >= 0.39, coverage 20.5%, subgroup
mean 0.53, overall mean 0.24.
"""

from repro.experiments.crime_example import run_fig1


def bench_fig1_crime_example(benchmark, save_result):
    result = benchmark.pedantic(run_fig1, args=(0,), rounds=1, iterations=1)
    save_result("fig01_crime_example", result.format())
    assert "pct_illeg >=" in result.intention
    assert result.subgroup_mean > 1.7 * result.overall_mean
