"""Append-only JSONL write-ahead log with periodic sqlite compaction.

:class:`DurableLog` is the storage primitive under the job store: a
key→document table whose every mutation is first appended (and fsynced)
to a JSONL journal, then periodically *folded* into a sqlite table in
one transaction. The write path therefore costs one small sequential
append per mutation, while the read path on open costs one sqlite scan
plus a replay of the journal tail — the classic WAL trade.

Crash safety is by construction, not by fsync heroics:

- A mutation is durable once its journal line hits disk; a crash
  mid-append leaves at most one truncated trailing line, which replay
  detects and discards (everything before it is intact).
- Compaction commits the sqlite transaction *before* truncating the
  journal. A crash between the two replays the journal onto sqlite a
  second time — every operation is an idempotent upsert/delete, so the
  double application is harmless.

Documents are plain JSON dicts (no pickle — nothing on disk can execute
code on load), encoded with ``allow_nan=False`` so the journal stays
canonical JSON end to end.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from pathlib import Path

from repro.errors import EngineError

__all__ = ["DurableLog"]

#: Journal operations (anything else in a line is a corrupt record).
_OPS = ("put", "delete")


class DurableLog:
    """A durable ``key -> JSON document`` table (JSONL WAL + sqlite).

    Parameters
    ----------
    db_path / wal_path:
        Locations of the sqlite table and the JSONL journal. Parent
        directories are created.
    compact_every:
        Journal appends between automatic compactions (the journal also
        folds on every :meth:`open`, so it never grows unboundedly
        across restarts).
    fsync:
        Force every journal append to disk (default). Turning it off
        trades crash durability of the last few appends for speed —
        acceptable in tests, not on a production store.

    Thread-safe: every method takes an internal lock; the sqlite
    connection is only touched under it.
    """

    def __init__(
        self,
        db_path: str | Path,
        wal_path: str | Path,
        *,
        compact_every: int = 256,
        fsync: bool = True,
    ) -> None:
        if compact_every < 1:
            raise EngineError(
                f"compact_every must be >= 1, got {compact_every}"
            )
        self.db_path = Path(db_path)
        self.wal_path = Path(wal_path)
        self.compact_every = compact_every
        self.fsync = fsync
        self._lock = threading.Lock()
        self._data: dict[str, dict] = {}
        #: Journal operations not yet folded into sqlite.
        self._pending: list[dict] = []
        self._wal_file = None
        self._conn: sqlite3.Connection | None = None
        #: Diagnostics of the last open(): how the journal tail looked.
        self.replayed_ops = 0
        self.discarded_tail = False
        self._open()

    # ------------------------------------------------------------------ #
    # Open / recovery
    # ------------------------------------------------------------------ #
    def _open(self) -> None:
        self.db_path.parent.mkdir(parents=True, exist_ok=True)
        self.wal_path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.db_path), check_same_thread=False)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS records ("
            "key TEXT PRIMARY KEY, doc TEXT NOT NULL)"
        )
        self._conn.commit()
        for key, doc in self._conn.execute("SELECT key, doc FROM records"):
            self._data[key] = json.loads(doc)
        self._replay_journal()
        # Fold the surviving journal into sqlite right away: recovery
        # leaves a clean baseline (sqlite = full state, journal = empty),
        # and a crash loop cannot grow the journal without bound.
        if self._pending:
            self._compact_locked()
        self._wal_file = open(self.wal_path, "a", encoding="utf-8")

    def _replay_journal(self) -> None:
        """Apply journal lines to the in-memory table, tolerating a torn tail."""
        if not self.wal_path.exists():
            return
        ops: list[dict] = []
        with open(self.wal_path, "r", encoding="utf-8") as fh:
            for line in fh:
                if not line.endswith("\n"):
                    # A crash mid-append: the final line never finished.
                    self.discarded_tail = True
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    op = json.loads(line)
                except ValueError:
                    # A torn write that still ended in a newline (e.g.
                    # power loss with page tearing). Nothing after it
                    # can be trusted to be ordered correctly.
                    self.discarded_tail = True
                    break
                if not (isinstance(op, dict) and op.get("op") in _OPS):
                    self.discarded_tail = True
                    break
                ops.append(op)
        for op in ops:
            self._apply(op)
            self._pending.append(op)
        self.replayed_ops = len(ops)

    def _apply(self, op: dict) -> None:
        if op["op"] == "put":
            self._data[op["key"]] = op["doc"]
        else:
            self._data.pop(op["key"], None)

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def put(self, key: str, doc: dict) -> None:
        """Durably upsert one document under ``key``."""
        if not isinstance(doc, dict):
            raise EngineError(
                f"durable log stores JSON documents, got {type(doc).__name__}"
            )
        self._mutate({"op": "put", "key": str(key), "doc": doc})

    def delete(self, key: str) -> None:
        """Durably remove ``key`` (absent keys are a no-op tombstone)."""
        self._mutate({"op": "delete", "key": str(key)})

    def _mutate(self, op: dict) -> None:
        line = json.dumps(op, separators=(",", ":"), allow_nan=False)
        with self._lock:
            if self._wal_file is None:
                raise EngineError("durable log is closed")
            self._wal_file.write(line + "\n")
            self._wal_file.flush()
            if self.fsync:
                os.fsync(self._wal_file.fileno())
            self._apply(op)
            self._pending.append(op)
            if len(self._pending) >= self.compact_every:
                self._compact_locked()

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> dict | None:
        """The document under ``key``, or None."""
        with self._lock:
            doc = self._data.get(key)
        return json.loads(json.dumps(doc)) if doc is not None else None

    def snapshot(self) -> dict[str, dict]:
        """A deep copy of the whole table (callers may mutate freely)."""
        with self._lock:
            raw = json.dumps(self._data)
        return json.loads(raw)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    @property
    def pending_ops(self) -> int:
        """Journal operations not yet folded into sqlite."""
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------ #
    # Compaction / lifecycle
    # ------------------------------------------------------------------ #
    def compact(self) -> None:
        """Fold the journal into sqlite and truncate it."""
        with self._lock:
            self._compact_locked()

    def _compact_locked(self) -> None:
        if self._conn is None:
            raise EngineError("durable log is closed")
        if not self._pending:
            return
        with self._conn:  # one transaction; rolls back on error
            for op in self._pending:
                if op["op"] == "put":
                    self._conn.execute(
                        "INSERT INTO records (key, doc) VALUES (?, ?) "
                        "ON CONFLICT(key) DO UPDATE SET doc = excluded.doc",
                        (
                            op["key"],
                            json.dumps(
                                op["doc"], separators=(",", ":"), allow_nan=False
                            ),
                        ),
                    )
                else:
                    self._conn.execute(
                        "DELETE FROM records WHERE key = ?", (op["key"],)
                    )
        self._pending.clear()
        # The transaction is committed: truncating the journal is safe.
        # (A crash before this point replays it onto sqlite — idempotent.)
        if self._wal_file is not None:
            self._wal_file.truncate(0)
            self._wal_file.seek(0)
        else:
            open(self.wal_path, "w").close()

    def close(self) -> None:
        """Compact, then release the file handles (idempotent)."""
        with self._lock:
            if self._conn is not None and self._pending:
                self._compact_locked()
            if self._wal_file is not None:
                self._wal_file.close()
                self._wal_file = None
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "DurableLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
