"""Tests for the Bernoulli background model (binary-target extension)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.bernoulli import BernoulliBackgroundModel
from repro.model.patterns import LocationConstraint


@pytest.fixture()
def binary_targets(rng):
    probs = rng.uniform(0.1, 0.9, size=6)
    targets = (rng.random((80, 6)) < probs).astype(float)
    # Plant a subgroup where attributes 0/1 flip towards presence/absence.
    targets[:20, 0] = (rng.random(20) < 0.95).astype(float)
    targets[:20, 1] = (rng.random(20) < 0.05).astype(float)
    return targets


@pytest.fixture()
def model(binary_targets):
    return BernoulliBackgroundModel.from_targets(binary_targets)


class TestConstruction:
    def test_prior_is_empirical(self, binary_targets, model):
        np.testing.assert_allclose(
            model.prior, binary_targets.mean(axis=0), atol=1e-8
        )
        assert model.dim == 6
        assert model.n_blocks == 1

    def test_rejects_non_binary(self, rng):
        with pytest.raises(ModelError, match="binary"):
            BernoulliBackgroundModel.from_targets(rng.standard_normal((10, 2)))

    def test_rejects_bad_prior(self):
        with pytest.raises(ModelError, match="\\[0, 1\\]"):
            BernoulliBackgroundModel(5, np.array([0.5, 1.5]))

    def test_extreme_prior_clamped(self):
        model = BernoulliBackgroundModel(5, np.array([0.0, 1.0]))
        assert 0.0 < model.prior[0] < model.prior[1] < 1.0

    def test_point_probs_shape(self, model):
        assert model.point_probs().shape == (80, 6)


class TestLocationUpdate:
    def test_constraint_enforced_exactly(self, binary_targets, model):
        constraint = LocationConstraint.from_data(binary_targets, np.arange(20))
        model.assimilate(constraint)
        assert model.constraint_residual(constraint) < 1e-9

    def test_probabilities_stay_in_unit_interval(self, binary_targets, model):
        model.assimilate(LocationConstraint.from_data(binary_targets, np.arange(20)))
        probs = model.point_probs()
        assert probs.min() > 0.0
        assert probs.max() < 1.0

    def test_outside_points_untouched(self, binary_targets, model):
        before = model.point_probs()[50].copy()
        model.assimilate(LocationConstraint.from_data(binary_targets, np.arange(20)))
        np.testing.assert_array_equal(model.point_probs()[50], before)

    def test_blocks_split(self, binary_targets, model):
        model.assimilate(LocationConstraint.from_data(binary_targets, np.arange(20)))
        assert model.n_blocks == 2

    def test_extreme_observed_mean_handled(self, binary_targets, model):
        """A subgroup with all-ones in one attribute must not blow up."""
        targets = binary_targets.copy()
        targets[:10, 2] = 1.0
        constraint = LocationConstraint.from_data(targets, np.arange(10))
        model.assimilate(constraint)
        assert model.constraint_residual(constraint) < 1e-6

    def test_two_disjoint_constraints_hold(self, binary_targets, model):
        c1 = LocationConstraint.from_data(binary_targets, np.arange(20))
        c2 = LocationConstraint.from_data(binary_targets, np.arange(40, 60))
        model.assimilate(c1).assimilate(c2)
        assert model.constraint_residual(c1) < 1e-9
        assert model.constraint_residual(c2) < 1e-9

    def test_dimension_check(self, model):
        with pytest.raises(ModelError, match="dimension"):
            model.assimilate(LocationConstraint(np.arange(3), np.array([0.5])))


class TestInformationContent:
    def test_planted_subgroup_informative(self, binary_targets, model):
        idx = np.arange(20)
        observed = binary_targets[idx].mean(axis=0)
        random_idx = np.arange(40, 60)
        random_observed = binary_targets[random_idx].mean(axis=0)
        assert model.location_ic(idx, observed) > model.location_ic(
            random_idx, random_observed
        ) + 5.0

    def test_assimilation_kills_ic(self, binary_targets, model):
        idx = np.arange(20)
        observed = binary_targets[idx].mean(axis=0)
        before = model.location_ic(idx, observed)
        model.assimilate(LocationConstraint.from_data(binary_targets, idx))
        after = model.location_ic(idx, observed)
        assert after < before - 5.0

    def test_moments_match_poisson_binomial(self, binary_targets, model):
        idx = np.arange(30)
        mean, variance = model.subgroup_mean_moments(idx)
        probs = model.point_probs()[idx]
        np.testing.assert_allclose(mean, probs.mean(axis=0), atol=1e-12)
        np.testing.assert_allclose(
            variance, (probs * (1 - probs)).sum(axis=0) / 30**2, atol=1e-12
        )

    def test_ic_shape_check(self, model):
        with pytest.raises(ModelError, match="shape"):
            model.location_ic(np.arange(5), np.zeros(3))


class TestCopy:
    def test_copy_independent(self, binary_targets, model):
        clone = model.copy()
        model.assimilate(LocationConstraint.from_data(binary_targets, np.arange(20)))
        assert clone.n_blocks == 1
        assert model.n_blocks == 2

    def test_monte_carlo_agreement(self, rng):
        """The model's subgroup-mean moments match simulation."""
        model = BernoulliBackgroundModel(40, np.full(3, 0.3))
        mean, variance = model.subgroup_mean_moments(np.arange(40))
        draws = (rng.random((20000, 40, 3)) < 0.3).astype(float).mean(axis=1)
        np.testing.assert_allclose(draws.mean(axis=0), mean, atol=5e-3)
        np.testing.assert_allclose(draws.var(axis=0), variance, rtol=0.1)
