"""Tests for description length."""

import pytest

from repro.errors import ModelError
from repro.interest.dl import DLParams, description_length


class TestDLParams:
    def test_paper_defaults(self):
        params = DLParams()
        assert params.gamma == 0.1
        assert params.eta == 1.0

    def test_negative_gamma_rejected(self):
        with pytest.raises(ModelError):
            DLParams(gamma=-0.1)

    def test_all_zero_rejected(self):
        with pytest.raises(ModelError):
            DLParams(gamma=0.0, eta=0.0)


class TestDescriptionLength:
    def test_location_formula(self):
        # gamma |C| + eta.
        assert description_length(3) == pytest.approx(1.3)

    def test_spread_adds_one(self):
        assert description_length(3, kind="spread") == pytest.approx(2.3)

    def test_zero_conditions(self):
        assert description_length(0) == pytest.approx(1.0)

    def test_custom_params(self):
        params = DLParams(gamma=0.5, eta=2.0)
        assert description_length(2, params=params) == pytest.approx(3.0)

    def test_negative_count_rejected(self):
        with pytest.raises(ModelError):
            description_length(-1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError, match="kind"):
            description_length(1, kind="magic")

    def test_monotone_in_conditions(self):
        values = [description_length(c) for c in range(5)]
        assert values == sorted(values)
