"""Fig. 2: three iterations of two-step spread mining on synthetic data.

The paper's claim: the three planted subgroups are recovered in the first
three iterations, each with its most surprising variance direction.
"""

from repro.experiments.synthetic_exp import run_fig2


def bench_fig2_synthetic_iterations(benchmark, save_result):
    result = benchmark.pedantic(run_fig2, args=(0,), rounds=3, iterations=1)
    save_result("fig02_synthetic_iterations", result.format())
    assert {it.matched_cluster for it in result.iterations} == {1, 2, 3}
    assert all(it.jaccard_with_match > 0.9 for it in result.iterations)
