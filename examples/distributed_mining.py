"""Distributed mining on one machine: worker fleet + federated replicas.

Everything ``repro.dist`` adds, end to end on localhost:

1. two ``WorkerDaemon`` compute nodes (what ``sisd worker`` runs) and a
   ``DistExecutor`` fanning beam-search shards across them, checked
   bit-identical against a serial run — then one node is killed
   mid-fleet and the check is repeated;
2. two ``MiningServer`` replicas behind a ``MiningRouter`` (what
   ``sisd route`` runs): fingerprint-stable placement, tagged job ids,
   a merged job listing, and live SSE streaming through the router.

On real hardware the same code spreads across machines: start
``sisd worker --port 9000 --register http://router:8766`` on each
compute node, ``sisd serve`` replicas wherever the data lives, and
``sisd route --replica …`` as the single address clients use.
"""

import sys

from repro import MiningSpec, RemoteWorkspace, Workspace
from repro.datasets import make_synthetic
from repro.dist.executor import DistExecutor
from repro.dist.router import MiningRouter
from repro.dist.worker import WorkerDaemon
from repro.engine.executor import SerialExecutor
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery
from repro.server import MiningServer


def compute_tier() -> None:
    print("-- compute tier: worker daemons + DistExecutor --")
    workers = [WorkerDaemon(parallelism=2) for _ in range(2)]
    handles = [worker.run_in_thread() for worker in workers]
    print(f"worker fleet: {[worker.url for worker in workers]}")

    dataset = make_synthetic(0)
    config = SearchConfig(beam_width=12, max_depth=2, top_k=40)

    def search(executor):
        return SubgroupDiscovery(
            dataset, config=config, seed=0, executor=executor
        ).search_locations()

    serial = search(SerialExecutor())
    try:
        with DistExecutor([worker.url for worker in workers]) as executor:
            remote = search(executor)
            print(
                f"distributed search: {executor.stats['shards_remote']} shards "
                f"remote, contexts shipped {executor.stats['contexts_shipped']}"
            )
        identical = serial.best.description == remote.best.description and all(
            a.score.ic == b.score.ic for a, b in zip(serial.log, remote.log)
        )
        print(f"bit-identical to serial search: {identical}")

        # Kill one node; shards fail over and the answer must not move.
        handles[0].stop()
        print(f"killed {workers[0].url}; searching again on the survivor")
        with DistExecutor(
            [worker.url for worker in workers], timeout=2.0
        ) as executor:
            survivor = search(executor)
            print(
                f"failovers absorbed: {executor.stats['failovers']}, "
                f"still identical: "
                f"{survivor.best.description == serial.best.description}"
            )
    finally:
        for handle in handles[1:]:
            handle.stop()


def service_tier() -> None:
    print("\n-- service tier: replicas behind a consistent-hash router --")
    replicas = [
        MiningServer(port=0, backend="thread", max_workers=2).run_in_thread()
        for _ in range(2)
    ]
    router = MiningRouter(
        [handle.url for handle in replicas], check_interval=0.5
    )
    router_handle = router.run_in_thread()
    print(f"router at {router_handle.url} fronting 2 replicas")

    spec = MiningSpec.build(
        "synthetic", n_iterations=3, beam_width=12, max_depth=2, top_k=40
    )
    try:
        with RemoteWorkspace(router_handle.url, timeout=60.0) as remote:
            print("router health:", remote.health()["status"])

            print("streaming through the router:")
            for iteration in remote.stream(spec):
                print(f"  {iteration.index}. {iteration.location}")

            # Same spec, same fingerprint, same replica — the warm path
            # survives federation.
            first = remote.submit(spec)
            second = remote.submit(spec)
            same = first.rpartition("@")[2] == second.rpartition("@")[2]
            print(f"tagged ids: {first}, resubmit {second} "
                  f"(same replica: {same})")
            result = remote.result(first)

            listing = remote.jobs()
            print(f"merged listing across replicas: {sorted(listing)}")

            local = Workspace().mine(spec)
            identical = all(
                str(a.location) == str(b.location)
                and a.location.score.ic == b.location.score.ic
                for a, b in zip(local.iterations, result.iterations)
            )
            print(f"routed result bit-identical to local mining: {identical}")
    finally:
        router_handle.stop()
        for handle in replicas:
            handle.stop()
        print("router and replicas stopped")


def main() -> int:
    compute_tier()
    service_tier()
    return 0


if __name__ == "__main__":
    sys.exit(main())
