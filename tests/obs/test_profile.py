"""Profiling = a metrics diff: zero new measurement on the hot path."""

import pytest

from repro.obs import clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ProfileReport, profile_block


def _registry():
    registry = MetricsRegistry()
    steps = registry.counter("steps_total", "steps", labels=("outcome",))
    phases = registry.histogram(
        "sisd_beam_phase_seconds", "beam phases", labels=("phase",)
    )
    return registry, steps, phases


class TestDeltas:
    def test_only_moved_samples_appear(self):
        registry, steps, phases = _registry()
        steps.labels("mined").inc(5)  # pre-existing activity
        with profile_block(registry) as report:
            steps.labels("mined").inc(2)
            phases.labels("score").observe(0.5)
        deltas = report.deltas()
        assert deltas["steps_total"] == {("mined",): 2.0}
        assert deltas["sisd_beam_phase_seconds_sum"] == {("score",): 0.5}
        assert deltas["sisd_beam_phase_seconds_count"] == {("score",): 1.0}

    def test_idle_block_has_no_deltas(self):
        registry, steps, _ = _registry()
        steps.labels("mined").inc()
        with profile_block(registry) as report:
            pass
        assert report.deltas() == {}

    def test_wall_elapsed_reads_the_clock_seam(self):
        registry, _, _ = _registry()
        with clock.fixed(50.0) as advance:
            with profile_block(registry) as report:
                advance(1.25)
        assert report.elapsed == pytest.approx(1.25)


class TestPhaseSeconds:
    def test_sums_beam_and_step_phase_families(self):
        registry, _, phases = _registry()
        step_phases = registry.histogram(
            "sisd_step_phase_seconds", "step phases", labels=("phase",)
        )
        with profile_block(registry) as report:
            phases.labels("score").observe(0.5)
            phases.labels("score").observe(0.25)
            step_phases.labels("location").observe(1.0)
        assert report.phase_seconds() == pytest.approx(
            {"score": 0.75, "location": 1.0}
        )


class TestFormat:
    def test_folds_histograms_into_one_row(self):
        registry, steps, phases = _registry()
        with profile_block(registry) as report:
            steps.labels("mined").inc(3)
            phases.labels("score").observe(0.5)
        text = report.format()
        assert "profile:" in text
        assert "steps_total" in text
        assert "sisd_beam_phase_seconds" in text
        assert "x1" in text  # one observation folded into the _sum row
        assert "_count" not in text

    def test_idle_block_renders_a_placeholder(self):
        registry, _, _ = _registry()
        with profile_block(registry) as report:
            pass
        assert "(no instrumented activity)" in report.format()

    def test_str_matches_format(self):
        registry, steps, _ = _registry()
        with profile_block(registry) as report:
            steps.labels("mined").inc()
        assert str(report) == report.format()


class TestManualCapture:
    def test_start_stop_round(self):
        registry, steps, _ = _registry()
        report = ProfileReport(registry).start()
        steps.labels("replayed").inc()
        report.stop()
        assert report.deltas()["steps_total"] == {("replayed",): 1.0}


class TestWorkspaceHook:
    def test_profile_keeps_the_result_bit_identical(self):
        from repro.api import Workspace
        from repro.spec import MiningSpec

        spec = MiningSpec.build(
            "synthetic", n_iterations=1, beam_width=6, max_depth=2, top_k=10
        )
        workspace = Workspace()
        plain = workspace.mine(spec)
        assert workspace.last_profile is None
        profiled = workspace.mine(spec, profile=True)
        report = workspace.last_profile
        assert report is not None
        assert report.elapsed > 0.0
        assert "sisd_beam_phase_seconds" in report.format()
        assert len(plain.iterations) == len(profiled.iterations)
        for a, b in zip(plain.iterations, profiled.iterations):
            assert a.location.description == b.location.description
            assert a.location.score.ic == b.location.score.ic

    def test_profile_callable_receives_the_rendered_table(self):
        from repro.api import Workspace
        from repro.spec import MiningSpec

        spec = MiningSpec.build(
            "synthetic", n_iterations=1, beam_width=6, max_depth=2, top_k=10
        )
        seen: list[str] = []
        Workspace().mine(spec, profile=seen.append)
        assert len(seen) == 1
        assert "profile:" in seen[0]
