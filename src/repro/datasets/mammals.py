"""Synthetic stand-in for the European mammals / WorldClim dataset.

The paper's biogeography case study (§III-B, Figs. 4-6) uses presence/
absence records of 124 mammal species on a 2220-cell grid over Europe,
described by 67 climate indicators. Neither the Atlas of European Mammals
nor WorldClim is redistributable here, so this module builds a climate
*simulator* over a Europe-like lat/lon grid and populates it with species
whose niches are logistic responses to the simulated climate.

What must re-emerge (and is therefore planted):

- Fig. 6a: a top pattern ~ "mean temperature in March <= -1.68C" covering
  northern Europe plus the Alps, inside which boreal species (mountain
  hare, moose, grey red-backed vole, wood lemming) are surprisingly
  present and widespread temperate species (wood mouse) surprisingly
  absent — the Fig. 4/5 species ranking.
- Fig. 6b: a second pattern ~ "average monthly rainfall in August <=
  47.62mm" covering the Mediterranean south (Iberian hare present; stoat
  and bank vole, which prefer moist climates, absent).
- Fig. 6c: a third pattern ~ "rainfall in October <= 45.25mm and mean
  temperature of wettest quarter >= 16.32C" covering the continental
  east (summer-peaked rainfall, dry autumn).

The climate model: annual mean temperature falls with latitude and
elevation (an Alpine ridge and a Scandinavian range are planted);
seasonal amplitude grows eastward (continentality); the south has dry
summers, the east has summer-peaked rain and dry autumns, the west is
maritime. The 67 descriptors are 12 monthly temperatures, 12 monthly
rainfall totals, 12 monthly relative humidities, 12 monthly cloud-cover
fractions, 17 derived bioclim-style aggregates, elevation, and distance
to coast.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.errors import DataError
from repro.utils.rng import as_rng

#: Grid dimensions: 60 longitudes x 37 latitudes = 2220 cells, the paper's n.
N_LON = 60
N_LAT = 37
LON_RANGE = (-10.0, 30.0)
LAT_RANGE = (36.0, 71.0)

MONTHS = (
    "jan", "feb", "mar", "apr", "may", "jun",
    "jul", "aug", "sep", "oct", "nov", "dec",
)

#: Species highlighted in the paper's figures, with the niche archetype
#: that makes the corresponding experiment come out (see module docstring).
FOCAL_SPECIES = (
    ("apodemus_sylvaticus", "temperate"),       # wood mouse: widespread, absent in cold north
    ("lepus_timidus", "boreal"),                # mountain hare
    ("alces_alces", "boreal"),                  # moose
    ("clethrionomys_rufocanus", "strict_boreal"),  # grey red-backed vole
    ("myopus_schisticolor", "strict_boreal"),   # wood lemming
    ("mustela_erminea", "moist"),               # stoat: prefers moist climate
    ("clethrionomys_glareolus", "moist"),       # bank vole: prefers moist climate
    ("lepus_granatensis", "mediterranean"),     # Iberian hare: dry-hot south only
)

#: Mix of niche archetypes for the remaining (procedurally named) species.
#: Weighted toward the boreal/temperate axis so the cold-March pattern
#: carries the most information, as in the paper (Fig. 6a is found first).
_ARCHETYPE_CYCLE = (
    "temperate", "boreal", "mediterranean", "continental", "moist",
    "temperate", "strict_boreal", "boreal", "temperate", "continental",
    "moist", "generalist", "boreal", "temperate", "boreal",
)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def _grid() -> tuple[np.ndarray, np.ndarray]:
    """Cell-center coordinates, flattened in lon-major order."""
    lons = np.linspace(*LON_RANGE, N_LON)
    lats = np.linspace(*LAT_RANGE, N_LAT)
    lon_grid, lat_grid = np.meshgrid(lons, lats, indexing="ij")
    return lon_grid.ravel(), lat_grid.ravel()


def _elevation(lon: np.ndarray, lat: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Planted orography: an Alpine ridge, a Scandinavian range, hills."""
    alps = 2200.0 * np.exp(-(((lat - 46.5) / 2.0) ** 2 + ((lon - 10.0) / 5.0) ** 2))
    scandes = 1300.0 * np.exp(-(((lat - 63.5) / 4.5) ** 2 + ((lon - 13.0) / 4.0) ** 2))
    carpathians = 900.0 * np.exp(-(((lat - 47.5) / 1.8) ** 2 + ((lon - 24.0) / 4.0) ** 2))
    hills = 180.0 * np.abs(rng.standard_normal(lon.shape[0]))
    return alps + scandes + carpathians + hills


def _distance_to_coast(lon: np.ndarray, lat: np.ndarray) -> np.ndarray:
    """Crude coast proxy: distance (degrees) from the western/southern rim."""
    west = lon - LON_RANGE[0]
    south = lat - LAT_RANGE[0]
    north = LAT_RANGE[1] - lat
    return np.minimum.reduce([west, south, north]) + 0.4 * np.maximum(0.0, lon - 15.0)


def _monthly_temperature(
    lon: np.ndarray, lat: np.ndarray, elev: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """(n, 12) monthly mean temperatures in Celsius."""
    # Calibrated so the -1.68C March isotherm encloses ~20% of the grid
    # (Fennoscandia, the Baltic rim and the Alpine ridge): the paper's
    # Fig. 6a region, and aligned with the beam search's 1/5-percentile
    # split point so the pattern is expressible in one condition.
    annual_mean = 22.4 - 0.52 * (lat - LAT_RANGE[0]) - 6.5 * elev / 1000.0
    annual_mean = annual_mean + 0.6 * rng.standard_normal(lon.shape[0])
    continentality = 8.0 + 0.35 * (lon - LON_RANGE[0])
    month_index = np.arange(12)
    # Coldest in mid-January (index 0), warmest in mid-July (index 6);
    # March then sits at -0.5 of the seasonal amplitude, which puts the
    # paper's -1.68C March isotherm across Fennoscandia plus the Alps
    # (roughly a third of the grid), matching Fig. 6a's extension.
    season = -np.cos(2.0 * np.pi * month_index / 12.0)
    temps = annual_mean[:, None] + continentality[:, None] * season[None, :]
    temps += 0.4 * rng.standard_normal(temps.shape)
    return temps


def _monthly_rainfall(
    lon: np.ndarray, lat: np.ndarray, elev: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """(n, 12) monthly rainfall totals in mm, with planted regimes.

    - Maritime west: wet year-round, winter-peaked.
    - Mediterranean south (lat < 44): very dry July/August.
    - Continental east (lon > 16): summer-peaked rain, dry October.
    """
    n = lon.shape[0]
    month_index = np.arange(12)
    base = 62.0 + 22.0 * elev / 1000.0 + 0.9 * (LON_RANGE[1] - lon) * 0.5
    winter_peak = np.cos(2.0 * np.pi * (month_index - 0.5) / 12.0)  # high in winter
    summer_peak = -winter_peak

    southness = _sigmoid((44.0 - lat) / 1.2)   # ~1 in the Mediterranean belt
    eastness = _sigmoid((lon - 16.0) / 2.5)    # ~1 in the continental east
    maritime = np.clip(1.0 - southness - eastness, 0.0, 1.0)

    profile = (
        maritime[:, None] * (12.0 * winter_peak[None, :])
        + southness[:, None] * (34.0 * winter_peak[None, :] - 18.0)
        + eastness[:, None] * (20.0 * summer_peak[None, :])
    )
    rain = base[:, None] + profile
    # Dry October in the east: October is month index 9.
    rain[:, 9] -= 30.0 * eastness
    # Extra summer drought in the south (July=6, August=7).
    rain[:, 6] -= 18.0 * southness
    rain[:, 7] -= 18.0 * southness
    rain += 4.0 * rng.standard_normal(rain.shape)
    return np.clip(rain, 2.0, None)


def _quarter_aggregates(temps: np.ndarray, rain: np.ndarray) -> dict[str, np.ndarray]:
    """Bioclim-style aggregates over all 3-consecutive-month windows."""
    n = temps.shape[0]
    # Rolling 3-month windows with December wrap-around, matching bioclim.
    windows = [(m, (m + 1) % 12, (m + 2) % 12) for m in range(12)]
    temp_q = np.stack([temps[:, list(w)].mean(axis=1) for w in windows], axis=1)
    rain_q = np.stack([rain[:, list(w)].sum(axis=1) for w in windows], axis=1)

    wettest = np.argmax(rain_q, axis=1)
    driest = np.argmin(rain_q, axis=1)
    warmest = np.argmax(temp_q, axis=1)
    coldest = np.argmin(temp_q, axis=1)
    rows = np.arange(n)
    return {
        "annual_mean_temp": temps.mean(axis=1),
        "max_temp_warmest_month": temps.max(axis=1),
        "min_temp_coldest_month": temps.min(axis=1),
        "temp_annual_range": temps.max(axis=1) - temps.min(axis=1),
        "temp_seasonality": temps.std(axis=1),
        "mean_temp_wettest_quarter": temp_q[rows, wettest],
        "mean_temp_driest_quarter": temp_q[rows, driest],
        "mean_temp_warmest_quarter": temp_q[rows, warmest],
        "mean_temp_coldest_quarter": temp_q[rows, coldest],
        "annual_rain": rain.sum(axis=1),
        "rain_wettest_month": rain.max(axis=1),
        "rain_driest_month": rain.min(axis=1),
        "rain_seasonality": rain.std(axis=1) / np.maximum(rain.mean(axis=1), 1e-9),
        "rain_wettest_quarter": rain_q[rows, wettest],
        "rain_driest_quarter": rain_q[rows, driest],
        "rain_warmest_quarter": rain_q[rows, warmest],
        "rain_coldest_quarter": rain_q[rows, coldest],
    }


def _species_probability(
    archetype: str,
    climate: dict[str, np.ndarray],
    rng: np.random.Generator,
) -> np.ndarray:
    """Occurrence probability field for one species of a given archetype.

    Thresholds are jittered per species so the 124 targets are correlated
    but not duplicated; the sharpness of the logistic keeps ranges crisp
    enough for subgroup means to deviate strongly.
    """
    tmp_mar = climate["tmp_mar"]
    rain_aug = climate["rain_aug"]
    rain_oct = climate["rain_oct"]
    warm_wet = climate["mean_temp_wettest_quarter"]
    annual_temp = climate["annual_mean_temp"]

    if archetype == "boreal":
        cut = -1.7 + rng.normal(0.0, 1.2)
        p = _sigmoid(2.2 * (cut - tmp_mar))
    elif archetype == "strict_boreal":
        cut = -4.5 + rng.normal(0.0, 1.0)
        p = _sigmoid(2.5 * (cut - tmp_mar))
    elif archetype == "temperate":
        cut = -1.7 + rng.normal(0.0, 1.2)
        p = _sigmoid(2.2 * (tmp_mar - cut))
    elif archetype == "mediterranean":
        rain_cut = 42.0 + rng.normal(0.0, 4.0)
        temp_cut = 13.5 + rng.normal(0.0, 0.7)
        p = _sigmoid(0.22 * (rain_cut - rain_aug)) * _sigmoid(2.0 * (annual_temp - temp_cut))
    elif archetype == "moist":
        rain_cut = 50.0 + rng.normal(0.0, 4.0)
        p = _sigmoid(0.20 * (rain_aug - rain_cut))
    elif archetype == "continental":
        rain_cut = 46.0 + rng.normal(0.0, 4.0)
        warm_cut = 16.0 + rng.normal(0.0, 0.8)
        p = _sigmoid(0.18 * (rain_cut - rain_oct)) * _sigmoid(1.2 * (warm_wet - warm_cut))
    elif archetype == "generalist":
        level = rng.uniform(0.55, 0.9)
        p = np.full(tmp_mar.shape[0], level) * _sigmoid(0.8 * (annual_temp + 6.0))
    else:  # pragma: no cover - guarded by construction
        raise DataError(f"unknown species archetype {archetype!r}")
    return np.clip(p, 0.01, 0.99)


def make_mammals(
    seed: int | np.random.Generator = 0,
    *,
    n_species: int = 124,
) -> Dataset:
    """Generate the mammals stand-in: 2220 cells, 67 climate attrs, 124 species.

    Targets are 0/1 presence indicators (as floats, matching the paper's
    treatment of binary targets inside the Gaussian background model).
    Metadata carries ``lat``/``lon`` per cell for map rendering and the
    archetype of every species for ground-truth tests.
    """
    if n_species < len(FOCAL_SPECIES):
        raise ValueError(f"n_species must be >= {len(FOCAL_SPECIES)}")
    rng = as_rng(seed)
    lon, lat = _grid()
    elev = _elevation(lon, lat, rng)
    temps = _monthly_temperature(lon, lat, elev, rng)
    rain = _monthly_rainfall(lon, lat, elev, rng)
    humidity = np.clip(
        55.0 + 0.35 * (rain - 55.0) - 0.8 * (temps - 10.0) + 3.0 * rng.standard_normal(rain.shape),
        5.0, 100.0,
    )
    cloud = np.clip(
        0.45 + 0.004 * (rain - 55.0) + 0.04 * rng.standard_normal(rain.shape), 0.02, 0.98
    )

    climate: dict[str, np.ndarray] = {}
    for m, month in enumerate(MONTHS):
        climate[f"tmp_{month}"] = temps[:, m]
        climate[f"rain_{month}"] = rain[:, m]
        climate[f"humidity_{month}"] = humidity[:, m]
        climate[f"cloud_{month}"] = cloud[:, m]
    climate.update(_quarter_aggregates(temps, rain))
    climate["elevation"] = elev
    climate["dist_to_coast"] = _distance_to_coast(lon, lat)
    if len(climate) != 67:
        raise DataError(f"expected 67 climate attributes, built {len(climate)}")

    species_names = [name for name, _ in FOCAL_SPECIES]
    archetypes = [arch for _, arch in FOCAL_SPECIES]
    genus_pool = (
        "sorex", "microtus", "arvicola", "neomys", "crocidura", "sciurus",
        "glis", "eliomys", "sicista", "cricetus", "mesocricetus", "spalax",
    )
    for j in range(n_species - len(FOCAL_SPECIES)):
        genus = genus_pool[j % len(genus_pool)]
        species_names.append(f"{genus}_sp{j:03d}")
        archetypes.append(_ARCHETYPE_CYCLE[j % len(_ARCHETYPE_CYCLE)])

    presence = np.empty((lon.shape[0], n_species))
    for j, archetype in enumerate(archetypes):
        p = _species_probability(archetype, climate, rng)
        presence[:, j] = (rng.random(lon.shape[0]) < p).astype(float)

    columns = [
        Column(name, AttributeKind.NUMERIC, values) for name, values in climate.items()
    ]
    metadata = {
        "lat": lat,
        "lon": lon,
        "elevation": elev,
        "species_archetypes": np.array(archetypes, dtype=object),
        "grid_shape": (N_LON, N_LAT),
    }
    return Dataset("mammals", columns, presence, species_names, metadata)
