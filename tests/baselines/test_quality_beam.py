"""Tests for the baseline-quality beam search."""

import numpy as np
import pytest

from repro.baselines.beam import QualityBeamSearch
from repro.baselines.quality import MeanShiftQuality
from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.lang.refinement import RefinementOperator
from repro.search.config import SearchConfig


@pytest.fixture()
def planted(rng):
    n = 150
    targets = rng.standard_normal(n)
    flag = np.zeros(n)
    flag[:30] = 1.0
    targets[:30] += 3.0
    order = rng.permutation(n)
    columns = [
        Column("flag", AttributeKind.BINARY, flag[order]),
        Column("noise", AttributeKind.NUMERIC, rng.standard_normal(n)),
    ]
    return Dataset("planted", columns, targets[order], ["y"])


class TestQualityBeamSearch:
    def test_finds_planted_subgroup(self, planted):
        search = QualityBeamSearch(
            RefinementOperator(planted), MeanShiftQuality(planted.targets)
        )
        result = search.run()
        assert result.best is not None
        assert str(result.best.description) == "flag = '1'"

    def test_log_sorted(self, planted):
        search = QualityBeamSearch(
            RefinementOperator(planted), MeanShiftQuality(planted.targets)
        )
        result = search.run()
        qualities = [s.quality for s in result.log]
        assert qualities == sorted(qualities, reverse=True)

    def test_respects_coverage_limits(self, planted):
        config = SearchConfig(min_coverage=40)
        search = QualityBeamSearch(
            RefinementOperator(planted),
            MeanShiftQuality(planted.targets),
            config=config,
        )
        result = search.run()
        assert all(s.size >= 40 for s in result.log)

    def test_repeated_runs_identical(self, planted):
        """Objective measures are static: re-running finds the same best."""
        operator = RefinementOperator(planted)
        quality = MeanShiftQuality(planted.targets)
        first = QualityBeamSearch(operator, quality).run()
        second = QualityBeamSearch(operator, quality).run()
        assert first.best.description == second.best.description
        assert first.best.quality == pytest.approx(second.best.quality)
