"""Search settings, defaulting to the paper's §III configuration."""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Sequence

from repro.errors import SearchError


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of the location beam search (paper defaults).

    Attributes
    ----------
    beam_width:
        Number of descriptions kept per level ("the beam width is set to
        40").
    max_depth:
        Maximum number of conditions ("the search depth is four").
    top_k:
        Size of the result log ("the search logs the best 150
        subgroups").
    n_split_points:
        Thresholds per numeric attribute ("four split points, 1/5-4/5
        percentiles").
    split_strategy:
        ``percentile`` (paper), ``width`` or ``levels``.
    min_coverage:
        Smallest admissible subgroup size, in rows. The statistics of a
        singleton subgroup are degenerate, so the floor is 2.
    max_coverage_fraction:
        Largest admissible subgroup size as a fraction of the data; 1.0
        admits everything except the full data itself.
    time_budget_seconds:
        Optional wall-clock budget ("a maximum run time of 5 minutes");
        the search returns the best patterns found when it expires.
    attributes:
        Optional subset of description attributes to search over.
    """

    beam_width: int = 40
    max_depth: int = 4
    top_k: int = 150
    n_split_points: int = 4
    split_strategy: str = "percentile"
    min_coverage: int = 2
    max_coverage_fraction: float = 1.0
    time_budget_seconds: float | None = None
    attributes: Sequence[str] | None = None

    def to_dict(self) -> dict:
        """JSON-safe form; the single source of the field mapping.

        Job fingerprints and ``persist`` both go through here, so a new
        field is automatically part of both once added to the dataclass.
        """
        data = asdict(self)
        if self.attributes is not None:
            data["attributes"] = list(self.attributes)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SearchConfig":
        """Rebuild settings; absent keys keep the paper defaults."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SearchError(f"unknown SearchConfig keys: {sorted(unknown)}")
        kwargs = dict(data)
        if kwargs.get("attributes") is not None:
            kwargs["attributes"] = tuple(kwargs["attributes"])
        return cls(**kwargs)

    def __post_init__(self) -> None:
        if self.beam_width < 1:
            raise SearchError(f"beam_width must be >= 1, got {self.beam_width}")
        if self.max_depth < 1:
            raise SearchError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.top_k < 1:
            raise SearchError(f"top_k must be >= 1, got {self.top_k}")
        if self.min_coverage < 2:
            raise SearchError(
                f"min_coverage must be >= 2 (subgroup statistics need two rows), "
                f"got {self.min_coverage}"
            )
        if not 0.0 < self.max_coverage_fraction <= 1.0:
            raise SearchError(
                f"max_coverage_fraction must be in (0, 1], got {self.max_coverage_fraction}"
            )
