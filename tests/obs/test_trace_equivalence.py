"""Observability must be invisible in the results, visible in the trace.

Two acceptance bars from the observability PR:

- **Bit-identical with tracing on.** Activating a trace context around a
  run changes zero bytes of the mined result, on every backend —
  serial, process pool, shared memory, and distributed.
- **One job, one tree.** A service submission routed through a live
  remote worker produces a single trace whose span tree covers
  submit → schedule → engine phases → shard → worker.shard.
"""

import numpy as np
import pytest

from repro.engine.jobs import MiningJob, run_job, run_job_with_workers
from repro.engine.service import MiningService
from repro.obs.trace import TRACER, activate
from repro.search.config import SearchConfig

#: Small but non-trivial spec: beam phases and both step kinds fire.
FAST = SearchConfig(beam_width=6, max_depth=2, top_k=10)


def _job(**overrides) -> MiningJob:
    settings = dict(
        dataset="synthetic", config=FAST, kind="spread", n_iterations=1
    )
    settings.update(overrides)
    return MiningJob(**settings)


def assert_results_identical(ours, theirs):
    """Byte-level equality of two JobResults (exact float equality)."""
    assert len(ours.iterations) == len(theirs.iterations)
    for a, b in zip(ours.iterations, theirs.iterations):
        assert a.index == b.index
        assert a.location.description == b.location.description
        assert np.array_equal(a.location.indices, b.location.indices)
        assert a.location.score.ic == b.location.score.ic
        assert a.location.score.dl == b.location.score.dl
        assert (a.spread is None) == (b.spread is None)
        if a.spread is not None:
            assert np.array_equal(a.spread.direction, b.spread.direction)
            assert a.spread.score.ic == b.spread.score.ic


@pytest.fixture(scope="module")
def untraced_reference():
    """The job mined once with no trace context active."""
    assert TRACER is not None
    return run_job(_job())


class TestTracingOnBitIdentical:
    def test_serial(self, untraced_reference):
        with TRACER.span("test-root") as root:
            traced = run_job(_job())
        assert_results_identical(untraced_reference, traced)
        # ...and the trace actually captured the engine's phase spans.
        names = {span.name for span in TRACER.finished(root.trace_id)}
        assert {"candidate_gen", "score", "merge", "prune"} <= names

    def test_process_pool(self, untraced_reference):
        root = TRACER.start("test-root")
        traced = run_job_with_workers(_job(), 2, trace=root.context)
        TRACER.finish(root)
        assert_results_identical(untraced_reference, traced)

    def test_shared_memory(self, untraced_reference):
        root = TRACER.start("test-root")
        traced = run_job_with_workers(
            _job(), 2, shared_memory=True, trace=root.context
        )
        TRACER.finish(root)
        assert_results_identical(untraced_reference, traced)

    def test_dist(self, untraced_reference, worker_url):
        root = TRACER.start("test-root")
        traced = run_job_with_workers(
            _job(), None, trace=root.context, dist_workers=[worker_url]
        )
        TRACER.finish(root)
        assert_results_identical(untraced_reference, traced)
        # The in-thread daemon records into the same process-wide
        # tracer, so the remote side of every shard is visible here.
        names = {span.name for span in TRACER.finished(root.trace_id)}
        assert "shard" in names
        assert "worker.shard" in names

    def test_fingerprint_ignores_the_active_trace(self):
        bare = _job().fingerprint()
        with TRACER.span("test-root"):
            assert _job().fingerprint() == bare


class TestOneJobOneTrace:
    def test_service_submission_spans_submit_to_remote_worker(
        self, untraced_reference, worker_url
    ):
        # The unique name keeps this test's root span distinguishable
        # from every other service submission in the pytest process
        # (the tracer is process-wide; job ids restart per service).
        job = _job(name="obs-trace-coherence")
        with MiningService(backend="thread", max_workers=1) as service:
            job_id = service.submit(job, dist_workers=[worker_url])
            result = service.result(job_id, timeout=120)
        assert_results_identical(untraced_reference, result)

        roots = [
            span
            for span in TRACER.finished()
            if span.name == "submit"
            and span.tags.get("job") == job.name
            and span.tags.get("job_id") == job_id
        ]
        assert len(roots) == 1, "exactly one root span per submission"
        root = roots[0]
        spans = TRACER.finished(root.trace_id)
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)

        # The tree covers every tier the job crossed.
        for name in (
            "submit",
            "schedule",
            "candidate_gen",
            "score",
            "merge",
            "prune",
            "step.location",
            "step.spread",
            "shard",
            "worker.shard",
        ):
            assert name in by_name, f"missing span {name!r} in the trace"

        # Everything shares the root's trace id by construction of
        # finished(trace_id); now check the parent edges.
        assert root.parent_id is None
        (schedule,) = by_name["schedule"]
        assert schedule.parent_id == root.span_id
        shard_ids = {span.span_id for span in by_name["shard"]}
        for span in by_name["shard"]:
            assert span.parent_id == root.span_id
        for span in by_name["worker.shard"]:
            assert span.parent_id in shard_ids

    def test_untraced_jobs_stay_untraced(self):
        """Running outside any context records no orphan phase spans."""
        before = len(TRACER.finished())
        run_job(_job(seed=3))
        new = TRACER.finished()[before:]
        assert [span.name for span in new] == []
