"""Distributed-tier fixtures: in-thread worker daemons on real sockets.

The daemons are real HTTP servers on ephemeral localhost ports — the
tests exercise the actual wire path (pickle over HTTP), not an in-memory
stand-in. ``distfns`` (module-level shard functions) is made importable
here because pickled functions travel by reference.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.dist.worker import WorkerDaemon  # noqa: E402


@pytest.fixture(scope="module")
def worker_pair():
    """Two live worker daemons; yields their base URLs."""
    first = WorkerDaemon(parallelism=2)
    second = WorkerDaemon(parallelism=2)
    handles = [first.run_in_thread(), second.run_in_thread()]
    yield (first.url, second.url)
    for handle in handles:
        handle.stop()
