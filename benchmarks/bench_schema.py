"""The shared envelope of every ``BENCH_*.json`` perf artifact.

The three tracked benchmark files (engine_parallel, server, dist) are
compared across commits, so each needs to say *which* commit and *when*
it was measured, in one agreed shape. :func:`envelope` stamps a result
document with that header; :mod:`bench_report` merges the stamped files
into one cross-tier report and refuses mixed schema versions.
"""

from __future__ import annotations

import subprocess
from datetime import datetime, timezone
from pathlib import Path

#: Version of the shared benchmark-artifact shape; bump on breaking
#: changes to the envelope keys (not to a bench's own payload).
BENCH_SCHEMA = 1

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The tracked perf artifacts, in report order.
BENCH_FILES = (
    "BENCH_engine_parallel.json",
    "BENCH_server.json",
    "BENCH_dist.json",
)


def git_rev() -> str | None:
    """Short hash of the measured checkout; ``None`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def envelope(document: dict) -> dict:
    """Stamp one benchmark result document with the shared header.

    The header keys lead so a human diffing two artifacts sees the
    provenance first; the bench's own payload follows untouched.
    """
    return {
        "schema_version": BENCH_SCHEMA,
        "git_rev": git_rev(),
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        **document,
    }
