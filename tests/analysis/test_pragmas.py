"""Inline ``# sisd: ignore[...]`` pragmas silence findings, audited."""

from __future__ import annotations

from lintfns import rule_ids


class TestPragmas:
    def test_same_line_pragma_suppresses(self, lint_snippet):
        report = lint_snippet(
            "repro/engine/cache.py",
            """
            import time

            def stamp():
                return time.time()  # sisd: ignore[DET001] ttl probe only
            """,
        )
        assert report.clean
        assert report.suppressed == 1

    def test_comment_line_above_suppresses(self, lint_snippet):
        report = lint_snippet(
            "repro/engine/cache.py",
            """
            import time

            def stamp():
                # sisd: ignore[DET001] ttl probe only
                return time.time()
            """,
        )
        assert report.clean
        assert report.suppressed == 1

    def test_pragma_lists_multiple_rules(self, lint_snippet):
        report = lint_snippet(
            "repro/engine/cache.py",
            """
            import random
            import time

            def stamp():
                # sisd: ignore[DET001, DET002]
                return time.time() + random.random()
            """,
        )
        assert report.clean
        assert report.suppressed == 2

    def test_star_pragma_silences_every_rule(self, lint_snippet):
        report = lint_snippet(
            "repro/engine/cache.py",
            """
            import time

            def stamp():
                return time.time()  # sisd: ignore[*] exempt fixture
            """,
        )
        assert report.clean
        assert report.suppressed == 1

    def test_wrong_rule_id_does_not_suppress(self, lint_snippet):
        report = lint_snippet(
            "repro/engine/cache.py",
            """
            import time

            def stamp():
                return time.time()  # sisd: ignore[DET002]
            """,
        )
        assert rule_ids(report) == ["DET001"]
        assert report.suppressed == 0

    def test_pragma_only_covers_its_own_line(self, lint_snippet):
        report = lint_snippet(
            "repro/engine/cache.py",
            """
            import time

            def stamp():
                first = time.time()  # sisd: ignore[DET001]
                return first, time.time()
            """,
        )
        assert rule_ids(report) == ["DET001"]
        assert report.suppressed == 1
