"""Name-based access to the paper's datasets.

``load_dataset("socio", seed=7)`` is what the CLI, the experiments and the
benchmarks use, so that every entry point names datasets the same way.
The names resolve against :data:`repro.registry.DATASETS` — the same
registry a :class:`~repro.spec.MiningSpec` uses — so registering a new
dataset factory there makes it available everywhere at once.
"""

from __future__ import annotations

from repro.datasets.schema import Dataset
from repro.registry import DATASETS


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`, sorted."""
    return DATASETS.keys()


def load_dataset(name: str, seed: int = 0, **kwargs) -> Dataset:
    """Generate the named dataset with the given seed.

    Extra keyword arguments are forwarded to the generator (e.g.
    ``flip_probability`` for ``synthetic``). Unknown names raise a
    :class:`~repro.errors.DataError` listing the registered datasets.
    """
    return DATASETS.get(name)(seed, **kwargs)
