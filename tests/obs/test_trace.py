"""Tracer contract: spans, explicit propagation, and the wire form.

Tests use private :class:`Tracer` instances (the process-wide ``TRACER``
belongs to the instrumented tiers); the thread-local ``activate`` /
``current`` pair is global by design and restored by every test.
"""

import threading

import pytest

from repro.errors import ObsError
from repro.obs import clock
from repro.obs.trace import Span, TraceContext, Tracer, activate, current


class TestSpanLifecycle:
    def test_start_opens_finish_retains(self):
        tracer = Tracer()
        span = tracer.start("work")
        assert span.ended is None
        assert tracer.finished() == []
        tracer.finish(span)
        assert tracer.finished() == [span]
        assert span.ended is not None

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.finish(tracer.start("work"))
        first_end = span.ended
        tracer.finish(span)
        assert span.ended == first_end
        assert len(tracer.finished()) == 1

    def test_duration_reads_the_clock_seam(self):
        tracer = Tracer()
        with clock.fixed(10.0) as advance:
            span = tracer.start("work")
            advance(1.5)
            tracer.finish(span)
        assert span.duration == pytest.approx(1.5)
        assert tracer.start("open").duration == 0.0

    def test_root_span_starts_a_fresh_trace(self):
        tracer = Tracer()
        a, b = tracer.start("a"), tracer.start("b")
        assert a.parent_id is None
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_child_inherits_trace_and_parents_under_sender(self):
        tracer = Tracer()
        parent = tracer.start("parent")
        child = tracer.start("child", parent=parent.context)
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_tags_stringify(self):
        span = Tracer().start("work").tag("items", 42).tag("path", "remote")
        assert span.tags == {"items": "42", "path": "remote"}


class TestSpanContextManager:
    def test_activates_its_context_for_the_block(self):
        tracer = Tracer()
        assert current() is None
        with tracer.span("outer") as outer:
            assert current() == outer.context
            with tracer.span("inner", parent=current()) as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert current() is None
        assert [span.name for span in tracer.finished()] == ["inner", "outer"]

    def test_activate_ctx_false_leaves_the_thread_alone(self):
        tracer = Tracer()
        with tracer.span("quiet", activate_ctx=False):
            assert current() is None

    def test_finishes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("body failed")
        (span,) = tracer.finished()
        assert span.name == "doomed"
        assert span.ended is not None


class TestRecord:
    def test_none_parent_is_a_no_op(self):
        tracer = Tracer()
        assert tracer.record("phase", 1.0, 2.0, None) is None
        assert tracer.finished() == []

    def test_retains_the_measured_interval(self):
        tracer = Tracer()
        root = tracer.start("root")
        span = tracer.record(
            "phase", 5.0, 7.5, root.context, tags={"items": 3}
        )
        assert span.started == 5.0 and span.ended == 7.5
        assert span.duration == 2.5
        assert span.trace_id == root.trace_id
        assert span.parent_id == root.span_id
        assert span.tags == {"items": "3"}
        assert tracer.finished() == [span]


class TestWireForm:
    def test_round_trip(self):
        ctx = TraceContext("abc123", "def456")
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    @pytest.mark.parametrize(
        "document",
        [
            None,
            "not-a-dict",
            42,
            {},
            {"trace_id": "abc"},
            {"span_id": "abc"},
            {"trace_id": 1, "span_id": "abc"},
            {"trace_id": "abc", "span_id": None},
        ],
    )
    def test_malformed_envelopes_decode_to_none(self, document):
        assert TraceContext.from_wire(document) is None


class TestReads:
    def test_finished_filters_by_trace(self):
        tracer = Tracer()
        a = tracer.finish(tracer.start("a"))
        tracer.finish(tracer.start("b"))
        assert tracer.finished(a.trace_id) == [a]

    def test_tree_groups_by_parent(self):
        tracer = Tracer()
        root = tracer.start("root")
        child = tracer.finish(tracer.start("child", parent=root.context))
        grandchild = tracer.finish(
            tracer.start("grandchild", parent=child.context)
        )
        tracer.finish(root)
        tree = tracer.tree(root.trace_id)
        assert tree[None] == [root]
        assert tree[root.span_id] == [child]
        assert tree[child.span_id] == [grandchild]

    def test_clear_drops_everything(self):
        tracer = Tracer()
        tracer.finish(tracer.start("a"))
        tracer.clear()
        assert tracer.finished() == []


class TestRetention:
    def test_oldest_spans_drop_silently(self):
        tracer = Tracer(retention=3)
        spans = [tracer.finish(tracer.start(f"s{i}")) for i in range(5)]
        assert tracer.finished() == spans[2:]

    def test_retention_must_be_positive(self):
        with pytest.raises(ObsError):
            Tracer(retention=0)


class TestActivation:
    def test_nesting_restores_the_previous_context(self):
        outer = TraceContext("t", "outer")
        inner = TraceContext("t", "inner")
        with activate(outer):
            with activate(inner):
                assert current() == inner
            assert current() == outer
        assert current() is None

    def test_context_is_thread_local(self):
        seen = {}

        def probe():
            seen["other"] = current()

        with activate(TraceContext("t", "s")):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other"] is None
