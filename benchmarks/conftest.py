"""Benchmark fixtures.

Every bench reproduces one of the paper's tables/figures, times its core
computation with pytest-benchmark, and saves the reproduced rows to
``benchmarks/results/<name>.txt`` so the artifacts survive the run (the
pytest-benchmark table only shows timings). Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    """Persist a reproduced table/figure to benchmarks/results/."""

    def _save(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save
