"""Executor backends: the *how* of parallel mining (engine layer).

The search algorithms never talk to ``concurrent.futures`` directly;
they describe their fan-out as ``executor.session(context)`` followed by
``session.map(fn, items)`` and merge the ordered results themselves.
Two backends implement that contract:

- :class:`SerialExecutor` runs everything inline, in order — the
  reference semantics every other backend must reproduce bit-for-bit.
- :class:`ProcessExecutor` runs a ``concurrent.futures`` process pool.
  The (typically large) context — an IC scorer, a spread objective — is
  shipped to each worker exactly once per session via the pool
  initializer, so per-item payloads stay small.

Determinism contract: ``session.map`` preserves item order, items are
sharded by the *caller* independently of the worker count, and ``fn``
must be a pure function of ``(context, item)``. Under those rules a
parallel run returns exactly the serial result regardless of scheduling.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from repro.errors import EngineError

#: Pool implementations selectable via :func:`resolve_pool` (and hence
#: ``MiningService(backend=...)``).
BACKENDS = ("process", "thread", "serial")

#: Context installed in each pool worker by :func:`_init_worker`.
_WORKER_CONTEXT: Any = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = pickle.loads(payload)


def _call_in_context(fn: Callable[[Any, Any], Any], item: Any) -> Any:
    return fn(_WORKER_CONTEXT, item)


@runtime_checkable
class ExecutorSession(Protocol):
    """One fan-out scope sharing a single context (e.g. one beam run)."""

    def map(self, fn: Callable[[Any, Any], Any], items: Iterable[Any]) -> list:
        """``[fn(context, item) for item in items]``, order-preserving."""
        ...

    def __enter__(self) -> "ExecutorSession": ...

    def __exit__(self, *exc_info) -> None: ...


@runtime_checkable
class Executor(Protocol):
    """The injection point the search algorithms and job runner share."""

    parallelism: int

    def session(self, context: Any = None) -> ExecutorSession:
        """Open a fan-out scope whose tasks all see ``context``."""
        ...

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list:
        """Context-free ordered map, for independent coarse tasks (jobs)."""
        ...


class _SerialSession:
    def __init__(self, context: Any) -> None:
        self._context = context

    def map(self, fn, items) -> list:
        return [fn(self._context, item) for item in items]

    def __enter__(self) -> "_SerialSession":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


class SerialExecutor:
    """In-process, in-order execution: the reference backend."""

    parallelism = 1

    def session(self, context: Any = None) -> _SerialSession:
        """Open an inline session; ``map`` calls ``fn(context, item)``."""
        return _SerialSession(context)

    def map(self, fn, items) -> list:
        """``[fn(item) for item in items]``."""
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class _ProcessSession:
    def __init__(self, pool: ProcessPoolExecutor) -> None:
        self._pool = pool

    def map(self, fn, items) -> list:
        return list(self._pool.map(partial(_call_in_context, fn), list(items)))

    def __enter__(self) -> "_ProcessSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self._pool.shutdown(wait=True)


class ProcessExecutor:
    """Fan-out over a ``concurrent.futures`` process pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine's CPU count.
    start_method:
        ``multiprocessing`` start method (``fork``/``spawn``/
        ``forkserver``); ``None`` uses the platform default.

    Functions passed to :meth:`map`/``session().map`` must be importable
    module-level callables and all payloads must pickle — the standard
    ``concurrent.futures`` rules.
    """

    def __init__(
        self, max_workers: int | None = None, *, start_method: str | None = None
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise EngineError(f"max_workers must be >= 1, got {max_workers}")
        self.parallelism = max_workers
        self._mp_context = (
            multiprocessing.get_context(start_method) if start_method else None
        )

    def _pool(self, context: Any) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.parallelism,
            mp_context=self._mp_context,
            initializer=_init_worker,
            initargs=(pickle.dumps(context),),
        )

    def session(self, context: Any = None) -> _ProcessSession:
        """Open a pool whose workers all hold ``context``; close via with."""
        return _ProcessSession(self._pool(context))

    def map(self, fn, items) -> list:
        """Ordered context-free map over a fresh pool."""
        with ProcessPoolExecutor(
            max_workers=self.parallelism, mp_context=self._mp_context
        ) as pool:
            return list(pool.map(fn, list(items)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(max_workers={self.parallelism})"


def normalize_workers(workers: int | None) -> int:
    """Validate a worker count; ``None`` and ``0`` normalize to 1 (serial).

    The single code path every entry point (CLI ``--workers``, the job
    runner, the service pool) funnels worker counts through, so the edge
    cases behave identically everywhere: ``None``/``0``/``1`` mean
    serial and a negative count is an explicit :class:`EngineError`
    rather than silently serial.
    """
    if workers is None:
        return 1
    count = int(workers)
    if count < 0:
        raise EngineError(f"worker count must be >= 0, got {count}")
    return count or 1


def resolve_executor(
    workers: int | None, *, start_method: str | None = None
) -> Executor:
    """Map a ``--workers`` count to a backend.

    ``None``, ``0`` and ``1`` mean serial; anything larger gets a process
    pool of that size; negative counts raise.
    """
    count = normalize_workers(workers)
    if count <= 1:
        return SerialExecutor()
    return ProcessExecutor(count, start_method=start_method)


def resolve_pool(backend: str, max_workers: int | None):
    """Map a service backend name + worker count to a futures pool.

    Returns a ``concurrent.futures`` pool for ``"process"``/``"thread"``
    and ``None`` for ``"serial"`` (execute inline at submit time).
    Shares :func:`normalize_workers`'s edge-case handling with
    :func:`resolve_executor`, so the CLI and the service resolve worker
    counts through one code path.
    """
    if backend not in BACKENDS:
        raise EngineError(f"backend must be one of {BACKENDS}, got {backend!r}")
    count = normalize_workers(max_workers)
    if backend == "process":
        return ProcessPoolExecutor(max_workers=count)
    if backend == "thread":
        return ThreadPoolExecutor(max_workers=count)
    return None
