"""German socio-economics case study (§III-C, Figs. 7-8).

Reproduces the paper's analysis: the East-Germany pattern (few children,
Left party strong), its per-party surprisals with confidence intervals,
and the 2-sparse spread direction showing CDU and SPD battling for the
same voters (weight vector ~(0.57, 0.82) with far less variance than
expected).

Run with::

    python examples/socio_case_study.py
"""

import numpy as np

from repro import MiningSpec, attribute_surprisals, build_miner, load_dataset
from repro.report.ascii import bar_chart, render_series
from repro.report.series import cdf_series, normal_cdf_series


def main() -> None:
    dataset = load_dataset("socio", seed=0)
    miner = build_miner(MiningSpec.build("socio"))

    location = miner.find_location()
    print(f"pattern   : {location.description}")
    print(f"districts : {location.size} of {dataset.n_rows}")
    region = np.asarray(dataset.metadata["region"])
    mask = np.zeros(dataset.n_rows, dtype=bool)
    mask[location.indices] = True
    print(f"east share: {(region[mask] == 'east').mean():.0%}")

    print()
    print("Fig. 8a - how surprising is each party's vote share? (z-scores)")
    records = attribute_surprisals(
        miner.model, location.indices, location.mean, names=dataset.target_names
    )
    print(bar_chart([r.name for r in records], [r.z for r in records], width=44))

    miner.assimilate(location)
    spread = miner.find_spread_for(location, sparsity=2)
    expected = miner.model.expected_spread(
        location.indices, spread.direction, spread.center
    )
    involved = [
        dataset.target_names[j]
        for j in np.flatnonzero(np.abs(spread.direction) > 1e-12)
    ]
    weights = spread.direction[np.abs(spread.direction) > 1e-12]
    print()
    print("Fig. 8b - most surprising 2-sparse spread direction:")
    print(f"  w = {weights[0]:+.4f} * {involved[0]}  {weights[1]:+.4f} * {involved[1]}")
    print(f"  (paper: (0.5704, 0.8214) on (CDU, SPD))")
    print(f"  variance along w: observed {spread.variance:.2f} vs expected "
          f"{expected:.2f} - these parties move in lockstep (anti-correlated).")

    projections = dataset.targets[location.indices] @ spread.direction
    sd = float(np.sqrt(expected))
    grid = np.linspace(projections.mean() - 3 * sd, projections.mean() + 3 * sd, 96)
    _, model_cdf = normal_cdf_series(float(projections.mean()), sd, grid)
    _, data_cdf = cdf_series(projections, grid=grid)
    print()
    print("Fig. 8c - CDF of the projected subgroup vs the updated model:")
    print(render_series(grid, {"model": model_cdf, "data": data_cdf},
                        width=72, height=10))


if __name__ == "__main__":
    main()
