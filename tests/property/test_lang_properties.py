"""Property-based tests of the description language."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.lang.conditions import EqualsCondition, NumericCondition
from repro.lang.description import Description

attributes = st.sampled_from(["x", "y", "z"])
ops = st.sampled_from(["<=", ">="])
thresholds = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)

numeric_conditions = st.builds(NumericCondition, attributes, ops, thresholds)
binary_conditions = st.builds(
    EqualsCondition, st.sampled_from(["b1", "b2"]), st.sampled_from([0.0, 1.0])
)
conditions = st.one_of(numeric_conditions, binary_conditions)
descriptions = st.lists(conditions, max_size=6).map(tuple).map(Description)


def make_dataset(seed=0):
    rng = np.random.default_rng(seed)
    n = 64
    columns = [
        Column("x", AttributeKind.NUMERIC, rng.uniform(-5, 5, n)),
        Column("y", AttributeKind.NUMERIC, rng.uniform(-5, 5, n)),
        Column("z", AttributeKind.NUMERIC, rng.uniform(-5, 5, n)),
        Column("b1", AttributeKind.BINARY, rng.integers(0, 2, n).astype(float)),
        Column("b2", AttributeKind.BINARY, rng.integers(0, 2, n).astype(float)),
    ]
    return Dataset("prop", columns, rng.standard_normal((n, 1)), ["t"])


DATASET = make_dataset()


class TestCanonicalizationProperties:
    @given(description=descriptions)
    @settings(max_examples=200, deadline=None)
    def test_idempotent(self, description):
        once = description.canonical()
        assert once.canonical() == once

    @given(description=descriptions)
    @settings(max_examples=200, deadline=None)
    def test_extension_preserved(self, description):
        np.testing.assert_array_equal(
            description.matches(DATASET), description.canonical().matches(DATASET)
        )

    @given(description=descriptions)
    @settings(max_examples=200, deadline=None)
    def test_never_longer(self, description):
        assert len(description.canonical()) <= len(description)

    @given(description=descriptions)
    @settings(max_examples=200, deadline=None)
    def test_order_insensitive(self, description):
        reversed_description = Description(tuple(reversed(description.conditions)))
        assert description.canonical() == reversed_description.canonical()

    @given(description=descriptions, extra=conditions)
    @settings(max_examples=200, deadline=None)
    def test_conjunction_monotone(self, description, extra):
        """Adding a condition never grows the extension."""
        bigger = description.with_condition(extra)
        base = description.matches(DATASET)
        refined = bigger.matches(DATASET)
        assert not np.any(refined & ~base)

    @given(description=descriptions)
    @settings(max_examples=200, deadline=None)
    def test_contradictory_implies_empty(self, description):
        if description.is_contradictory():
            assert not description.matches(DATASET).any()
