"""Engine-level caching: stable fingerprints, dataset and belief caches.

A parameter sweep mines one dataset under many configs, and the service
deduplicates repeated job submissions; both reuse points key their
:class:`~repro.utils.cache.LRUCache` (re-exported here) by
:func:`fingerprint` digests of the JSON-canonical spec, so equal specs
hit regardless of dict ordering or tuple-vs-list spelling.

The paper's mining loop is *iterative* — each shown pattern is
assimilated into the background model, so consecutive sessions over the
same data share a prefix of belief state. :class:`BeliefCache` exploits
that: it fingerprints every mining iteration as a chain hash of
(dataset content, search configuration, assimilated-constraint
sequence, RNG state) and stores the iteration's outcome, so a warm
session replays the shared prefix from the cache — bit-identically —
and only pays for the first genuinely new iteration onward.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import threading
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import EngineError
from repro.utils.cache import CacheStats, LRUCache

__all__ = [
    "CacheStats",
    "LRUCache",
    "fingerprint",
    "dataset_fingerprint",
    "dataset_content_fingerprint",
    "DATASET_CACHE",
    "load_dataset_cached",
    "estimated_nbytes",
    "BeliefCache",
    "CachedStep",
    "BELIEF_CACHE",
    "DEFAULT_BELIEF_CACHE_BYTES",
    "resolve_belief_cache",
]


# --------------------------------------------------------------------- #
# Fingerprints
# --------------------------------------------------------------------- #
def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-stable structure (sorted, list-normal)."""
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return _canonical(obj.tolist())
    if isinstance(obj, np.generic):
        return _canonical(obj.item())
    if isinstance(obj, float) and not math.isfinite(obj):
        # json.dumps would happily emit the non-JSON tokens NaN/Infinity
        # (allow_nan defaults to True), silently breaking the canonical
        # contract — and NaN != NaN makes such specs compare (and hence
        # collide) unpredictably. Reject loudly instead.
        raise EngineError(
            f"cannot fingerprint non-finite float {obj!r}: fingerprints "
            f"are JSON-canonical and JSON has no NaN/Infinity"
        )
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise EngineError(f"cannot fingerprint value of type {type(obj).__name__}")


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``obj``.

    Equal specs fingerprint equally no matter how they were spelled:
    dict key order is irrelevant, and tuples equal their list twins.
    Non-finite floats are rejected with :class:`EngineError` — JSON has
    no NaN/Infinity, so they cannot be canonicalized (``allow_nan=False``
    backstops the same contract at the serializer).
    """
    payload = json.dumps(
        _canonical(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def dataset_fingerprint(name: str, seed: int = 0, kwargs: dict | None = None) -> str:
    """Cache key of one generated dataset."""
    return fingerprint({"dataset": name, "seed": seed, "kwargs": kwargs or {}})


def dataset_content_fingerprint(dataset) -> str:
    """SHA-256 digest of a dataset's *contents*, not its recipe.

    Hashes everything the mining loop can see — target matrix, target
    names, and each description column's name, kind, and values
    (metadata is invisible to the search and excluded) — so two
    :class:`~repro.datasets.schema.Dataset` objects with equal content
    fingerprint equally no matter how they were constructed. Datasets
    are immutable, so the digest is memoized on the instance.
    """
    cached = getattr(dataset, "_content_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()

    def _feed(label: str, payload: bytes) -> None:
        # Length-prefix every field so concatenations cannot collide.
        digest.update(label.encode("utf-8"))
        digest.update(len(payload).to_bytes(8, "little"))
        digest.update(payload)

    _feed("name", dataset.name.encode("utf-8"))
    _feed("targets", np.ascontiguousarray(dataset.targets, dtype=float).tobytes())
    _feed("target_names", "\x00".join(dataset.target_names).encode("utf-8"))
    for name in dataset.description_names:
        column = dataset.column(name)
        _feed("column", name.encode("utf-8"))
        _feed("kind", column.kind.value.encode("utf-8"))
        values = column.values
        if values.dtype.kind in ("U", "O"):
            _feed("values", "\x00".join(str(v) for v in values).encode("utf-8"))
        else:
            _feed("values", np.ascontiguousarray(values).tobytes())
    # Case weights change every score the loop computes, so they are part
    # of the content; fed only when present, which keeps the digest of
    # every unweighted dataset identical to pre-weights versions.
    weights = getattr(dataset, "weights", None)
    if weights is not None:
        _feed("weights", np.ascontiguousarray(weights, dtype=float).tobytes())
    result = digest.hexdigest()
    try:
        dataset._content_fingerprint = result
    except AttributeError:  # pragma: no cover - read-only dataset subclass
        pass
    return result


#: Process-wide dataset cache used by the job runner by default.
DATASET_CACHE = LRUCache(maxsize=16)

#: Cache-miss sentinel: ``None`` must stay a cacheable value.
_MISS = object()

#: Per-key load locks so concurrent service threads asking for the same
#: dataset generate it once instead of stampeding; keys are dataset
#: fingerprints, of which a process sees a handful, so the table is not
#: pruned.
_LOAD_LOCKS: dict[str, threading.Lock] = {}
_LOAD_LOCKS_GUARD = threading.Lock()


def _load_lock(key: str) -> threading.Lock:
    with _LOAD_LOCKS_GUARD:
        lock = _LOAD_LOCKS.get(key)
        if lock is None:
            lock = _LOAD_LOCKS[key] = threading.Lock()
        return lock


def load_dataset_cached(
    name: str, seed: int = 0, *, cache: LRUCache | None = None, **kwargs
):
    """:func:`repro.datasets.load_dataset` behind an LRU cache.

    Datasets are immutable, so sharing one instance across jobs (and
    across service worker threads) is safe. A distinct miss sentinel —
    not ``None`` — marks absence, and a per-key lock serializes the
    first load so a burst of service threads requesting the same
    dataset generates it exactly once (stampede protection); distinct
    datasets still load concurrently.
    """
    from repro.datasets.registry import load_dataset

    cache = DATASET_CACHE if cache is None else cache
    key = dataset_fingerprint(name, seed, kwargs)
    dataset = cache.get(key, _MISS)
    if dataset is not _MISS:
        return dataset
    with _load_lock(key):
        dataset = cache.get(key, _MISS)
        if dataset is _MISS:
            dataset = load_dataset(name, seed=seed, **kwargs)
            cache.put(key, dataset)
    return dataset


# --------------------------------------------------------------------- #
# Belief-state prefix cache
# --------------------------------------------------------------------- #
def estimated_nbytes(value: Any) -> int:
    """Rough memory price of a cached value, in bytes.

    Walks containers, dataclasses and plain objects, pricing numpy
    arrays by their true ``nbytes`` (they dominate cached mining steps)
    and everything else by small flat estimates — a sizing heuristic for
    cache budgeting, not an allocator audit. Shared objects are priced
    once (cycle-safe).
    """
    total = 0
    seen: set[int] = set()
    stack = [value]
    while stack:
        obj = stack.pop()
        if obj is None or isinstance(obj, (bool, int, float, complex)):
            total += 32
            continue
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            total += int(obj.nbytes) + 128
        elif isinstance(obj, np.generic):
            total += int(obj.nbytes) + 32
        elif isinstance(obj, (str, bytes, bytearray)):
            total += len(obj) + 64
        elif isinstance(obj, dict):
            total += 64
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            total += 64
            stack.extend(obj)
        elif dataclasses.is_dataclass(obj):
            total += 64
            stack.extend(
                getattr(obj, field.name) for field in dataclasses.fields(obj)
            )
        elif hasattr(obj, "__dict__"):
            total += 64
            stack.extend(vars(obj).values())
        else:
            total += 64
    return total


#: Default byte budget of a :class:`BeliefCache` (see its docstring).
DEFAULT_BELIEF_CACHE_BYTES = 256 * 2**20

#: Sentinel distinguishing "use the default budget" from an explicit None.
_DEFAULT_BYTES: Any = object()


@dataclass(frozen=True)
class CachedStep:
    """What one cached mining iteration needs to be replayed exactly.

    ``iteration`` is the step's result record, ``constraints`` the
    pattern constraints the step assimilated (one for a location step,
    two for the paper's two-step location+spread process), and
    ``rng_state`` the search RNG state *after* the step — restoring it
    makes the continuation bit-identical to never having replayed.
    """

    iteration: Any
    constraints: tuple
    rng_state: dict


class BeliefCache:
    """Fingerprint-keyed store of mining iterations for prefix reuse.

    Keys are chain hashes: :meth:`base_fingerprint` digests what a miner
    was built from (dataset content, search config, DL weights, prior),
    :meth:`extend` folds one assimilated constraint into the chain, and
    :meth:`step_key` combines the chain with the step parameters and the
    RNG state. Two sessions that share a base and a prefix of
    assimilated patterns therefore compute identical keys for the shared
    prefix — and the later one replays it from the cache instead of
    re-mining (see :meth:`repro.search.miner.SubgroupDiscovery.step`).

    Correctness relies on the engine's determinism contract: given equal
    belief state and RNG state, mining is a pure function of the key, so
    a hit is bit-identical to a cold run. Including the RNG state keeps
    sessions whose streams diverged (e.g. after an undo, which does not
    rewind the RNG) from ever sharing entries they should not.

    Instances are thread-safe (the underlying LRU locks); one process-
    wide default is exported as :data:`BELIEF_CACHE`.

    Eviction is size-aware: entries hold full iteration arrays (pattern
    indices, means, directions), so the cache is bounded by the
    *estimated total bytes* of what it stores (``max_bytes``, default
    :data:`DEFAULT_BELIEF_CACHE_BYTES`) on top of the entry-count bound
    — 256 steps over a million-row dataset must not quietly hold
    gigabytes. ``max_bytes=None`` restores pure count bounding.

    An optional ``spill`` (duck-typed; in practice
    :class:`repro.store.BeliefStore`) makes the cache *persistent*:
    every ``put`` is written through to it, and an in-memory miss falls
    back to a spill read (promoting the entry back into memory). Because
    keys are content hashes, the two tiers can never disagree. The spill
    is duck-typed here precisely so this module never imports
    ``repro.store`` (which imports this module).
    """

    def __init__(
        self,
        maxsize: int = 256,
        *,
        max_bytes: "int | None" = _DEFAULT_BYTES,
        spill=None,
    ) -> None:
        if max_bytes is _DEFAULT_BYTES:
            max_bytes = DEFAULT_BELIEF_CACHE_BYTES
        self.max_bytes = max_bytes
        self._spill = spill
        if max_bytes is None:
            self._entries = LRUCache(maxsize)
        else:
            self._entries = LRUCache(
                maxsize, max_bytes=max_bytes, sizeof=estimated_nbytes
            )

    # -------------------------- fingerprints -------------------------- #
    @staticmethod
    def base_fingerprint(dataset, config, dl_params, prior) -> str:
        """Digest of everything a miner's first iteration depends on."""
        return fingerprint(
            {
                "belief_cache": 1,  # schema version of the chain layout
                "dataset": dataset_content_fingerprint(dataset),
                "config": config.to_dict(),
                "dl": {"gamma": dl_params.gamma, "eta": dl_params.eta},
                "prior": {"mean": prior.mean, "cov": prior.cov},
            }
        )

    @staticmethod
    def extend(belief_fp: str, constraint) -> str:
        """Fold one assimilated constraint into the belief chain hash."""
        from repro.persist import constraint_to_dict  # circular at import time

        return fingerprint({"prev": belief_fp, "constraint": constraint_to_dict(constraint)})

    @staticmethod
    def step_key(belief_fp: str, kind: str, sparsity, rng_state) -> str:
        """Cache key of one mining step from a given belief state."""
        return fingerprint(
            {
                "belief": belief_fp,
                "kind": kind,
                "sparsity": sparsity,
                "rng": rng_state,
            }
        )

    # ----------------------------- storage ---------------------------- #
    def get(self, key: str) -> CachedStep | None:
        """The cached step under ``key``, or ``None``.

        With a spill attached, an in-memory miss falls through to disk
        and a disk hit is promoted back into the in-memory LRU.
        """
        entry = self._entries.get(key)
        if entry is None and self._spill is not None:
            entry = self._spill.get(key)
            if entry is not None:
                self._entries.put(key, entry)
        return entry

    def put(self, key: str, entry: CachedStep) -> None:
        """Store one mined step under its chain key (write-through)."""
        if not isinstance(entry, CachedStep):
            raise EngineError(
                f"belief cache stores CachedStep entries, got {type(entry).__name__}"
            )
        self._entries.put(key, entry)
        if self._spill is not None:
            self._spill.put(key, entry)

    @property
    def spill(self):
        """The attached persistent tier, if any."""
        return self._spill

    def handle(self):
        """A picklable handle to the persistent tier, or ``None``.

        Process-backend workers cannot share this in-memory cache, but a
        spill-backed cache can ship its spill directory as a short
        picklable token (:meth:`repro.store.BeliefStore.handle`) that
        each worker resolves into its own cache over the same files.
        """
        if self._spill is None or not hasattr(self._spill, "handle"):
            return None
        return self._spill.handle()

    def clear(self) -> None:
        """Drop every cached step (hit/miss counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Estimated bytes currently held (0 when not byte-bounded)."""
        return self._entries.total_bytes

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the underlying LRU."""
        return self._entries.stats


#: Process-wide belief cache shared by opted-in miners and services.
BELIEF_CACHE = BeliefCache(maxsize=256)


def resolve_belief_cache(value: "BeliefCache | bool | None") -> BeliefCache | None:
    """Normalize a ``belief_cache`` argument spelling.

    One resolution path for :class:`repro.api.Workspace` and
    :class:`repro.engine.service.MiningService`: ``True`` selects the
    process-wide :data:`BELIEF_CACHE`, ``False``/``None`` disables
    prefix caching, and an instance is used as-is.
    """
    if value is True:
        return BELIEF_CACHE
    if value is False or value is None:
        return None
    if isinstance(value, BeliefCache):
        return value
    raise EngineError(
        f"belief_cache must be a BeliefCache, True, False or None, got {value!r}"
    )
