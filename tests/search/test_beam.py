"""Tests for the location beam search and its batched scorer."""

import numpy as np
import pytest

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.errors import SearchError
from repro.interest.ic import location_ic
from repro.lang.refinement import RefinementOperator
from repro.model.background import BackgroundModel
from repro.model.patterns import SpreadConstraint
from repro.search.beam import LocationBeamSearch, LocationICScorer
from repro.search.config import SearchConfig
from repro.stats.statistics import subgroup_mean


@pytest.fixture()
def planted(rng):
    """40 of 200 rows displaced, labelled by a binary flag + noise attrs."""
    n = 200
    targets = rng.standard_normal((n, 2))
    flag = np.zeros(n)
    flag[:40] = 1.0
    targets[:40] += 2.5
    order = rng.permutation(n)
    targets, flag = targets[order], flag[order]
    columns = [
        Column("flag", AttributeKind.BINARY, flag),
        Column("noise_num", AttributeKind.NUMERIC, rng.standard_normal(n)),
        Column("noise_bin", AttributeKind.BINARY, rng.integers(0, 2, n).astype(float)),
    ]
    dataset = Dataset("planted", columns, targets, ["y1", "y2"])
    model = BackgroundModel.from_targets(targets)
    return dataset, model


class TestLocationICScorer:
    def test_matches_reference_ic(self, planted):
        dataset, model = planted
        scorer = LocationICScorer(model, dataset.targets)
        mask = dataset.column("flag").values == 1.0
        ic, observed = scorer.score_mask(mask)
        assert ic == pytest.approx(
            location_ic(model, mask, subgroup_mean(dataset.targets, mask)),
            rel=1e-9,
        )
        np.testing.assert_allclose(observed, subgroup_mean(dataset.targets, mask))

    def test_batch_matches_single(self, planted, rng):
        dataset, model = planted
        scorer = LocationICScorer(model, dataset.targets)
        masks = np.stack([rng.random(200) < 0.3 for _ in range(5)])
        ics, means = scorer.score_masks(masks)
        for k in range(5):
            ic, mean = scorer.score_mask(masks[k])
            assert ics[k] == pytest.approx(ic, rel=1e-12)
            np.testing.assert_allclose(means[k], mean)

    def test_multiblock_path_matches_reference(self, planted, rng):
        """After a spread update the covariances differ per block; the
        scorer must leave the uniform fast path and still agree with
        location_ic."""
        dataset, model = planted
        mask = dataset.column("flag").values == 1.0
        w = np.array([1.0, 0.0])
        model.assimilate(SpreadConstraint.from_data(dataset.targets, mask, w))
        scorer = LocationICScorer(model, dataset.targets)
        assert not scorer._uniform_cov
        probe = rng.random(200) < 0.4
        ic, _ = scorer.score_mask(probe)
        assert ic == pytest.approx(
            location_ic(model, probe, subgroup_mean(dataset.targets, probe)),
            rel=1e-9,
        )

    def test_empty_mask_rejected(self, planted):
        dataset, model = planted
        scorer = LocationICScorer(model, dataset.targets)
        with pytest.raises(SearchError, match="empty"):
            scorer.score_mask(np.zeros(200, dtype=bool))

    def test_shape_mismatch(self, planted, rng):
        dataset, model = planted
        with pytest.raises(SearchError, match="shape"):
            LocationICScorer(model, rng.standard_normal((7, 2)))


class TestLocationBeamSearch:
    def search(self, planted, **config_kwargs):
        dataset, model = planted
        operator = RefinementOperator(dataset)
        scorer = LocationICScorer(model, dataset.targets)
        config = SearchConfig(**config_kwargs)
        return LocationBeamSearch(operator, scorer, config=config).run()

    def test_finds_planted_flag(self, planted):
        result = self.search(planted)
        assert result.best is not None
        assert str(result.best.description) == "flag = '1'"
        assert result.best.size == 40

    def test_log_sorted_by_si(self, planted):
        result = self.search(planted)
        sis = [entry.si for entry in result.log]
        assert sis == sorted(sis, reverse=True)

    def test_log_capped_at_top_k(self, planted):
        result = self.search(planted, top_k=5)
        assert len(result.log) == 5

    def test_no_duplicate_descriptions_in_log(self, planted):
        result = self.search(planted)
        descriptions = [entry.description for entry in result.log]
        assert len(descriptions) == len(set(descriptions))

    def test_depth_one_only_single_conditions(self, planted):
        result = self.search(planted, max_depth=1)
        assert all(len(entry.description) == 1 for entry in result.log)
        assert result.depth_reached == 1

    def test_min_coverage_respected(self, planted):
        result = self.search(planted, min_coverage=50)
        assert all(entry.size >= 50 for entry in result.log)

    def test_max_coverage_respected(self, planted):
        result = self.search(planted, max_coverage_fraction=0.3)
        assert all(entry.size <= 60 for entry in result.log)

    def test_expired_budget_short_circuits(self, planted):
        result = self.search(planted, time_budget_seconds=0.0)
        assert result.expired
        assert result.best is None

    def test_beam_width_one_still_finds_strong_pattern(self, planted):
        result = self.search(planted, beam_width=1)
        assert result.best is not None
        assert str(result.best.description) == "flag = '1'"

    def test_n_evaluated_counts(self, planted):
        result = self.search(planted, max_depth=1)
        # flag: 2 conditions, noise_bin: 2, noise_num: 8 -> 12 candidates.
        assert result.n_evaluated == 12
