"""Robustness and failure-injection tests for the full pipeline."""

import numpy as np
import pytest

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.errors import ModelError
from repro.model.background import BackgroundModel
from repro.model.patterns import LocationConstraint, SpreadConstraint
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery


class TestCategoricalEndToEnd:
    """The paper's language includes categorical equality conditions."""

    @pytest.fixture()
    def categorical_dataset(self, rng):
        n = 240
        region = rng.choice(["north", "south", "east", "west"], n)
        soil = rng.choice(["clay", "sand", "loam"], n)
        targets = rng.standard_normal((n, 2))
        targets[region == "east"] += 2.0
        columns = [
            Column("region", AttributeKind.CATEGORICAL, region),
            Column("soil", AttributeKind.CATEGORICAL, soil),
            Column("noise", AttributeKind.NUMERIC, rng.standard_normal(n)),
        ]
        return Dataset("cat", columns, targets, ["y1", "y2"])

    def test_finds_categorical_pattern(self, categorical_dataset):
        miner = SubgroupDiscovery(categorical_dataset, seed=0)
        pattern = miner.find_location()
        assert str(pattern.description) == "region = 'east'"

    def test_iterates_after_assimilation(self, categorical_dataset):
        miner = SubgroupDiscovery(categorical_dataset, seed=0)
        first = miner.step()
        second = miner.step()
        assert second.location.si < first.location.si


class TestDegenerateData:
    def test_near_constant_target_column(self, rng):
        """A target with tiny variance must not break the prior/search."""
        n = 100
        targets = np.column_stack(
            [rng.standard_normal(n), np.full(n, 3.0) + 1e-12 * rng.standard_normal(n)]
        )
        flag = rng.integers(0, 2, n).astype(float)
        targets[flag == 1.0, 0] += 2.0
        dataset = Dataset(
            "deg", [Column("flag", AttributeKind.BINARY, flag)], targets, ["a", "b"]
        )
        miner = SubgroupDiscovery(dataset, seed=0)
        pattern = miner.find_location()
        assert pattern.si > 0

    def test_duplicated_target_columns(self, rng):
        """Perfectly correlated targets: jittered prior stays usable."""
        n = 80
        base = rng.standard_normal(n)
        targets = np.column_stack([base, base])
        flag = (base > 1.0).astype(float)
        dataset = Dataset(
            "dup", [Column("flag", AttributeKind.BINARY, flag)], targets, ["a", "b"]
        )
        miner = SubgroupDiscovery(dataset, seed=0)
        pattern = miner.find_location()
        assert np.isfinite(pattern.si)

    def test_extreme_target_scale(self, rng):
        """Means in the 1e9 range: everything stays finite."""
        n = 120
        targets = 1e9 + 1e7 * rng.standard_normal(n)
        flag = np.zeros(n)
        flag[:30] = 1.0
        targets[:30] += 5e7
        dataset = Dataset(
            "big", [Column("flag", AttributeKind.BINARY, flag)], targets, ["y"]
        )
        miner = SubgroupDiscovery(dataset, seed=0)
        iteration = miner.step(kind="spread")
        assert np.isfinite(iteration.location.si)
        assert np.isfinite(iteration.spread.si)
        assert miner.model.max_residual() < 1e-6

    def test_tiny_subgroups_admissible(self, rng):
        """min_coverage=2 pairs must score without blowing up."""
        n = 30
        targets = rng.standard_normal(n)
        num = np.arange(n, dtype=float)
        dataset = Dataset(
            "tiny", [Column("num", AttributeKind.NUMERIC, num)], targets, ["y"]
        )
        config = SearchConfig(min_coverage=2, max_depth=2)
        miner = SubgroupDiscovery(dataset, config=config, seed=0)
        result = miner.search_locations()
        assert all(np.isfinite(entry.si) for entry in result.log)


class TestModelStressSequences:
    def test_many_spread_updates_same_direction(self, rng):
        """Repeated tilts along one axis keep the covariance PD.

        Extensions are disjoint so every constraint stays exactly
        enforced (overlapping ones drift by design; see the refit test).
        """
        targets = rng.standard_normal((60, 2))
        model = BackgroundModel.from_targets(targets)
        w = np.array([1.0, 0.0])
        for k in range(8):
            idx = np.arange(7 * k, 7 * k + 7)
            model.assimilate(SpreadConstraint.from_data(targets, idx, w))
        for b in range(model.n_blocks):
            np.linalg.cholesky(model.block_cov(b))
        assert model.max_residual() < 1e-6

    def test_long_chain_of_location_updates(self, rng):
        targets = rng.standard_normal((100, 3))
        model = BackgroundModel.from_targets(targets)
        for k in range(15):
            idx = rng.choice(100, size=12, replace=False)
            model.assimilate(LocationConstraint.from_data(targets, idx))
        # Every residual can be re-tightened by a refit.
        model.refit(tol=1e-8, max_rounds=300)
        assert model.max_residual() < 1e-8

    def test_overlapping_location_and_spread_refit(self, rng):
        """The paper's footnote-3 regime: overlapping extensions."""
        targets = rng.standard_normal((80, 2))
        model = BackgroundModel.from_targets(targets)
        w = np.array([0.6, 0.8])
        constraints = [
            LocationConstraint.from_data(targets, np.arange(0, 30)),
            SpreadConstraint.from_data(targets, np.arange(15, 45), w),
            LocationConstraint.from_data(targets, np.arange(25, 55)),
        ]
        model.refit(constraints, tol=1e-7, max_rounds=500)
        assert model.max_residual() < 1e-7

    def test_full_data_extension(self, rng):
        """A pattern covering every row is a legal (if odd) update."""
        targets = rng.standard_normal((40, 2))
        model = BackgroundModel.from_targets(targets)
        constraint = LocationConstraint.from_data(targets, np.arange(40))
        model.assimilate(constraint)
        assert model.n_blocks == 1  # no split needed
        assert model.constraint_residual(constraint) < 1e-10

    def test_singleton_spread_rejected(self, rng):
        targets = rng.standard_normal((20, 2))
        with pytest.raises(ModelError):
            # Variance of a single point around its own mean is zero.
            SpreadConstraint.from_data(targets, np.array([3]), np.array([1.0, 0.0]))
