"""Pickle-boundary rule: only module-level callables cross processes.

Everything the engine fans out — executor shards, distributed shard
functions, ``multiprocessing`` targets — is pickled on its way to the
worker. Pickle serializes functions *by reference* (module + qualified
name), so lambdas, closures, and functions defined inside another
function raise ``PicklingError`` at submit time — on the spawn start
method and the distributed tier only, which is exactly why the bug
class slips through fork-only test runs. ``tests/dist/distfns.py``
exists solely to keep test shard functions module-level; this rule
makes the convention a machine-checked contract.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import LintRule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

#: Constructors whose result is a process pool (tracked via assignment).
_POOL_FACTORIES = (
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
)

#: Pool methods whose first argument crosses the process boundary.
_POOL_METHODS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "apply", "apply_async", "starmap"}
)

#: Module-level functions of this repo whose ``fn`` argument is shipped
#: to worker daemons (position after the context digest, or ``fn=``).
_SHIPPING_FUNCTIONS = frozenset({"run_shard", "shard_request"})


def _local_function_names(source: SourceFile) -> set[str]:
    """Functions defined inside another function (unpicklable by name)."""
    names: set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if source.enclosing_function(node) is not None:
                names.add(node.name)
    return names


def _lambda_assigned_names(source: SourceFile) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _process_pool_names(source: SourceFile) -> set[str]:
    """Names assigned from a process-pool constructor anywhere in the file."""
    pools: set[str] = set()
    for node in ast.walk(source.tree):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        qual = source.qualname(node.value.func)
        if qual is None:
            continue
        if qual in _POOL_FACTORIES or qual.endswith(".ProcessPoolExecutor"):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    pools.add(target.id)
                elif isinstance(target, ast.Attribute):
                    pools.add(target.attr)
    return pools


@register_rule
class NonPicklableCallableRule(LintRule):
    """PKL001: callables crossing a process boundary must be module-level.

    Pickle ships functions by reference: a lambda or a function defined
    inside another function cannot be resolved on the worker side and
    fails with ``PicklingError`` — but only on spawn/forkserver starts
    and on the distributed tier, so fork-based tests never catch it.
    Define the function at module top level (the
    ``tests/dist/distfns.py`` convention) and pass parameters through
    the context or ``functools.partial`` over a module-level function.
    """

    rule_id = "PKL001"
    title = "non-module-level callable crosses a process boundary"

    def check(self, source: SourceFile) -> Iterable[Finding]:
        """Yield every violation of this rule found in ``source``."""
        local_fns = _local_function_names(source)
        lambda_names = _lambda_assigned_names(source)
        pools = _process_pool_names(source)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            for arg, what in self._boundary_args(source, node, pools):
                problem = self._unpicklable(arg, local_fns, lambda_names)
                if problem is not None:
                    yield self.finding(
                        source,
                        arg,
                        f"{problem} passed to {what} cannot pickle across "
                        f"the process boundary; define it at module level",
                    )

    def _boundary_args(
        self, source: SourceFile, node: ast.Call, pools: set[str]
    ) -> Iterable[tuple[ast.AST, str]]:
        """(argument, boundary-description) pairs shipped by this call."""
        func = node.func
        qual = source.qualname(func)
        # multiprocessing.Process(target=...)
        if qual in ("multiprocessing.Process", "multiprocessing.context.Process"):
            for keyword in node.keywords:
                if keyword.arg == "target":
                    yield keyword.value, "multiprocessing.Process(target=...)"
            return
        # <process pool>.submit(fn, ...) / .map(fn, ...) / ...
        if isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS:
            owner = func.value
            owner_name = None
            if isinstance(owner, ast.Name):
                owner_name = owner.id
            elif isinstance(owner, ast.Attribute):
                owner_name = owner.attr
            if owner_name in pools:
                if node.args:
                    yield node.args[0], f"process pool .{func.attr}()"
                return
        # run_shard(digest, fn, items) / shard_request(digest, fn, items)
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name in _SHIPPING_FUNCTIONS:
            if len(node.args) >= 2:
                yield node.args[1], f"{name}()"
            for keyword in node.keywords:
                if keyword.arg == "fn":
                    yield keyword.value, f"{name}(fn=...)"

    @staticmethod
    def _unpicklable(
        arg: ast.AST, local_fns: set[str], lambda_names: set[str]
    ) -> str | None:
        # functools.partial(f, ...) pickles iff f does: check its head.
        if isinstance(arg, ast.Call):
            head = arg.func
            head_name = head.attr if isinstance(head, ast.Attribute) else (
                head.id if isinstance(head, ast.Name) else None
            )
            if head_name == "partial" and arg.args:
                return NonPicklableCallableRule._unpicklable(
                    arg.args[0], local_fns, lambda_names
                )
            return None
        if isinstance(arg, ast.Lambda):
            return "a lambda"
        if isinstance(arg, ast.Name):
            if arg.id in local_fns:
                return f"locally-defined function {arg.id!r}"
            if arg.id in lambda_names:
                return f"lambda-valued name {arg.id!r}"
        return None
