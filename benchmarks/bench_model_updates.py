"""Micro-benchmarks of the model primitives.

These are the operations the paper's Table II aggregates: the location
update (Theorem 1), the spread update (Theorem 2 with Brent's method on
Eq. 12), a full refit sweep, and the two IC evaluations. Timed with
pytest-benchmark's default repetition for stable statistics.
"""

import numpy as np
import pytest

from repro.datasets.socio import make_socio
from repro.interest.ic import location_ic, spread_ic
from repro.model.background import BackgroundModel
from repro.model.patterns import LocationConstraint, SpreadConstraint
from repro.stats.statistics import subgroup_mean


@pytest.fixture(scope="module")
def setup():
    dataset = make_socio(0)
    targets = dataset.targets
    idx = np.arange(80)
    w = np.zeros(targets.shape[1])
    w[0] = 1.0
    return targets, idx, w


def bench_location_update(benchmark, setup):
    targets, idx, _ = setup
    constraint = LocationConstraint.from_data(targets, idx)

    def run():
        model = BackgroundModel.from_targets(targets)
        model.assimilate(constraint)

    benchmark(run)


def bench_spread_update(benchmark, setup):
    targets, idx, w = setup
    constraint = SpreadConstraint.from_data(targets, idx, w)

    def run():
        model = BackgroundModel.from_targets(targets)
        model.assimilate(constraint)

    benchmark(run)


def bench_refit_five_patterns(benchmark, setup):
    targets, _, w = setup
    rng = np.random.default_rng(0)
    constraints = []
    for _ in range(5):
        idx = rng.choice(targets.shape[0], size=60, replace=False)
        constraints.append(LocationConstraint.from_data(targets, idx))
    model = BackgroundModel.from_targets(targets)
    benchmark(lambda: model.refit(constraints))


def bench_location_ic(benchmark, setup):
    targets, idx, _ = setup
    model = BackgroundModel.from_targets(targets)
    observed = subgroup_mean(targets, idx)
    benchmark(lambda: location_ic(model, idx, observed))


def bench_spread_ic(benchmark, setup):
    targets, idx, w = setup
    model = BackgroundModel.from_targets(targets)
    center = subgroup_mean(targets, idx)
    benchmark(lambda: spread_ic(model, idx, w, 1.5, center))
