"""Fig. 1 / §I running example: violent crime vs the top subgroup.

The paper's introduction mines the Communities-and-Crime data for the
single most subjectively interesting location pattern and reports:
intention ``PctIlleg >= 0.39``, coverage 20.5%, subgroup mean crime rate
0.53 vs 0.24 overall. Fig. 1 overlays three curves: the Gaussian-KDE of
crime over the full data, the subgroup's share of it (coverage-weighted
KDE), and the KDE within the subgroup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.crime import make_crime
from repro.experiments.common import make_miner
from repro.report.series import kde_series
from repro.report.tables import format_table
from repro.search.results import LocationPatternResult


@dataclass(frozen=True)
class Fig1Result:
    """The running example's pattern and the three Fig. 1 curves."""

    intention: str
    coverage: float
    subgroup_mean: float
    overall_mean: float
    si: float
    ic: float
    grid: np.ndarray
    density_full: np.ndarray
    density_subgroup_share: np.ndarray   # coverage-weighted (red area)
    density_within_subgroup: np.ndarray  # conditional (red dotted line)
    pattern: LocationPatternResult

    def format(self) -> str:
        """Render the reproduced rows as a fixed-width text table."""
        rows = [
            ("intention", self.intention),
            ("coverage", f"{self.coverage:.1%}"),
            ("subgroup mean crime", f"{self.subgroup_mean:.3f}"),
            ("overall mean crime", f"{self.overall_mean:.3f}"),
            ("SI", f"{self.si:.2f}"),
            ("IC (nats)", f"{self.ic:.2f}"),
        ]
        table = format_table(["quantity", "value"], rows, title="Fig. 1 summary")
        paper = (
            "paper: PctIlleg >= 0.39, coverage 20.5%, subgroup mean 0.53, "
            "overall 0.24"
        )
        return f"{table}\n{paper}"


def run_fig1(seed: int = 0, *, n_grid: int = 128) -> Fig1Result:
    """Mine the top pattern of the crime data and build the Fig. 1 series."""
    dataset = make_crime(seed)
    miner = make_miner(dataset)
    pattern = miner.find_location()

    crime = dataset.targets[:, 0]
    subgroup = crime[pattern.indices]
    grid = np.linspace(0.0, 1.0, n_grid)
    _, density_full = kde_series(crime, grid=grid)
    _, density_share = kde_series(subgroup, grid=grid, weight=pattern.coverage)
    _, density_within = kde_series(subgroup, grid=grid)

    return Fig1Result(
        intention=str(pattern.description),
        coverage=pattern.coverage,
        subgroup_mean=float(subgroup.mean()),
        overall_mean=float(crime.mean()),
        si=pattern.si,
        ic=pattern.score.ic,
        grid=grid,
        density_full=density_full,
        density_subgroup_share=density_share,
        density_within_subgroup=density_within,
        pattern=pattern,
    )
