"""Terminal-friendly chart rendering (no plotting stack available).

Used by the examples and the CLI to give the paper's figures a visual
form: horizontal bar charts for per-attribute surprisals (Figs. 5/8a/10),
sparklines and line plots for densities/CDFs (Figs. 1/8c/9b), and
lat/lon text maps for the geographic extensions (Figs. 6/7).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

_BLOCKS = " .:-=+*#%@"


def bar_chart(
    labels, values, *, width: int = 40, reference: float | None = None
) -> str:
    """Horizontal bar chart; bars are scaled to the max |value|.

    ``reference`` draws a second tick on each bar (e.g. the model's
    expected value next to the observed one is better served by two
    charts, but a single common reference like 0 renders inline).
    """
    labels = [str(l) for l in labels]
    values = np.asarray(values, dtype=float)
    if len(labels) != values.shape[0]:
        raise ReproError(f"{len(labels)} labels for {values.shape[0]} values")
    if values.size == 0:
        return "(empty chart)"
    scale = float(np.abs(values).max())
    if scale == 0.0:
        scale = 1.0
    label_width = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        n = int(round(abs(value) / scale * width))
        bar = ("#" if value >= 0 else "-") * n
        lines.append(f"{label.rjust(label_width)} | {bar} {value:.3g}")
    if reference is not None:
        lines.append(f"{'(ref)'.rjust(label_width)} | {reference:.3g}")
    return "\n".join(lines)


def sparkline(values) -> str:
    """One-line density sketch with block characters."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo
    if span == 0.0:
        return _BLOCKS[0] * values.size
    levels = ((values - lo) / span * (len(_BLOCKS) - 1)).astype(int)
    return "".join(_BLOCKS[level] for level in levels)


def render_series(
    grid, series: dict[str, np.ndarray], *, width: int = 64, height: int = 12
) -> str:
    """Render one or more (grid, values) series as an ASCII line plot.

    Each series gets a distinct mark, assigned in insertion order from
    ``*+o@x``. All series share the y-scale.
    """
    grid = np.asarray(grid, dtype=float)
    marks = "*+o@x"
    if len(series) > len(marks):
        raise ReproError(f"at most {len(marks)} series supported")
    all_values = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    lo, hi = float(all_values.min()), float(all_values.max())
    span = max(hi - lo, 1e-12)

    canvas = [[" "] * width for _ in range(height)]
    xs = np.linspace(grid.min(), grid.max(), width)
    for mark, (_name, values) in zip(marks, series.items()):
        values = np.asarray(values, dtype=float)
        resampled = np.interp(xs, grid, values)
        rows = ((resampled - lo) / span * (height - 1)).astype(int)
        for col, row in enumerate(rows):
            canvas[height - 1 - row][col] = mark
    lines = ["".join(row) for row in canvas]
    legend = "   ".join(
        f"{mark}={name}" for mark, name in zip(marks, series.keys())
    )
    footer = f"x: [{grid.min():.3g}, {grid.max():.3g}]  y: [{lo:.3g}, {hi:.3g}]"
    return "\n".join(lines + [legend, footer])


def text_map(
    lat,
    lon,
    mask,
    *,
    width: int = 64,
    height: int = 24,
    inside: str = "#",
    outside: str = ".",
) -> str:
    """Geographic extension map: mark cells/points inside a subgroup.

    Bins points into a ``height x width`` character grid (north up); a
    cell shows ``inside`` if any covered point falls in it, ``outside``
    if only uncovered points do, and blank if no data lands there.
    """
    lat = np.asarray(lat, dtype=float)
    lon = np.asarray(lon, dtype=float)
    mask = np.asarray(mask)
    if mask.dtype != bool or lat.shape != lon.shape or lat.shape != mask.shape:
        raise ReproError("lat, lon and boolean mask must have identical shapes")
    lat_lo, lat_hi = float(lat.min()), float(lat.max())
    lon_lo, lon_hi = float(lon.min()), float(lon.max())
    lat_span = max(lat_hi - lat_lo, 1e-12)
    lon_span = max(lon_hi - lon_lo, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    cols = np.minimum(((lon - lon_lo) / lon_span * width).astype(int), width - 1)
    rows = np.minimum(((lat_hi - lat) / lat_span * height).astype(int), height - 1)
    # Draw uncovered points first so covered ones overwrite them.
    for r, c in zip(rows[~mask], cols[~mask]):
        grid[r][c] = outside
    for r, c in zip(rows[mask], cols[mask]):
        grid[r][c] = inside
    return "\n".join("".join(row) for row in grid)
