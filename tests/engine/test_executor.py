"""Tests for the executor backends."""

import pytest

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.engine.executor import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    normalize_workers,
    resolve_executor,
    resolve_pool,
)
from repro.errors import EngineError


def _double(item):
    return item * 2


def _add_context(context, item):
    return context + item


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(_double, [3, 1, 2]) == [6, 2, 4]

    def test_session_passes_context(self):
        with SerialExecutor().session(10) as session:
            assert session.map(_add_context, [1, 2, 3]) == [11, 12, 13]

    def test_parallelism_is_one(self):
        assert SerialExecutor().parallelism == 1


class TestProcessExecutor:
    def test_map_preserves_order(self):
        assert ProcessExecutor(2).map(_double, [3, 1, 2]) == [6, 2, 4]

    def test_session_ships_context_to_workers(self):
        with ProcessExecutor(2).session(100) as session:
            assert session.map(_add_context, [1, 2, 3]) == [101, 102, 103]

    def test_session_reusable_for_multiple_maps(self):
        with ProcessExecutor(2).session(1) as session:
            first = session.map(_add_context, [1, 2])
            second = session.map(_add_context, [3, 4])
        assert first == [2, 3]
        assert second == [4, 5]

    def test_worker_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            ProcessExecutor(2).map(_reciprocal, [1, 0])

    def test_rejects_bad_worker_count(self):
        with pytest.raises(EngineError):
            ProcessExecutor(0)


def _reciprocal(item):
    return 1 / item


class TestResolveExecutor:
    @pytest.mark.parametrize("workers", [None, 0, 1])
    def test_serial_for_one_or_fewer(self, workers):
        assert isinstance(resolve_executor(workers), SerialExecutor)

    def test_process_pool_above_one(self):
        executor = resolve_executor(3)
        assert isinstance(executor, ProcessExecutor)
        assert executor.parallelism == 3

    @pytest.mark.parametrize("workers", [-1, -10])
    def test_negative_is_an_explicit_error(self, workers):
        with pytest.raises(EngineError, match=">= 0"):
            resolve_executor(workers)

    def test_backends_satisfy_protocol(self):
        assert isinstance(SerialExecutor(), Executor)
        assert isinstance(ProcessExecutor(2), Executor)


class TestNormalizeWorkers:
    """The single worker-count code path every entry point shares."""

    @pytest.mark.parametrize("workers,expected", [(None, 1), (0, 1), (1, 1), (7, 7)])
    def test_edge_cases(self, workers, expected):
        assert normalize_workers(workers) == expected

    def test_negative_raises(self):
        with pytest.raises(EngineError, match="worker count"):
            normalize_workers(-2)


class TestResolvePool:
    """The service's pool selection rides the same code path."""

    def test_serial_backend_is_none(self):
        assert resolve_pool("serial", 4) is None

    def test_thread_backend(self):
        pool = resolve_pool("thread", 2)
        assert isinstance(pool, ThreadPoolExecutor)
        pool.shutdown()

    def test_process_backend(self):
        pool = resolve_pool("process", 2)
        assert isinstance(pool, ProcessPoolExecutor)
        pool.shutdown()

    def test_unknown_backend_rejected(self):
        with pytest.raises(EngineError, match="backend"):
            resolve_pool("quantum", 2)

    def test_negative_workers_rejected(self):
        with pytest.raises(EngineError, match="worker count"):
            resolve_pool("thread", -1)

    def test_backends_tuple_exported(self):
        assert BACKENDS == ("process", "thread", "serial")
