"""Integration tests: the §III-A experiments reproduce the paper's shape."""

import numpy as np
import pytest

from repro.experiments.synthetic_exp import run_fig2, run_fig3, run_table1


@pytest.fixture(scope="module")
def fig2():
    return run_fig2(seed=0)


@pytest.fixture(scope="module")
def table1():
    return run_table1(seed=0)


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(seed=0, n_baseline_draws=30)


class TestFig2:
    def test_three_iterations(self, fig2):
        assert len(fig2.iterations) == 3

    def test_recovers_all_planted_clusters_exactly(self, fig2):
        clusters = {it.matched_cluster for it in fig2.iterations}
        assert clusters == {1, 2, 3}
        for it in fig2.iterations:
            assert it.jaccard_with_match > 0.9

    def test_subgroup_means_near_distance_two(self, fig2):
        for it in fig2.iterations:
            assert 1.5 < np.linalg.norm(it.subgroup_mean) < 2.5

    def test_si_positive_and_decreasing(self, fig2):
        sis = [it.location_si for it in fig2.iterations]
        assert all(si > 20 for si in sis)
        assert sis == sorted(sis, reverse=True)

    def test_directions_unit_norm(self, fig2):
        for it in fig2.iterations:
            assert np.linalg.norm(it.direction) == pytest.approx(1.0)

    def test_spread_variance_far_below_background(self, fig2):
        # The planted clusters have tiny variance along their minor axis
        # compared with the background unit variance.
        for it in fig2.iterations:
            assert it.variance < 0.2

    def test_format_renders(self, fig2):
        text = fig2.format()
        assert "Fig. 2" in text
        assert "attr" in text


class TestTable1:
    def test_tracks_ten_patterns_over_four_iterations(self, table1):
        assert len(table1.rows) == 10
        assert all(len(row.si_per_iteration) == 4 for row in table1.rows)

    def test_all_tracked_patterns_have_40_rows(self, table1):
        """The paper's caption: 'all patterns have size 40'."""
        assert all(row.size == 40 for row in table1.rows)

    def test_top_three_are_planted_singletons(self, table1):
        singles = [r.intention for r in table1.rows if " AND " not in r.intention]
        assert len(singles) >= 3
        for intention in singles[:3]:
            assert intention in ("attr3 = '1'", "attr4 = '1'", "attr5 = '1'")

    def test_si_collapses_after_assimilation(self, table1):
        """Once a pattern is assimilated its SI goes negative and stays."""
        for row in table1.rows:
            series = row.si_per_iteration
            assert series[0] > 20.0
            assert series[3] < 1.0  # by iteration 4 everything is known

    def test_collapse_is_monotone_once_triggered(self, table1):
        for row in table1.rows:
            series = row.si_per_iteration
            dropped = False
            for a, b in zip(series, series[1:]):
                if b < 1.0:
                    dropped = True
                if dropped:
                    assert b < 1.0

    def test_untouched_patterns_keep_si(self, table1):
        """Patterns of later clusters keep their exact SI until assimilated."""
        for row in table1.rows:
            series = row.si_per_iteration
            for a, b in zip(series, series[1:]):
                if b > 1.0:  # not yet assimilated
                    assert b == pytest.approx(a, rel=1e-9)

    def test_three_distinct_patterns_assimilated(self, table1):
        assert len(set(table1.assimilated)) == 3

    def test_format_renders(self, table1):
        text = table1.format()
        assert "iter1" in text and "iter4" in text


class TestFig3:
    def test_curves_cover_all_true_descriptions(self, fig3):
        assert len(fig3.si_curves) == 3

    def test_si_decreases_with_noise(self, fig3):
        for curve in fig3.si_curves.values():
            assert curve[0] > 30.0
            # Compare the clean end with the noisy end (monotone in trend,
            # not pointwise, because each level redraws the flips).
            assert curve[-1] < curve[0] / 4.0

    def test_baseline_flat_and_low(self, fig3):
        assert np.all(fig3.baseline < 3.0)

    def test_recovery_threshold_close_to_paper(self, fig3):
        """Paper: recoverable up to ~0.22, partially to 0.25."""
        threshold = fig3.recovery_threshold()
        assert 0.10 <= threshold <= 0.33

    def test_format_renders(self, fig3):
        assert "distortion" in fig3.format()
