"""Bounded, thread-safe LRU cache.

Dependency-neutral so both the language layer (condition-mask
memoization in :class:`~repro.lang.refinement.RefinementOperator`) and
the engine layer (dataset and job-result caches) can use it without the
language layer depending on the engine.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters of one :class:`LRUCache`."""

    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Thread-safe least-recently-used mapping with a hard size bound.

    The bound is an entry *count* (``maxsize``) and, optionally, a total
    *byte* budget: pass ``max_bytes`` together with a ``sizeof``
    callable that prices each stored value, and inserts evict
    least-recently-used entries until the priced total fits again. Byte
    pricing matters when entries are wildly unequal — the engine's
    belief cache stores full iteration arrays, where 256 tiny entries
    and 256 huge ones are very different memory stories.

    A single entry larger than ``max_bytes`` is still admitted (it
    evicts everything else); refusing it would make the cache silently
    useless for workloads whose unit of reuse simply is that large.
    """

    def __init__(
        self,
        maxsize: int = 128,
        *,
        max_bytes: int | None = None,
        sizeof: Any = None,
    ) -> None:
        if maxsize < 1:
            # A bad bound is a programming error, not a mining failure, so
            # it stays outside the ReproError taxonomy (see repro.errors).
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if (max_bytes is None) != (sizeof is None):
            raise ValueError("max_bytes and sizeof must be given together")
        self.maxsize = maxsize
        self.max_bytes = max_bytes
        self._sizeof = sizeof
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._sizes: dict[Hashable, int] = {}
        self._total_bytes = 0
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite ``key``, evicting LRU entries while over budget."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if self._sizeof is not None:
                size = int(self._sizeof(value))
                self._total_bytes += size - self._sizes.get(key, 0)
                self._sizes[key] = size
            while len(self._data) > self.maxsize or (
                self.max_bytes is not None
                and self._total_bytes > self.max_bytes
                and len(self._data) > 1
            ):
                evicted, _ = self._data.popitem(last=False)
                self._total_bytes -= self._sizes.pop(evicted, 0)
                self._evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._data.clear()
            self._sizes.clear()
            self._total_bytes = 0

    @property
    def total_bytes(self) -> int:
        """Priced bytes currently held (0 unless byte-bounded)."""
        with self._lock:
            return self._total_bytes

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(self._hits, self._misses, self._evictions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LRUCache(len={len(self)}, maxsize={self.maxsize})"
