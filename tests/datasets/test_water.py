"""Tests for the river water-quality stand-in (§III-D calibration)."""

import numpy as np

from repro.datasets.water import DENSITY_LEVELS, TARGETS, TAXA, make_water


class TestShape:
    def test_paper_dimensions(self, water_dataset):
        assert water_dataset.n_rows == 1060
        assert water_dataset.n_descriptions == 14
        assert water_dataset.n_targets == 16
        assert water_dataset.target_names == list(TARGETS)

    def test_taxa_split(self):
        assert len(TAXA) == 14

    def test_ordinal_levels(self, water_dataset):
        for col in water_dataset.columns():
            assert set(np.unique(col.values)) <= set(DENSITY_LEVELS)


class TestPlantedStructure:
    def planted_mask(self, ds):
        g = ds.column("amphipoda_gammarus_fossarum").values
        t = ds.column("oligochaeta_tubifex").values
        return (g <= 0) & (t >= 3)

    def test_planted_subgroup_size(self, water_dataset):
        size = self.planted_mask(water_dataset).sum()
        assert 70 <= size <= 130  # paper: 91 records

    def test_oxygen_demand_elevated(self, water_dataset):
        mask = self.planted_mask(water_dataset)
        for name in ("bod", "kmno4", "k2cr2o7", "cl", "conduct"):
            j = water_dataset.target_index(name)
            inside = water_dataset.targets[mask, j].mean()
            outside = water_dataset.targets[~mask, j].mean()
            assert inside > outside, name

    def test_oxygen_depleted(self, water_dataset):
        mask = self.planted_mask(water_dataset)
        j = water_dataset.target_index("o2")
        assert water_dataset.targets[mask, j].mean() < water_dataset.targets[~mask, j].mean()

    def test_variance_inflation_along_bod_kmno4(self, water_dataset):
        """The planted spread direction has MORE variance inside the subgroup."""
        mask = self.planted_mask(water_dataset)
        j_bod = water_dataset.target_index("bod")
        j_k = water_dataset.target_index("kmno4")
        w = np.array([1.1, 1.9])
        w = w / np.linalg.norm(w)
        pair = water_dataset.targets[:, [j_bod, j_k]]
        centered_in = pair[mask] - pair[mask].mean(axis=0)
        inside_var = float(np.mean((centered_in @ w) ** 2))
        centered_all = pair - pair.mean(axis=0)
        overall_var = float(np.mean((centered_all @ w) ** 2))
        # Inside variance along w exceeds what the overall residual (after
        # subtracting the mean shift) would suggest for a random subset.
        assert inside_var > 0.5 * overall_var

    def test_gammarus_clean_indicator(self, water_dataset):
        pollution = water_dataset.metadata["pollution"]
        g = water_dataset.column("amphipoda_gammarus_fossarum").values
        assert pollution[g == 0].mean() > pollution[g >= 3].mean()

    def test_tubifex_tolerant_indicator(self, water_dataset):
        pollution = water_dataset.metadata["pollution"]
        t = water_dataset.column("oligochaeta_tubifex").values
        assert pollution[t >= 3].mean() > pollution[t == 0].mean()
