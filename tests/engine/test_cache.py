"""Tests for the LRU cache and spec fingerprints."""

import numpy as np
import pytest

from repro.engine.cache import (
    LRUCache,
    dataset_fingerprint,
    fingerprint,
    load_dataset_cached,
)
from repro.errors import EngineError


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 7) == 7

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_overwrite_does_not_grow(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2

    def test_stats_count_hits_misses_evictions(self):
        cache = LRUCache(1)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts "a"
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestFingerprint:
    def test_dict_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_tuple_equals_list(self):
        assert fingerprint((1, 2, 3)) == fingerprint([1, 2, 3])

    def test_numpy_scalars_and_arrays_normalize(self):
        assert fingerprint(np.int64(3)) == fingerprint(3)
        assert fingerprint(np.array([1.0, 2.0])) == fingerprint([1.0, 2.0])

    def test_distinguishes_values(self):
        assert fingerprint({"seed": 0}) != fingerprint({"seed": 1})

    def test_rejects_unserializable(self):
        with pytest.raises(EngineError):
            fingerprint(object())

    def test_dataset_fingerprint_includes_kwargs(self):
        assert dataset_fingerprint("synthetic", 0) != dataset_fingerprint(
            "synthetic", 0, {"flip_probability": 0.1}
        )


class TestLoadDatasetCached:
    def test_second_load_is_a_hit(self):
        cache = LRUCache(4)
        first = load_dataset_cached("synthetic", seed=0, cache=cache)
        second = load_dataset_cached("synthetic", seed=0, cache=cache)
        assert first is second
        assert cache.stats.hits == 1

    def test_different_seed_is_a_miss(self):
        cache = LRUCache(4)
        first = load_dataset_cached("synthetic", seed=0, cache=cache)
        other = load_dataset_cached("synthetic", seed=1, cache=cache)
        assert first is not other
        assert len(cache) == 2
