"""Sessions: undo, resume, and provably-optimal search (extensions).

Demonstrates the library's additions beyond the paper's evaluation:

1. :class:`repro.MiningSession` — an undoable, saveable mining dialogue;
2. resuming a saved belief state and continuing exactly where it left off;
3. :func:`repro.find_optimal_location` — the paper's §V branch-and-bound
   plan, returning the provably optimal location pattern of the language.

Run with::

    python examples/session_workflow.py
"""

import tempfile
from pathlib import Path

from repro import MiningSession, SearchConfig, find_optimal_location, load_dataset


def main() -> None:
    dataset = load_dataset("synthetic", seed=0)

    # 1. An undoable dialogue.
    session = MiningSession(dataset, seed=0)
    session.step(kind="spread")
    session.step(kind="spread")
    print(session.report())

    undone = session.undo()
    print(f"\nundo -> forgot {undone.location.description}; "
          f"{session.n_iterations} iteration(s) remain")

    # 2. Save the belief state, resume it elsewhere, continue mining.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "session.json"
        session.save(path)
        resumed = MiningSession.resume(dataset, path, seed=0)
        next_iteration = resumed.step()
        print(f"resumed session mines next: {next_iteration.location.description}")

    # 3. Provably optimal location patterns (single target, fresh model).
    crime = load_dataset("crime", seed=0)
    config = SearchConfig(
        max_depth=2,
        attributes=["pct_illeg", "pct_poverty", "med_income", "pct_unemployed"],
    )
    optimum = find_optimal_location(crime, config=config)
    print(f"\nbranch-and-bound optimum on crime (depth 2): "
          f"{optimum.best.description}  SI={optimum.best.si:.1f}")
    print("  (guaranteed optimal within the description language - "
          "the paper's §V future work)")


if __name__ == "__main__":
    main()
