"""Tests for dataframe-native ingestion (``from_dataframe``).

pandas is optional, so these tests exercise the duck-typed mapping path
(a dict of column arrays is a valid "frame") and only touch the pandas
path when pandas happens to be installed.
"""

import numpy as np
import pytest

from repro.datasets import AttributeKind, from_dataframe, to_dataframe
from repro.errors import DataError

try:
    import pandas
except ImportError:
    pandas = None


def _frame():
    return {
        "region": np.array(["north", "south", "south", "north", "east"]),
        "age": np.array([23.0, 31.0, 45.0, 52.0, 38.0]),
        "subscribed": np.array([True, False, True, True, False]),
        "score_a": np.array([0.1, 0.9, -0.3, 0.4, 0.0]),
        "score_b": np.array([1.1, -0.2, 0.5, 0.3, -0.7]),
    }


class TestKindInference:
    def test_infers_selector_kinds(self):
        dataset = from_dataframe(_frame(), target=["score_a", "score_b"])
        kinds = {c.name: c.kind for c in dataset.columns()}
        assert kinds == {
            "region": AttributeKind.CATEGORICAL,
            "age": AttributeKind.NUMERIC,
            "subscribed": AttributeKind.BINARY,
        }
        assert dataset.n_rows == 5
        assert dataset.target_names == ["score_a", "score_b"]

    def test_numeric_01_column_is_binary(self):
        frame = {**_frame(), "flag": np.array([0, 1, 1, 0, 1])}
        dataset = from_dataframe(frame, target="score_a")
        kinds = {c.name: c.kind for c in dataset.columns()}
        assert kinds["flag"] is AttributeKind.BINARY

    def test_kind_override(self):
        dataset = from_dataframe(
            _frame(), target="score_a", kinds={"age": "ordinal"}
        )
        kinds = {c.name: c.kind for c in dataset.columns()}
        assert kinds["age"] is AttributeKind.ORDINAL

    def test_single_target_string(self):
        dataset = from_dataframe(_frame(), target="score_a")
        assert dataset.target_names == ["score_a"]
        assert dataset.n_targets == 1

    def test_ignore_drops_columns(self):
        dataset = from_dataframe(_frame(), target="score_a", ignore=["region"])
        assert "region" not in [c.name for c in dataset.columns()]


class TestWeights:
    def test_weights_column_consumed(self):
        frame = {**_frame(), "w": np.array([1.0, 2.0, 0.5, 1.5, 1.0])}
        dataset = from_dataframe(
            frame, target=["score_a", "score_b"], weights="w"
        )
        assert "w" not in [c.name for c in dataset.columns()]
        np.testing.assert_array_equal(
            dataset.weights, [1.0, 2.0, 0.5, 1.5, 1.0]
        )

    def test_weights_array(self):
        weights = np.array([1.0, 2.0, 0.5, 1.5, 1.0])
        dataset = from_dataframe(_frame(), target="score_a", weights=weights)
        np.testing.assert_array_equal(dataset.weights, weights)
        assert dataset.total_weight() == pytest.approx(6.0)

    def test_invalid_weights_rejected(self):
        with pytest.raises(DataError):
            from_dataframe(
                _frame(),
                target="score_a",
                weights=np.array([1.0, -1.0, 1.0, 1.0, 1.0]),
            )

    def test_unknown_weights_column_rejected(self):
        with pytest.raises(DataError, match="not in frame"):
            from_dataframe(_frame(), target="score_a", weights="nope")


class TestMissingValues:
    def test_missing_values_raise_by_default(self):
        frame = _frame()
        frame["age"][2] = np.nan
        with pytest.raises(DataError, match="age"):
            from_dataframe(frame, target="score_a")

    def test_dropna_drops_rows(self):
        frame = _frame()
        frame["age"][2] = np.nan
        dataset = from_dataframe(frame, target="score_a", dropna=True)
        assert dataset.n_rows == 4

    def test_dropna_drops_rows_with_missing_weights(self):
        frame = {**_frame(), "w": np.array([1.0, np.nan, 1.0, 1.0, 1.0])}
        dataset = from_dataframe(
            frame, target="score_a", weights="w", dropna=True
        )
        assert dataset.n_rows == 4
        assert dataset.weights.shape == (4,)

    def test_all_rows_missing_raises(self):
        frame = _frame()
        frame["age"][:] = np.nan
        with pytest.raises(DataError, match="no rows left"):
            from_dataframe(frame, target="score_a", dropna=True)


class TestValidation:
    def test_unknown_target_rejected(self):
        with pytest.raises(DataError, match="not in frame"):
            from_dataframe(_frame(), target="nope")

    def test_non_numeric_target_rejected(self):
        with pytest.raises(DataError, match="numeric"):
            from_dataframe(_frame(), target="region")

    def test_no_description_columns_rejected(self):
        frame = {"a": np.arange(4.0), "b": np.arange(4.0)}
        with pytest.raises(DataError, match="description"):
            from_dataframe(frame, target=["a", "b"])

    def test_non_frame_rejected(self):
        with pytest.raises(DataError, match="dataframe-like"):
            from_dataframe([1, 2, 3], target="a")


class TestToDataframe:
    @pytest.mark.skipif(pandas is not None, reason="pandas is installed")
    def test_graceful_error_without_pandas(self):
        dataset = from_dataframe(_frame(), target="score_a")
        with pytest.raises(DataError, match=r"sisd\[dataframe\]"):
            to_dataframe(dataset)

    @pytest.mark.skipif(pandas is None, reason="needs pandas")
    def test_round_trip(self):
        weights = np.array([1.0, 2.0, 0.5, 1.5, 1.0])
        dataset = from_dataframe(
            pandas.DataFrame(_frame()), target="score_a", weights=weights
        )
        frame = to_dataframe(dataset, weights_column="w")
        assert frame.shape == (5, 6)
        np.testing.assert_array_equal(frame["w"].to_numpy(), weights)
        rebuilt = from_dataframe(frame, target="score_a", weights="w")
        np.testing.assert_array_equal(rebuilt.targets, dataset.targets)
        np.testing.assert_array_equal(rebuilt.weights, dataset.weights)
