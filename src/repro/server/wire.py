"""Canonical JSON wire schemas shared by the HTTP server and client.

Everything that crosses the network — streamed events, job states,
results — is serialized here and only here, so
:class:`~repro.server.app.MiningServer` and
:class:`~repro.client.RemoteWorkspace` cannot drift apart. The payload
encodings reuse :mod:`repro.persist` (numpy arrays become lists, floats
keep their exact shortest-repr round-trip), which is what makes a
remote result *bit-identical* to the local one after a JSON hop.

An event document is a flat envelope::

    {"schema": 1, "type": "iteration", "job_id": "job-0001", ...payload}

with ``type`` one of :data:`EVENT_TYPES`. :func:`event_from_wire`
materializes the payload back into library objects
(:class:`~repro.search.results.MiningIteration`,
:class:`~repro.engine.jobs.JobResult`,
:class:`~repro.events.SchedulerEvent`), so client code handles the same
types it would see from a local :class:`~repro.api.Workspace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.jobs import JobResult, MiningJob
from repro.errors import ReproError
from repro.events import SchedulerEvent
from repro.persist import (
    job_from_dict,
    job_result_from_dict,
    job_result_to_dict,
    job_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.search.results import MiningIteration, ScoredSubgroup

#: Schema version embedded in every wire document; bump on breaking changes.
WIRE_SCHEMA = 1

#: Event envelope types a server stream may carry.
EVENT_TYPES = ("iteration", "candidate", "schedule", "job", "job_failed")


def _check_schema(data: dict[str, Any], what: str) -> None:
    schema = data.get("schema", WIRE_SCHEMA)
    if schema != WIRE_SCHEMA:
        raise ReproError(
            f"unsupported {what} wire schema {schema!r} (expected {WIRE_SCHEMA})"
        )


# --------------------------------------------------------------------- #
# Payload encodings
# --------------------------------------------------------------------- #
def iteration_to_wire(iteration: MiningIteration) -> dict[str, Any]:
    """Serialize one mining iteration (location + optional spread)."""
    entry: dict[str, Any] = {
        "index": iteration.index,
        "location": result_to_dict(iteration.location),
    }
    entry["spread"] = (
        result_to_dict(iteration.spread) if iteration.spread is not None else None
    )
    return entry


def iteration_from_wire(data: dict[str, Any]) -> MiningIteration:
    """Rebuild one mining iteration from its wire form."""
    spread = data.get("spread")
    return MiningIteration(
        index=int(data["index"]),
        location=result_from_dict(data["location"]),
        spread=result_from_dict(spread) if spread is not None else None,
    )


def candidate_to_wire(candidate: ScoredSubgroup) -> dict[str, Any]:
    """Summarize one scored beam candidate for the stream.

    Candidates fire for *every* admissible subgroup (hundreds per beam
    level), so the wire form is a render-ready summary — description
    text and scores, no row indices. Full-fidelity records travel in
    iteration and result documents only.
    """
    return {
        "description": str(candidate.description),
        "size": candidate.size,
        "si": candidate.si,
        "ic": candidate.score.ic,
        "dl": candidate.score.dl,
    }


def scheduler_event_to_wire(event: SchedulerEvent) -> dict[str, Any]:
    """Serialize one scheduling decision, including its job spec."""
    return {
        "kind": event.kind,
        "job_id": event.job_id,
        "pending": event.pending,
        "detail": event.detail,
        "job": job_to_dict(event.job),
    }


def scheduler_event_from_wire(data: dict[str, Any]) -> SchedulerEvent:
    """Rebuild one scheduling decision from its wire form."""
    return SchedulerEvent(
        kind=data["kind"],
        job_id=data["job_id"],
        job=job_from_dict(data["job"]),
        pending=int(data.get("pending", 0)),
        detail=data.get("detail", ""),
    )


def job_state_to_wire(job_id: str, status: Any, job: MiningJob) -> dict[str, Any]:
    """One job's lifecycle snapshot (the ``GET /jobs/{id}`` body)."""
    return {
        "schema": WIRE_SCHEMA,
        "job_id": job_id,
        "status": getattr(status, "value", str(status)),
        "name": job.name,
        "fingerprint": job.fingerprint(),
        "dataset": job.dataset,
        "strategy": job.strategy,
        "n_iterations": job.n_iterations,
        "priority": job.priority,
        "deadline": job.deadline,
    }


def error_to_wire(error: BaseException) -> dict[str, Any]:
    """Serialize an exception as ``{"type", "message"}``."""
    return {"type": type(error).__name__, "message": str(error)}


# --------------------------------------------------------------------- #
# Event envelopes (what SSE ``data:`` lines carry)
# --------------------------------------------------------------------- #
def iteration_event(job_id: str, iteration: MiningIteration) -> dict[str, Any]:
    """Envelope for one mined iteration of one job."""
    return {
        "schema": WIRE_SCHEMA,
        "type": "iteration",
        "job_id": job_id,
        "iteration": iteration_to_wire(iteration),
    }


def candidate_event(job_id: str, candidate: ScoredSubgroup) -> dict[str, Any]:
    """Envelope for one scored beam candidate of one job (summary)."""
    return {
        "schema": WIRE_SCHEMA,
        "type": "candidate",
        "job_id": job_id,
        "candidate": candidate_to_wire(candidate),
    }


def schedule_event(event: SchedulerEvent) -> dict[str, Any]:
    """Envelope for one scheduling decision (self-tagged with its job id)."""
    return {
        "schema": WIRE_SCHEMA,
        "type": "schedule",
        "job_id": event.job_id,
        **scheduler_event_to_wire(event),
    }


def job_event(job_id: str, result: JobResult) -> dict[str, Any]:
    """Envelope for one completed job, carrying its whole result."""
    return {
        "schema": WIRE_SCHEMA,
        "type": "job",
        "job_id": job_id,
        "result": job_result_to_dict(result),
    }


def job_failed_event(job_id: str, job: MiningJob, error: BaseException) -> dict[str, Any]:
    """Envelope for one failed job."""
    return {
        "schema": WIRE_SCHEMA,
        "type": "job_failed",
        "job_id": job_id,
        "job": job_to_dict(job),
        "error": error_to_wire(error),
    }


@dataclass(frozen=True)
class RemoteEvent:
    """One decoded stream event: type, owning job, materialized payload.

    ``data`` holds the payload as a library object —
    :class:`~repro.search.results.MiningIteration` for ``iteration``,
    :class:`~repro.engine.jobs.JobResult` for ``job``,
    :class:`~repro.events.SchedulerEvent` for ``schedule``, the summary
    dict for ``candidate``, and the ``{"job", "error"}`` pair for
    ``job_failed``. ``seq`` is the server-assigned sequence number (0
    when decoded outside a stream). ``raw`` keeps the envelope.
    """

    type: str
    job_id: str | None
    data: Any
    seq: int = 0
    raw: dict[str, Any] | None = None


def event_from_wire(data: dict[str, Any], seq: int = 0) -> RemoteEvent:
    """Decode one event envelope, materializing its payload."""
    if not isinstance(data, dict):
        raise ReproError(f"event document must be an object, got {type(data).__name__}")
    _check_schema(data, "event")
    kind = data.get("type")
    job_id = data.get("job_id")
    if kind == "iteration":
        payload: Any = iteration_from_wire(data["iteration"])
    elif kind == "candidate":
        payload = dict(data["candidate"])
    elif kind == "schedule":
        payload = scheduler_event_from_wire(data)
    elif kind == "job":
        payload = job_result_from_dict(data["result"])
    elif kind == "job_failed":
        payload = {
            "job": job_from_dict(data["job"]),
            "error": dict(data["error"]),
        }
    else:
        raise ReproError(
            f"unknown event type {kind!r}; expected one of {EVENT_TYPES}"
        )
    return RemoteEvent(type=kind, job_id=job_id, data=payload, seq=seq, raw=data)


def job_result_to_wire(result: JobResult) -> dict[str, Any]:
    """Serialize one whole job result (the ``GET .../result`` payload)."""
    return job_result_to_dict(result)


def job_result_from_wire(data: dict[str, Any]) -> JobResult:
    """Rebuild one whole job result from its wire form."""
    return job_result_from_dict(data)
