"""Tenancy: token auth, deterministic rate limits, token-file parsing."""

import json

import pytest

from repro.errors import EngineError
from repro.store import Tenant, TenantRegistry, TokenBucket


class TestTenant:
    def test_validation(self):
        with pytest.raises(EngineError):
            Tenant(name="", token="t")
        with pytest.raises(EngineError):
            Tenant(name="a", token="")
        with pytest.raises(EngineError):
            Tenant(name="a", token="t", share=0.0)
        with pytest.raises(EngineError):
            Tenant(name="a", token="t", rate_per_minute=-1)
        with pytest.raises(EngineError):
            Tenant(name="a", token="t", max_pending=0)


class TestTokenBucket:
    def test_burst_then_refusal_with_retry_after(self):
        now = [0.0]
        bucket = TokenBucket(1.0, 2, clock=lambda: now[0])
        assert bucket.admit() == (True, 0.0)
        assert bucket.admit() == (True, 0.0)
        ok, retry_after = bucket.admit()
        assert not ok
        assert retry_after == pytest.approx(1.0)

    def test_refills_at_the_configured_rate(self):
        now = [0.0]
        bucket = TokenBucket(2.0, 1, clock=lambda: now[0])
        assert bucket.admit()[0]
        assert not bucket.admit()[0]
        now[0] = 0.5  # 2 tokens/s * 0.5 s = exactly one token back
        assert bucket.admit()[0]
        assert not bucket.admit()[0]

    def test_burst_is_the_ceiling(self):
        now = [0.0]
        bucket = TokenBucket(1.0, 3, clock=lambda: now[0])
        now[0] = 1000.0  # a long idle period banks at most `burst`
        grants = sum(bucket.admit()[0] for _ in range(10))
        assert grants == 3


class TestRegistry:
    def _registry(self, clock=None):
        tenants = [
            Tenant(name="alice", token="tok-a", share=2.0, rate_per_minute=60),
            Tenant(name="bob", token="tok-b"),
        ]
        kwargs = {} if clock is None else {"clock": clock}
        return TenantRegistry(tenants, **kwargs)

    def test_authenticate_maps_token_to_tenant(self):
        registry = self._registry()
        assert registry.authenticate("tok-a").name == "alice"
        assert registry.authenticate("tok-b").name == "bob"
        assert registry.authenticate("wrong") is None
        assert registry.authenticate(None) is None

    def test_unique_names_and_tokens_enforced(self):
        with pytest.raises(EngineError):
            TenantRegistry(
                [Tenant(name="a", token="t1"), Tenant(name="a", token="t2")]
            )
        with pytest.raises(EngineError):
            TenantRegistry(
                [Tenant(name="a", token="t"), Tenant(name="b", token="t")]
            )

    def test_admit_without_rate_limit_is_unbounded(self):
        registry = self._registry()
        for _ in range(100):
            assert registry.admit("bob") == (True, 0.0)

    def test_admit_unknown_tenant_raises(self):
        with pytest.raises(EngineError):
            self._registry().admit("mallory")

    def test_rate_limited_tenant_gets_retry_after(self):
        now = [0.0]
        registry = self._registry(clock=lambda: now[0])
        # alice: 60/min = 1/s, default burst 5.
        for _ in range(5):
            assert registry.admit("alice")[0]
        ok, retry_after = registry.admit("alice")
        assert not ok and retry_after > 0
        now[0] += retry_after
        assert registry.admit("alice")[0]


class TestFromFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "tokens.json"
        path.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "tenants": [
                        {
                            "name": "alice",
                            "token": "tok-a",
                            "share": 2.0,
                            "rate_per_minute": 120,
                            "burst": 10,
                            "max_pending": 4,
                        },
                        {"name": "bob", "token": "tok-b"},
                    ],
                }
            )
        )
        registry = TenantRegistry.from_file(path)
        alice = registry.get("alice")
        assert alice.share == 2.0
        assert alice.rate_per_minute == 120
        assert alice.burst == 10
        assert alice.max_pending == 4
        assert registry.get("bob").share == 1.0

    def test_unknown_keys_rejected(self, tmp_path):
        path = tmp_path / "tokens.json"
        path.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "tenants": [
                        {"name": "a", "token": "t", "privileges": "all"}
                    ],
                }
            )
        )
        with pytest.raises(EngineError):
            TenantRegistry.from_file(path)

    def test_missing_file_and_bad_json_raise(self, tmp_path):
        with pytest.raises(EngineError):
            TenantRegistry.from_file(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(EngineError):
            TenantRegistry.from_file(bad)
