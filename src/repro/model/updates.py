"""Pure update math: Theorems 1 and 2 and the Eq. 12 root-finder.

These functions operate on per-block arrays and contain no model state,
so they can be unit-tested against brute-force KL minimization on tiny
instances. The stateful bookkeeping lives in
:class:`repro.model.background.BackgroundModel`.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.errors import ConvergenceError, ModelError
from repro.utils.linalg import solve_psd, symmetrize


def location_multiplier(
    covs: list[np.ndarray] | np.ndarray,
    counts: np.ndarray,
    means: list[np.ndarray] | np.ndarray,
    target_mean: np.ndarray,
) -> np.ndarray:
    """KKT multiplier of the Theorem 1 location update.

    Solves ``(sum_b c_b Sigma_b) lam = sum_b c_b (target - mu_b)``. The
    updated means are ``mu_b + Sigma_b lam``, which makes the expected
    subgroup mean exactly ``target_mean``. When all blocks share one
    covariance this reduces to the paper's printed form
    ``mu_i + mean_b(target - mu_b)`` (see DESIGN.md §2, correction 1).
    """
    counts = np.asarray(counts, dtype=float)
    if counts.sum() <= 0:
        raise ModelError("location update needs a non-empty extension")
    d = np.asarray(target_mean, dtype=float).shape[0]
    pooled = np.zeros((d, d))
    residual = np.zeros(d)
    for cov, count, mean in zip(covs, counts, means):
        if count == 0.0:
            continue
        pooled += count * cov
        residual += count * (target_mean - mean)
    return solve_psd(pooled, residual)


def spread_constraint_gap(
    lam: float,
    s: np.ndarray,
    e: np.ndarray,
    counts: np.ndarray,
    size: float,
    variance: float,
) -> float:
    """LHS minus RHS of Eq. 12 at multiplier ``lam``.

    ``s_b = w' Sigma_b w`` and ``e_b = w'(center - mu_b)`` per block;
    ``counts`` are block sizes inside the extension, ``size = |I|``.
    The function is strictly decreasing on the feasible domain
    ``lam > -1 / max(s)``, so its root is unique.
    """
    denom = 1.0 + lam * s
    if np.any(denom <= 0.0):
        raise ModelError(f"multiplier {lam} outside the feasible domain")
    lhs = float(np.sum(counts * (s / denom + (e / denom) ** 2)))
    return lhs - size * variance


def solve_spread_multiplier(
    s: np.ndarray,
    e: np.ndarray,
    counts: np.ndarray,
    size: float,
    variance: float,
    *,
    rtol: float = 1e-14,
    max_expansions: int = 200,
) -> float:
    """Unique root of Eq. 12 (the spread-update multiplier).

    Brackets the root between a point just inside the domain boundary
    ``-1/max(s)`` (where the gap diverges to +inf) and an exponentially
    expanded upper bound (the gap tends to ``-|I| * variance`` < 0), then
    runs Brent's method.
    """
    s = np.asarray(s, dtype=float)
    e = np.asarray(e, dtype=float)
    counts = np.asarray(counts, dtype=float)
    if s.shape != e.shape or s.shape != counts.shape:
        raise ModelError("s, e and counts must have matching shapes")
    if np.any(s <= 0.0):
        raise ModelError("all block variances w'Sigma w must be positive")
    if not variance > 0.0:
        raise ModelError(f"target variance must be positive, got {variance}")

    def gap(lam: float) -> float:
        return spread_constraint_gap(lam, s, e, counts, size, variance)

    s_max = float(s.max())
    lam_min = -1.0 / s_max
    # Walk from just inside the boundary until the gap is positive (it
    # diverges there, but extremely close to the boundary the floating
    # point denominator can underflow, so step back geometrically).
    lo = None
    for back_off in (1e-12, 1e-9, 1e-6, 1e-3):
        candidate = lam_min * (1.0 - back_off) if lam_min != 0.0 else -back_off
        if gap(candidate) > 0.0:
            lo = candidate
            break
    if lo is None:
        # The gap is already non-positive arbitrarily close to the
        # boundary: the root lies at/above lam_min only if gap(0) >= 0.
        lo = lam_min * (1.0 - 1e-3)

    hi = max(1.0, abs(lam_min))
    expansions = 0
    while gap(hi) > 0.0:
        hi *= 4.0
        expansions += 1
        if expansions > max_expansions:
            raise ConvergenceError(
                "could not bracket the spread multiplier",
                iterations=expansions,
            )
    if gap(lo) <= 0.0 and gap(hi) <= 0.0:
        # Degenerate corner: constraint already satisfied at the boundary.
        raise ConvergenceError("spread constraint has no feasible multiplier")
    # The multiplier's natural scale is 1/variance, which can be anywhere
    # from 1e-14 (huge targets) to 1e14 (tiny ones): converge *relative*
    # to lambda's magnitude, with a token absolute tolerance.
    return float(optimize.brentq(gap, lo, hi, xtol=1e-300, rtol=max(rtol, 4e-16)))


def spread_block_update(
    mean: np.ndarray,
    cov: np.ndarray,
    direction: np.ndarray,
    center: np.ndarray,
    lam: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Theorem 2 update of one block's parameters.

    Exponentially tilting ``N(mu, Sigma)`` by
    ``exp(-lam/2 * ((y - center)'w)^2)`` gives (Sherman-Morrison):

    - ``Sigma' = Sigma - lam * Sigma w w' Sigma / (1 + lam w'Sigma w)``
    - ``mu' = mu + lam * w'(center - mu) * Sigma w / (1 + lam w'Sigma w)``
    """
    sigma_w = cov @ direction
    s = float(direction @ sigma_w)
    denom = 1.0 + lam * s
    if denom <= 0.0:
        raise ModelError(
            f"spread update would destroy positive-definiteness (denom={denom})"
        )
    e = float(direction @ (center - mean))
    new_mean = mean + (lam * e / denom) * sigma_w
    new_cov = symmetrize(cov - (lam / denom) * np.outer(sigma_w, sigma_w))
    return new_mean, new_cov
