"""Tests for multivariate-normal utilities."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.errors import ModelError
from repro.model.gaussian import (
    kl_divergence,
    moment_from_natural,
    mvn_logpdf,
    natural_from_moment,
    validate_covariance,
)


def random_spd(rng, d):
    a = rng.standard_normal((d, d))
    return a @ a.T + d * np.eye(d)


class TestValidateCovariance:
    def test_rejects_asymmetric(self):
        with pytest.raises(ModelError, match="symmetric"):
            validate_covariance(np.array([[1.0, 0.5], [0.0, 1.0]]))

    def test_rejects_indefinite(self):
        with pytest.raises(ModelError, match="positive definite"):
            validate_covariance(np.diag([1.0, -1.0]))

    def test_rejects_rectangular(self):
        with pytest.raises(ModelError, match="square"):
            validate_covariance(np.zeros((2, 3)))

    def test_accepts_spd(self, rng):
        cov = random_spd(rng, 4)
        np.testing.assert_allclose(validate_covariance(cov), cov)


class TestMvnLogpdf:
    @pytest.mark.parametrize("d", [1, 2, 5])
    def test_matches_scipy(self, rng, d):
        mean = rng.standard_normal(d)
        cov = random_spd(rng, d)
        x = rng.standard_normal(d)
        expected = sps.multivariate_normal(mean=mean, cov=cov).logpdf(x)
        assert mvn_logpdf(x, mean, cov) == pytest.approx(expected, rel=1e-10)

    def test_semidefinite_fallback_is_finite(self):
        cov = np.diag([1.0, 0.0])
        value = mvn_logpdf(np.zeros(2), np.zeros(2), cov)
        assert np.isfinite(value)


class TestNaturalConversions:
    def test_roundtrip(self, rng):
        mean = rng.standard_normal(4)
        cov = random_spd(rng, 4)
        h, precision = natural_from_moment(mean, cov)
        mean2, cov2 = moment_from_natural(h, precision)
        np.testing.assert_allclose(mean2, mean, rtol=1e-9)
        np.testing.assert_allclose(cov2, cov, rtol=1e-9)

    def test_precision_is_inverse(self, rng):
        cov = random_spd(rng, 3)
        _, precision = natural_from_moment(np.zeros(3), cov)
        np.testing.assert_allclose(precision @ cov, np.eye(3), atol=1e-9)


class TestKLDivergence:
    def test_zero_for_identical(self, rng):
        mean = rng.standard_normal(3)
        cov = random_spd(rng, 3)
        assert kl_divergence(mean, cov, mean, cov) == pytest.approx(0.0, abs=1e-10)

    def test_positive(self, rng):
        cov = random_spd(rng, 3)
        a = rng.standard_normal(3)
        b = a + 1.0
        assert kl_divergence(a, cov, b, cov) > 0.0

    def test_known_univariate_value(self):
        # KL(N(0,1) || N(1,1)) = 1/2.
        value = kl_divergence(
            np.zeros(1), np.eye(1), np.ones(1), np.eye(1)
        )
        assert value == pytest.approx(0.5, rel=1e-10)

    def test_asymmetry(self, rng):
        cov_q = np.eye(2)
        cov_p = 2.0 * np.eye(2)
        a = kl_divergence(np.zeros(2), cov_q, np.zeros(2), cov_p)
        b = kl_divergence(np.zeros(2), cov_p, np.zeros(2), cov_q)
        assert a != pytest.approx(b)
