"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, main
from repro.engine.jobs import MiningJob
from repro.persist import save_jobs
from repro.search.config import SearchConfig


class TestDatasets:
    def test_lists_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("crime", "mammals", "socio", "synthetic", "water"):
            assert name in out


class TestExperimentsListing:
    def test_lists_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "table2" in out

    def test_registry_covers_all_paper_artifacts(self):
        expected = {f"fig{k}" for k in range(1, 11)} | {"table1", "table2"}
        assert set(EXPERIMENTS) == expected


class TestMine:
    def test_mine_synthetic(self, capsys):
        code = main(
            ["mine", "synthetic", "--iterations", "2", "--kind", "spread"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "iteration 1" in out
        assert "location:" in out
        assert "spread:" in out

    def test_mine_location_only(self, capsys):
        assert main(["mine", "synthetic", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "spread:" not in out

    def test_unknown_dataset_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["mine", "nope"])

    def test_custom_gamma(self, capsys):
        assert main(["mine", "synthetic", "--iterations", "1", "--gamma", "1.0"]) == 0

    def test_mine_with_workers(self, capsys):
        code = main(
            ["mine", "synthetic", "--iterations", "1", "--workers", "2",
             "--beam-width", "8", "--depth", "2"]
        )
        assert code == 0
        assert "location:" in capsys.readouterr().out


class TestBatch:
    @pytest.fixture()
    def jobs_file(self, tmp_path):
        config = SearchConfig(beam_width=6, max_depth=2, top_k=10)
        jobs = [
            MiningJob(dataset="synthetic", seed=s, config=config, name=f"job{s}")
            for s in range(4)
        ]
        return str(save_jobs(jobs, tmp_path / "jobs.json"))

    def test_batch_runs_jobs_concurrently(self, jobs_file, capsys):
        assert main(["batch", jobs_file, "--workers", "4"]) == 0
        out = capsys.readouterr().out
        for s in range(4):
            assert f"[job{s}]" in out
        assert "4 job(s) done" in out

    def test_batch_writes_output_document(self, jobs_file, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        code = main(["batch", jobs_file, "--workers", "2", "--output", str(out_path)])
        assert code == 0
        document = json.loads(out_path.read_text())
        assert len(document["results"]) == 4
        first = document["results"][0]
        assert first["job"]["dataset"] == "synthetic"
        assert first["iterations"][0]["location"]["type"] == "location_pattern"

    def test_batch_empty_file_fails_cleanly(self, tmp_path, capsys):
        # A malformed batch file is a ReproError, not a traceback.
        bad = tmp_path / "bad.json"
        bad.write_text('{"jobs": []}')
        assert main(["batch", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_batch_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_batch_isolates_failing_jobs(self, tmp_path, capsys):
        import json as json_module

        config = SearchConfig(beam_width=6, max_depth=2, top_k=10)
        jobs = [
            MiningJob(dataset="synthetic", config=config, name="good"),
            MiningJob(dataset="doesnotexist", config=config, name="bad"),
        ]
        jobs_file = str(save_jobs(jobs, tmp_path / "mixed.json"))
        out_path = tmp_path / "results.json"
        code = main(["batch", jobs_file, "--output", str(out_path)])
        assert code == 1  # a failure is reported in the exit code...
        out = capsys.readouterr().out
        assert "[good]" in out
        assert "[bad] FAILED:" in out
        document = json_module.loads(out_path.read_text())
        assert len(document["results"]) == 1  # ...but good work is kept
        assert len(document["failures"]) == 1

    def test_batch_unwritable_output_fails_cleanly(self, jobs_file, tmp_path, capsys):
        code = main(
            ["batch", jobs_file, "--output", str(tmp_path / "no-dir" / "out.json")]
        )
        assert code == 1
        assert "error: cannot write" in capsys.readouterr().err

    def test_batch_invalid_json_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "garbage.json"
        bad.write_text("{not json")
        assert main(["batch", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestExperimentCommand:
    def test_run_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "sisd" in capsys.readouterr().out
