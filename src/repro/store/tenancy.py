"""Tenants, bearer tokens, fair shares, and token-bucket rate limits.

The server's scheduler already orders work by priority, deadline, and
age. Tenancy adds the *who*: each authenticated tenant carries a
fair-share weight (fed into the scheduler's stride dimension) and an
optional request rate limit (enforced at the HTTP submit path with 429 +
``Retry-After``).

The registry is loaded from a JSON token file::

    {
      "schema": 1,
      "tenants": [
        {"name": "alice", "token": "s3cret", "share": 2.0,
         "rate_per_minute": 30, "burst": 10, "max_pending": 50},
        {"name": "bob",   "token": "hunter2"}
      ]
    }

``share`` defaults to 1.0 (equal weight); ``rate_per_minute`` and
``max_pending`` default to unlimited. Token buckets use an injectable
monotonic clock so rate-limit behaviour is exactly testable.
"""

from __future__ import annotations

import hmac
import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import EngineError

__all__ = ["Tenant", "TenantRegistry", "TokenBucket"]

_SCHEMA = 1


@dataclass(frozen=True)
class Tenant:
    """One authenticated principal and its service entitlements."""

    name: str
    token: str
    share: float = 1.0
    rate_per_minute: float | None = None
    burst: int = 5
    max_pending: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise EngineError("tenant name must be non-empty")
        if not self.token:
            raise EngineError(f"tenant {self.name!r}: token must be non-empty")
        if not self.share > 0.0:
            raise EngineError(
                f"tenant {self.name!r}: share must be > 0, got {self.share}"
            )
        if self.rate_per_minute is not None and not self.rate_per_minute > 0.0:
            raise EngineError(
                f"tenant {self.name!r}: rate_per_minute must be > 0, "
                f"got {self.rate_per_minute}"
            )
        if self.burst < 1:
            raise EngineError(
                f"tenant {self.name!r}: burst must be >= 1, got {self.burst}"
            )
        if self.max_pending is not None and self.max_pending < 1:
            raise EngineError(
                f"tenant {self.name!r}: max_pending must be >= 1, "
                f"got {self.max_pending}"
            )


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Not thread-safe by itself — the registry serializes access under the
    server's single submit path; standalone users should lock around
    :meth:`admit`.
    """

    def __init__(self, rate_per_second: float, burst: int, *, clock=time.monotonic):
        if not rate_per_second > 0.0:
            raise EngineError(
                f"rate_per_second must be > 0, got {rate_per_second}"
            )
        self.rate = float(rate_per_second)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def admit(self) -> tuple[bool, float]:
        """Try to take one token: ``(True, 0.0)`` or ``(False, retry_after)``."""
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate


class TenantRegistry:
    """Token → tenant resolution plus per-tenant admission control."""

    def __init__(self, tenants, *, clock=time.monotonic):
        tenants = tuple(tenants)
        if not tenants:
            raise EngineError("tenant registry needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise EngineError("tenant names must be unique")
        tokens = [t.token for t in tenants]
        if len(set(tokens)) != len(tokens):
            raise EngineError("tenant tokens must be unique")
        self.tenants = tenants
        self._by_name = {t.name: t for t in tenants}
        self._buckets = {
            t.name: TokenBucket(t.rate_per_minute / 60.0, t.burst, clock=clock)
            for t in tenants
            if t.rate_per_minute is not None
        }

    @classmethod
    def from_file(cls, path: str | Path, *, clock=time.monotonic) -> "TenantRegistry":
        """Load the registry from a JSON token file (format above)."""
        path = Path(path)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise EngineError(f"token file not found: {path}") from None
        except ValueError as exc:
            raise EngineError(f"token file {path} is not valid JSON: {exc}") from None
        if not isinstance(document, dict) or document.get("schema") != _SCHEMA:
            raise EngineError(
                f"token file {path}: expected {{'schema': {_SCHEMA}, 'tenants': [...]}}"
            )
        entries = document.get("tenants")
        if not isinstance(entries, list):
            raise EngineError(f"token file {path}: 'tenants' must be a list")
        allowed = {"name", "token", "share", "rate_per_minute", "burst", "max_pending"}
        tenants = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise EngineError(f"token file {path}: tenant entries must be objects")
            unknown = set(entry) - allowed
            if unknown:
                raise EngineError(
                    f"token file {path}: unknown tenant keys {sorted(unknown)}"
                )
            tenants.append(Tenant(**entry))
        return cls(tenants, clock=clock)

    def authenticate(self, token: str | None) -> Tenant | None:
        """The tenant owning ``token``, or None (constant-time compares)."""
        if not token:
            return None
        for tenant in self.tenants:
            if hmac.compare_digest(tenant.token, token):
                return tenant
        return None

    def get(self, name: str) -> Tenant:
        """The registered tenant called ``name`` (raises if unknown)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise EngineError(f"unknown tenant {name!r}") from None

    def admit(self, name: str) -> tuple[bool, float]:
        """Rate-limit check for one submit: ``(ok, retry_after_seconds)``."""
        bucket = self._buckets.get(name)
        if bucket is None:
            self.get(name)  # raise on unknown names even without a bucket
            return True, 0.0
        return bucket.admit()
