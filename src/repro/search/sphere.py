"""Unit-sphere manifold primitives for the spread-direction search.

The paper optimizes the spread objective over ``{w : w'w = 1}`` with
Manopt; these are the three operations a projected/Riemannian gradient
method needs — tangent projection, retraction, and random points — plus
a sign canonicalization (the objective is even in ``w``, so ``w`` and
``-w`` describe the same pattern).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SearchError
from repro.utils.rng import as_rng


def random_unit(rng, dim: int) -> np.ndarray:
    """Uniformly random point on the unit sphere in ``R^dim``."""
    if dim < 1:
        raise SearchError(f"dim must be >= 1, got {dim}")
    rng = as_rng(rng)
    while True:
        v = rng.standard_normal(dim)
        norm = float(np.linalg.norm(v))
        if norm > 1e-12:
            return v / norm


def project_tangent(w: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Project ``v`` onto the tangent space of the sphere at ``w``."""
    w = np.asarray(w, dtype=float)
    v = np.asarray(v, dtype=float)
    return v - float(w @ v) * w


def retract(w: np.ndarray, step: np.ndarray) -> np.ndarray:
    """Metric-projection retraction: move and renormalize."""
    u = np.asarray(w, dtype=float) + np.asarray(step, dtype=float)
    norm = float(np.linalg.norm(u))
    if norm <= 1e-300:
        raise SearchError("retraction collapsed to the origin")
    return u / norm


def canonical_sign(w: np.ndarray) -> np.ndarray:
    """Flip ``w`` so its largest-magnitude entry is positive.

    The spread statistic is quadratic in ``w``; fixing the sign makes
    results reproducible and comparable across runs.
    """
    w = np.asarray(w, dtype=float)
    pivot = int(np.argmax(np.abs(w)))
    return -w if w[pivot] < 0 else w.copy()
