"""Tests for the LRU cache and spec fingerprints."""

import numpy as np
import pytest

from repro.engine.cache import (
    LRUCache,
    dataset_fingerprint,
    fingerprint,
    load_dataset_cached,
)
from repro.errors import EngineError


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 7) == 7

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_overwrite_does_not_grow(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2

    def test_stats_count_hits_misses_evictions(self):
        cache = LRUCache(1)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts "a"
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestFingerprint:
    def test_dict_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_tuple_equals_list(self):
        assert fingerprint((1, 2, 3)) == fingerprint([1, 2, 3])

    def test_numpy_scalars_and_arrays_normalize(self):
        assert fingerprint(np.int64(3)) == fingerprint(3)
        assert fingerprint(np.array([1.0, 2.0])) == fingerprint([1.0, 2.0])

    def test_distinguishes_values(self):
        assert fingerprint({"seed": 0}) != fingerprint({"seed": 1})

    def test_rejects_unserializable(self):
        with pytest.raises(EngineError):
            fingerprint(object())

    def test_dataset_fingerprint_includes_kwargs(self):
        assert dataset_fingerprint("synthetic", 0) != dataset_fingerprint(
            "synthetic", 0, {"flip_probability": 0.1}
        )


class TestLoadDatasetCached:
    def test_second_load_is_a_hit(self):
        cache = LRUCache(4)
        first = load_dataset_cached("synthetic", seed=0, cache=cache)
        second = load_dataset_cached("synthetic", seed=0, cache=cache)
        assert first is second
        assert cache.stats.hits == 1

    def test_different_seed_is_a_miss(self):
        cache = LRUCache(4)
        first = load_dataset_cached("synthetic", seed=0, cache=cache)
        other = load_dataset_cached("synthetic", seed=1, cache=cache)
        assert first is not other
        assert len(cache) == 2


class TestFingerprintNonFinite:
    """Regression: NaN/Inf are not JSON; they must fail loudly, not
    serialize as the non-canonical NaN/Infinity tokens."""

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), float("-inf")]
    )
    def test_bare_non_finite_float_rejected(self, value):
        with pytest.raises(EngineError, match="non-finite"):
            fingerprint(value)

    def test_nested_non_finite_rejected(self):
        with pytest.raises(EngineError, match="non-finite"):
            fingerprint({"config": {"gamma": float("nan")}})
        with pytest.raises(EngineError, match="non-finite"):
            fingerprint([1.0, (2.0, float("inf"))])

    def test_numpy_non_finite_rejected(self):
        with pytest.raises(EngineError, match="non-finite"):
            fingerprint(np.float64("nan"))
        with pytest.raises(EngineError, match="non-finite"):
            fingerprint(np.array([1.0, np.inf]))

    def test_finite_floats_still_fingerprint(self):
        assert fingerprint(1.5) == fingerprint(1.5)
        assert fingerprint(np.float64(2.5)) == fingerprint(2.5)


class TestLoadDatasetCachedConcurrency:
    """Regression: concurrent misses must load a dataset exactly once."""

    def test_thread_hammer_loads_once(self, monkeypatch):
        import threading
        import time

        import repro.datasets.registry as registry

        calls = []
        real_load = registry.load_dataset

        def slow_load(name, seed=0, **kwargs):
            calls.append(threading.get_ident())
            time.sleep(0.05)  # widen the stampede window
            return real_load(name, seed=seed, **kwargs)

        monkeypatch.setattr(registry, "load_dataset", slow_load)
        cache = LRUCache(4)
        n_threads = 12
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads
        errors = []

        def hammer(slot):
            try:
                barrier.wait()
                results[slot] = load_dataset_cached(
                    "synthetic", seed=123, cache=cache
                )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(slot,))
            for slot in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(calls) == 1, f"stampede: dataset loaded {len(calls)} times"
        assert all(result is results[0] for result in results)

    def test_distinct_keys_do_not_serialize_on_one_lock(self, monkeypatch):
        import repro.datasets.registry as registry

        calls = []
        real_load = registry.load_dataset

        def counting_load(name, seed=0, **kwargs):
            calls.append(seed)
            return real_load(name, seed=seed, **kwargs)

        monkeypatch.setattr(registry, "load_dataset", counting_load)
        cache = LRUCache(4)
        load_dataset_cached("synthetic", seed=7, cache=cache)
        load_dataset_cached("synthetic", seed=8, cache=cache)
        assert sorted(calls) == [7, 8]

    def test_none_is_a_cacheable_value(self, monkeypatch):
        """The miss sentinel is distinct from None (the old sentinel)."""
        import repro.datasets.registry as registry

        from repro.engine.cache import dataset_fingerprint

        cache = LRUCache(4)
        cache.put(dataset_fingerprint("synthetic", 99, {}), None)

        def exploding_load(name, seed=0, **kwargs):  # pragma: no cover
            raise AssertionError("cached None must not trigger a reload")

        monkeypatch.setattr(registry, "load_dataset", exploding_load)
        assert load_dataset_cached("synthetic", seed=99, cache=cache) is None


class TestByteBoundedLRU:
    def test_byte_budget_evicts_lru_until_fit(self):
        cache = LRUCache(100, max_bytes=100, sizeof=len)
        cache.put("a", b"x" * 40)
        cache.put("b", b"x" * 40)
        assert cache.total_bytes == 80
        cache.get("a")  # refresh: "b" is now least recently used
        cache.put("c", b"x" * 40)  # 120 > 100 -> evict "b"
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.total_bytes == 80
        assert cache.stats.evictions == 1

    def test_overwrite_reprices_the_entry(self):
        cache = LRUCache(100, max_bytes=100, sizeof=len)
        cache.put("a", b"x" * 90)
        cache.put("a", b"x" * 10)
        assert cache.total_bytes == 10
        cache.put("b", b"x" * 80)
        assert "a" in cache and "b" in cache

    def test_single_oversized_entry_is_admitted(self):
        cache = LRUCache(100, max_bytes=50, sizeof=len)
        cache.put("small", b"x" * 10)
        cache.put("huge", b"x" * 500)
        assert "huge" in cache
        assert "small" not in cache  # evicted trying to make room
        assert len(cache) == 1

    def test_clear_resets_the_byte_ledger(self):
        cache = LRUCache(8, max_bytes=100, sizeof=len)
        cache.put("a", b"x" * 60)
        cache.clear()
        assert cache.total_bytes == 0
        cache.put("b", b"x" * 60)
        assert "b" in cache

    def test_bounds_must_be_coherent(self):
        with pytest.raises(ValueError):
            LRUCache(4, max_bytes=10)  # sizeof missing
        with pytest.raises(ValueError):
            LRUCache(4, sizeof=len)  # max_bytes missing
        with pytest.raises(ValueError):
            LRUCache(4, max_bytes=0, sizeof=len)


class TestEstimatedNbytes:
    def test_arrays_dominate_the_price(self):
        from repro.engine.cache import estimated_nbytes

        small = estimated_nbytes({"a": 1, "b": "xy"})
        big = estimated_nbytes(np.zeros(100_000))
        assert big >= 800_000
        assert small < 1_000

    def test_shared_arrays_are_priced_once(self):
        from repro.engine.cache import estimated_nbytes

        arr = np.zeros(10_000)
        assert estimated_nbytes([arr, arr]) < 2 * estimated_nbytes(arr)

    def test_prices_real_cached_steps(self):
        from repro.engine.cache import CachedStep, estimated_nbytes
        from repro.api import Workspace
        from repro.spec import MiningSpec

        spec = MiningSpec.build(
            "synthetic", n_iterations=1, beam_width=6, max_depth=2, top_k=10
        )
        result = Workspace().mine(spec)
        step = CachedStep(
            iteration=result.iterations[0],
            constraints=(result.iterations[0].location.constraint(),),
            rng_state={"state": 1},
        )
        priced = estimated_nbytes(step)
        floor = (
            result.iterations[0].location.indices.nbytes
            + result.iterations[0].location.mean.nbytes
        )
        assert priced >= floor


class TestBeliefCacheByteBound:
    def test_byte_bound_evicts_old_steps(self):
        from repro.engine.cache import BeliefCache, CachedStep

        def step(n):
            return CachedStep(
                iteration=np.zeros(n), constraints=(), rng_state={}
            )

        cache = BeliefCache(maxsize=100, max_bytes=10_000)
        for i in range(10):
            cache.put(f"k{i}", step(512))  # ~4 KB each
        assert len(cache) < 10
        assert cache.total_bytes <= 10_000
        assert cache.stats.evictions > 0

    def test_none_restores_count_bounding(self):
        from repro.engine.cache import BeliefCache, CachedStep

        cache = BeliefCache(maxsize=3, max_bytes=None)
        for i in range(5):
            cache.put(
                f"k{i}",
                CachedStep(iteration=np.zeros(100), constraints=(), rng_state={}),
            )
        assert len(cache) == 3
        assert cache.total_bytes == 0

    def test_default_cache_is_byte_bounded(self):
        from repro.engine.cache import (
            BELIEF_CACHE,
            DEFAULT_BELIEF_CACHE_BYTES,
            BeliefCache,
        )

        assert BeliefCache().max_bytes == DEFAULT_BELIEF_CACHE_BYTES
        assert BELIEF_CACHE.max_bytes == DEFAULT_BELIEF_CACHE_BYTES
