"""Distributed executor: shard round-trip cost and fleet scaling.

Prices what ``repro.dist`` adds on top of the serial engine:

- **shard RTT**: one tiny ``session.map`` round trip to a live worker
  daemon — the floor every remote shard pays (HTTP + pickle both ways);
- **fleet scaling**: the same beam search run serially, against one
  worker node, and against two, with candidates/second for each (the
  determinism contract is asserted on every run: the distributed
  results must match the serial ones bit-for-bit).

Results go to ``BENCH_dist.json`` at the repo root (the perf
trajectory file, like the engine and server benchmarks'). Runs
standalone too::

    PYTHONPATH=src python benchmarks/bench_dist.py
"""

import json
import os
import time
from pathlib import Path

from bench_schema import envelope
from repro.datasets import make_synthetic
from repro.dist.executor import DistExecutor
from repro.dist.worker import WorkerDaemon
from repro.engine.executor import SerialExecutor
from repro.report.tables import format_table
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_dist.json"

#: Wide beam: enough candidates per level for shards to matter.
CONFIG = SearchConfig(beam_width=20, max_depth=3, top_k=60)


def _ping(context, item):
    return item


def _search(dataset, executor):
    return SubgroupDiscovery(
        dataset, config=CONFIG, seed=0, executor=executor
    ).search_locations()


def _assert_identical(serial, distributed):
    assert serial.n_evaluated == distributed.n_evaluated
    for a, b in zip(serial.log, distributed.log):
        assert a.description == b.description
        assert a.score.ic == b.score.ic
        assert a.score.dl == b.score.dl


def measure(seed: int = 0) -> list:
    dataset = make_synthetic(seed)
    workers = [WorkerDaemon(parallelism=2) for _ in range(2)]
    handles = [worker.run_in_thread() for worker in workers]
    urls = [worker.url for worker in workers]
    try:
        # Shard RTT: a minimal round trip after the context is warm.
        with DistExecutor(urls[:1], local_fallback=False) as executor:
            with executor.session("rtt") as session:
                session.map(_ping, [0])  # ships the context
                started = time.perf_counter()
                rounds = 50
                for _ in range(rounds):
                    session.map(_ping, [0])
                rtt_ms = (time.perf_counter() - started) / rounds * 1000

        started = time.perf_counter()
        serial = _search(dataset, SerialExecutor())
        serial_seconds = time.perf_counter() - started

        timings = {}
        for count in (1, 2):
            with DistExecutor(urls[:count], local_fallback=False) as executor:
                started = time.perf_counter()
                distributed = _search(dataset, executor)
                timings[count] = time.perf_counter() - started
                assert executor.stats["shards_remote"] > 0
                assert executor.stats["shards_local"] == 0
            _assert_identical(serial, distributed)
    finally:
        for handle in handles:
            handle.stop()

    rate = serial.n_evaluated / serial_seconds
    rows = [("serial", serial_seconds, f"{rate:,.0f} cand/s")]
    for count, seconds in timings.items():
        rows.append(
            (
                f"{count} worker node(s)",
                seconds,
                f"{serial.n_evaluated / seconds:,.0f} cand/s, "
                f"x{serial_seconds / seconds:.2f} vs serial",
            )
        )
    rows.append(("shard round trip", rtt_ms / 1000, "warm context, 1 item"))

    JSON_PATH.write_text(
        json.dumps(
            envelope({
                "benchmark": "dist",
                "cpu_count": os.cpu_count(),
                "n_evaluated": serial.n_evaluated,
                "shard_rtt_ms": round(rtt_ms, 3),
                "serial_seconds": round(serial_seconds, 4),
                "node_seconds": {
                    str(count): round(seconds, 4)
                    for count, seconds in timings.items()
                },
                "speedup_vs_serial": {
                    str(count): round(serial_seconds / seconds, 3)
                    for count, seconds in timings.items()
                },
                "bit_identical": True,  # asserted above, every node count
            }),
            indent=2,
        )
        + "\n"
    )
    return rows


def bench_dist(benchmark, save_result):
    rows = benchmark.pedantic(measure, args=(0,), rounds=1, iterations=1)
    table = format_table(
        ["path", "seconds", "note"],
        rows,
        floatfmt=".4f",
        title=f"Distributed executor ({os.cpu_count()} core(s) available)",
    )
    save_result("dist", table)
    assert len(rows) == 4
    assert JSON_PATH.exists()


if __name__ == "__main__":  # pragma: no cover - manual/CI entry point
    for row in measure(0):
        print(row)
    print(f"wrote {JSON_PATH}")
