"""Tests for repro.utils.timer."""

import math
import time

import pytest

from repro.utils.timer import Stopwatch, TimeBudget


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        assert first >= 0.009
        with sw:
            time.sleep(0.01)
        assert sw.elapsed > first

    def test_double_start_raises(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running

    def test_elapsed_while_running(self):
        sw = Stopwatch().start()
        time.sleep(0.005)
        assert sw.elapsed > 0.0
        assert sw.running
        sw.stop()


class TestTimeBudget:
    def test_unlimited_never_expires(self):
        budget = TimeBudget(None)
        assert not budget.expired
        assert budget.remaining == math.inf

    def test_zero_budget_expires_immediately(self):
        assert TimeBudget(0.0).expired

    def test_expiry(self):
        budget = TimeBudget(0.01)
        assert not budget.expired
        time.sleep(0.015)
        assert budget.expired
        assert budget.remaining == 0.0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            TimeBudget(-1.0)

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            TimeBudget(float("nan"))
