"""Shared per-file analysis context: parse once, every rule reads it.

:class:`SourceFile` is the file-cache/symbol-table layer under the lint
engine. Each file is read, parsed, and indexed exactly once per run —
rules receive the finished :class:`SourceFile` and stay O(files):

- :attr:`tree` — the ``ast`` module tree, with parent links
  (:meth:`parent`, :meth:`ancestors`, :meth:`enclosing_function`);
- :attr:`imports` — local name → fully qualified module/object name, so
  rules match ``np.random.rand`` and ``numpy.random.rand`` identically
  (:meth:`qualname` does the resolution);
- pragma index — ``# sisd: ignore[RULE1,RULE2] reason`` comments, on
  the flagged line or on a comment-only line immediately above it
  (:meth:`ignored_rules`); ``ignore[*]`` silences every rule;
- ``# sisd: critical`` — a file-level marker opting the module into the
  determinism rule pack outside the built-in critical-path list.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator

__all__ = ["SourceFile"]

#: ``# sisd: ignore[DET001]`` / ``# sisd: ignore[DET001,ASY001] reason``.
_PRAGMA = re.compile(r"#\s*sisd:\s*ignore\[([A-Za-z0-9_*,\s]+)\]")

#: ``# sisd: critical`` — opt a module into the determinism pack.
_CRITICAL = re.compile(r"#\s*sisd:\s*critical\b")

#: AST nodes that introduce a function scope.
_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


class SourceFile:
    """One parsed python file plus the indexes every rule shares."""

    def __init__(self, path: Path, text: str, *, display_path: str | None = None):
        self.path = Path(path)
        self.text = text
        self.lines = text.splitlines()
        #: Forward-slash path shown in findings (stable across machines).
        self.display_path = display_path or self.path.as_posix()
        self.tree = ast.parse(text, filename=str(path))
        self._parents: dict[int, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node
        self.imports = self._index_imports()
        self._pragmas = self._index_pragmas()
        self.marked_critical = any(
            _CRITICAL.search(line) for line in self.lines
        )

    @classmethod
    def from_path(cls, path: Path, *, root: Path | None = None) -> "SourceFile":
        """Read and parse ``path``; ``root`` relativizes the display path."""
        path = Path(path)
        display = None
        if root is not None:
            try:
                display = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                display = path.as_posix()
        return cls(path, path.read_text(encoding="utf-8"), display_path=display)

    # ------------------------------------------------------------------ #
    # Indexes
    # ------------------------------------------------------------------ #
    def _index_imports(self) -> dict[str, str]:
        table: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds
                    # ``c`` to the full dotted path.
                    table[bound] = alias.name if alias.asname else bound
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    table[bound] = f"{node.module}.{alias.name}"
        return table

    def _index_pragmas(self) -> dict[int, frozenset[str]]:
        pragmas: dict[int, set[str]] = {}
        for lineno, raw in enumerate(self.lines, 1):
            match = _PRAGMA.search(raw)
            if match is None:
                continue
            rules = {
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            }
            pragmas.setdefault(lineno, set()).update(rules)
            if raw.strip().startswith("#"):
                # Comment-only line: the pragma covers the next line
                # that actually holds code.
                for later in range(lineno + 1, len(self.lines) + 1):
                    if self.lines[later - 1].strip():
                        pragmas.setdefault(later, set()).update(rules)
                        break
        return {line: frozenset(rules) for line, rules in pragmas.items()}

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def line(self, lineno: int) -> str:
        """The 1-based source line, or '' past EOF (defensive)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def ignored_rules(self, lineno: int) -> frozenset[str]:
        """Rule ids pragma-silenced on ``lineno`` (may contain ``*``)."""
        return self._pragmas.get(lineno, frozenset())

    def is_ignored(self, rule: str, lineno: int) -> bool:
        """True when a pragma on/above ``lineno`` silences ``rule``."""
        ignored = self.ignored_rules(lineno)
        return "*" in ignored or rule in ignored

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The direct parent of ``node`` in the tree (None for the root)."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Enclosing nodes, innermost first."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        """The nearest function scope holding ``node``, or None."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, _FUNCTIONS):
                return ancestor
        return None

    def qualname(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to a dotted name.

        Leading names go through the import table, so ``np.random.rand``
        resolves to ``numpy.random.rand`` when the file did
        ``import numpy as np``. Returns None for anything that is not a
        plain dotted chain (subscripts, calls, literals).
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def scopes(self) -> Iterator[ast.AST]:
        """The module node plus every function definition, outer first."""
        yield self.tree
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


def scope_statements(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function scopes."""
    body = getattr(scope, "body", [])
    stack = list(body) if isinstance(body, list) else [body]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _FUNCTIONS):
            continue  # nested scope: its statements belong to it
        stack.extend(ast.iter_child_nodes(node))
