"""Durability + tenancy over the wire: restart, auth, quotas, caching.

End-to-end through real sockets: a :class:`MiningServer` on a durable
store is killed and relaunched on the same store, and the restarted
server must serve the pre-restart results **bit-identically** without
recomputing; bearer auth answers 401, rate limits answer 429 with
``Retry-After``; result GETs negotiate gzip and revalidate with ETags;
and every SSE frame carries the server's stream generation so clients
detect restarts instead of misaligning their sequence numbers.
"""

import gzip
import itertools
import json
import time
from http.client import HTTPConnection

import pytest

from repro.client import RemoteError, RemoteWorkspace, ServerRestarted
from repro.engine.jobs import MiningJob
from repro.persist import job_result_to_dict
from repro.search.config import SearchConfig
from repro.server import MiningServer

FAST = SearchConfig(beam_width=6, max_depth=2, top_k=10)


def _job(seed=0, **kwargs):
    kwargs.setdefault("n_iterations", 2)
    kwargs.setdefault("kind", "spread")
    return MiningJob(dataset="synthetic", seed=seed, config=FAST, **kwargs)


def _token_file(tmp_path, tenants):
    path = tmp_path / "tokens.json"
    path.write_text(json.dumps({"schema": 1, "tenants": tenants}))
    return path


@pytest.fixture()
def store_path(tmp_path):
    return tmp_path / "store"


class TestRestartRoundTrip:
    def test_results_survive_bit_identically_and_instantly(self, store_path):
        server = MiningServer(port=0, backend="thread", store=store_path)
        with server.run_in_thread():
            ws = RemoteWorkspace(server.url, timeout=30.0)
            first_generation = ws.health()["generation"]
            assert ws.health()["durable"]
            ids = [ws.submit(_job(seed=s)) for s in (0, 1)]
            docs = {
                i: job_result_to_dict(ws.result(i, 120)) for i in ids
            }

        relaunch = MiningServer(port=0, backend="thread", store=store_path)
        with relaunch.run_in_thread():
            ws = RemoteWorkspace(relaunch.url, timeout=30.0)
            health = ws.health()
            assert health["generation"] != first_generation
            # Recovered terminal jobs are served from the store: the
            # status is immediately DONE and the wait is ~zero because
            # nothing is recomputed.
            started = time.monotonic()
            for i in ids:
                assert job_result_to_dict(ws.result(i, 10)) == docs[i]
            assert time.monotonic() - started < 5.0
            assert health["jobs"]["by_status"].get("done") == 2
            # A durable server surfaces its store's vitals: recovered
            # record count, journal compaction lag, and the belief
            # spill's hit accounting.
            store_health = ws.health()["store"]
            assert store_health["records"] == 2
            assert store_health["journal_lag"] >= 0
            spill = store_health["belief_spill"]
            assert {"hits", "misses", "stores", "errors", "hit_rate"} <= set(
                spill
            )
            assert spill["hit_rate"] is None or 0.0 <= spill["hit_rate"] <= 1.0

    def test_stream_on_restarted_server_heals_from_the_store(self, store_path):
        spec = _job(seed=3)
        server = MiningServer(port=0, backend="thread", store=store_path)
        with server.run_in_thread():
            ws = RemoteWorkspace(server.url, timeout=30.0)
            cold = list(ws.stream(spec))
            assert [it.index for it in cold] == [1, 2]

        relaunch = MiningServer(
            port=0, backend="thread", store=store_path, heartbeat_seconds=0.2
        )
        with relaunch.run_in_thread():
            ws = RemoteWorkspace(relaunch.url, timeout=30.0)
            # Resubmitting the same spec coalesces onto the recovered
            # terminal record; the job emits no fresh events, so the
            # stream must heal every iteration from the stored result.
            warm = list(ws.stream(spec))
        assert len(warm) == len(cold)
        for a, b in zip(warm, cold):
            assert a.index == b.index
            assert a.location.score.ic == b.location.score.ic
            assert a.location.description == b.location.description


class TestAuth:
    @pytest.fixture()
    def server(self, tmp_path):
        tokens = _token_file(
            tmp_path,
            [{"name": "alice", "token": "tok-alice", "share": 2.0}],
        )
        server = MiningServer(port=0, backend="thread", auth=tokens)
        with server.run_in_thread():
            yield server

    def test_health_stays_open(self, server):
        assert RemoteWorkspace(server.url).health()["auth"] is True

    def test_missing_token_is_401(self, server):
        with pytest.raises(RemoteError) as excinfo:
            RemoteWorkspace(server.url).jobs()
        assert excinfo.value.status == 401

    def test_wrong_token_is_401_with_challenge(self, server):
        conn = HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request(
                "GET", "/jobs", headers={"Authorization": "Bearer wrong"}
            )
            response = conn.getresponse()
            assert response.status == 401
            assert "Bearer" in response.headers["WWW-Authenticate"]
            response.read()
        finally:
            conn.close()

    def test_events_require_a_token_too(self, server):
        with pytest.raises(RemoteError) as excinfo:
            next(iter(RemoteWorkspace(server.url).events(reconnect=False)))
        assert excinfo.value.status == 401

    def test_valid_token_works_end_to_end(self, server):
        ws = RemoteWorkspace(server.url, token="tok-alice", timeout=30.0)
        result = ws.mine(_job(seed=11))
        assert [it.index for it in result.iterations] == [1, 2]


class TestRateLimits:
    def test_429_with_retry_after(self, tmp_path):
        tokens = _token_file(
            tmp_path,
            [
                {
                    "name": "bursty",
                    "token": "tok-b",
                    "rate_per_minute": 60,
                    "burst": 2,
                }
            ],
        )
        server = MiningServer(port=0, backend="thread", auth=tokens)
        with server.run_in_thread():
            ws = RemoteWorkspace(server.url, token="tok-b", timeout=30.0)
            ws.submit(_job(seed=0))
            ws.submit(_job(seed=1))
            # Burst exhausted: the next submit is refused with guidance.
            conn = HTTPConnection(server.host, server.port, timeout=10)
            try:
                conn.request(
                    "POST",
                    "/jobs",
                    body=json.dumps({"job": _job_doc(seed=2)}),
                    headers={
                        "Authorization": "Bearer tok-b",
                        "Content-Type": "application/json",
                    },
                )
                response = conn.getresponse()
                assert response.status == 429
                assert float(response.headers["Retry-After"]) > 0
                response.read()
            finally:
                conn.close()

    def test_max_pending_quota(self, tmp_path):
        tokens = _token_file(
            tmp_path,
            [{"name": "capped", "token": "tok-c", "max_pending": 1}],
        )
        server = MiningServer(
            port=0, backend="thread", max_workers=1, auth=tokens
        )
        with server.run_in_thread():
            ws = RemoteWorkspace(server.url, token="tok-c", timeout=30.0)
            # One live (queued or running) submission occupies the whole
            # quota; a long fresh mine keeps it live across the next
            # submit's round trip.
            first = ws.submit(_job(seed=31, n_iterations=10))
            with pytest.raises(RemoteError) as excinfo:
                ws.submit(_job(seed=32))
            assert excinfo.value.status == 429
            ws.result(first, 180)
            # Quota frees up once the first job settles.
            ws.result(ws.submit(_job(seed=33)), 120)


def _job_doc(seed):
    from repro.persist import job_to_dict

    return job_to_dict(_job(seed=seed))


class TestContentNegotiation:
    @pytest.fixture()
    def served_result(self, store_path):
        server = MiningServer(port=0, backend="thread", store=store_path)
        with server.run_in_thread():
            ws = RemoteWorkspace(server.url, timeout=30.0)
            job_id = ws.submit(_job(seed=21))
            ws.result(job_id, 120)
            yield server, ws, job_id

    def test_gzip_and_etag_headers(self, served_result):
        server, _, job_id = served_result
        conn = HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request(
                "GET",
                f"/jobs/{job_id}/result",
                headers={"Accept-Encoding": "gzip"},
            )
            response = conn.getresponse()
            body = response.read()
            assert response.status == 200
            assert response.headers["Content-Encoding"] == "gzip"
            assert response.headers["Vary"] == "Accept-Encoding"
            etag = response.headers["ETag"]
            assert etag.startswith('"') and etag.endswith('"')
            document = json.loads(gzip.decompress(body))
            assert document["status"] == "done"

            # Revalidation: the same ETag answers 304 with no body.
            conn.request(
                "GET",
                f"/jobs/{job_id}/result",
                headers={"If-None-Match": etag},
            )
            response = conn.getresponse()
            assert response.status == 304
            assert response.read() == b""
            assert response.headers["ETag"] == etag
        finally:
            conn.close()

    def test_identity_without_accept_encoding(self, served_result):
        server, _, job_id = served_result
        conn = HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request(
                "GET", f"/jobs/{job_id}/result", headers={"Accept-Encoding": ""}
            )
            response = conn.getresponse()
            body = response.read()
            assert response.status == 200
            assert "Content-Encoding" not in response.headers
            assert json.loads(body)["status"] == "done"
        finally:
            conn.close()

    def test_client_revalidates_transparently(self, served_result):
        _, ws, job_id = served_result
        first = job_result_to_dict(ws.result(job_id, 10))
        assert ws.wire_stats["gzip_responses"] >= 1
        again = job_result_to_dict(ws.result(job_id, 10))
        assert ws.wire_stats["revalidated"] >= 1
        assert first == again


class TestGenerations:
    def test_sse_frames_carry_the_generation(self, store_path):
        server = MiningServer(port=0, backend="thread", store=store_path)
        with server.run_in_thread():
            ws = RemoteWorkspace(server.url, timeout=30.0)
            ws.result(ws.submit(_job(seed=41)), 120)
            feed = ws.events(since=0, reconnect=False)
            events = list(itertools.islice(feed, 3))
            feed.close()
        assert {e.raw.get("gen") for e in events} == {server.generation}

    def test_generation_mismatch_raises_server_restarted(self, store_path):
        server = MiningServer(port=0, backend="thread", store=store_path)
        with server.run_in_thread():
            ws = RemoteWorkspace(server.url, timeout=30.0)
            ws.result(ws.submit(_job(seed=42)), 120)
            feed = ws.events(
                since=0, reconnect=False, generation="an-older-boot"
            )
            with pytest.raises(ServerRestarted) as excinfo:
                next(iter(feed))
            feed.close()
        assert excinfo.value.old_generation == "an-older-boot"
        assert excinfo.value.new_generation == server.generation

    def test_submit_response_carries_gen(self, store_path):
        server = MiningServer(port=0, backend="thread", store=store_path)
        with server.run_in_thread():
            ws = RemoteWorkspace(server.url, timeout=30.0)
            _, document = ws._request(
                "POST", "/jobs", {"job": _job_doc(seed=43)}
            )
            assert document["gen"] == server.generation

    def test_generations_increase_across_boots(self, store_path):
        generations = []
        for _ in range(2):
            server = MiningServer(port=0, backend="thread", store=store_path)
            with server.run_in_thread():
                generations.append(int(server.generation))
        assert generations[0] < generations[1]


class TestCliWiring:
    def test_serve_accepts_store_and_auth_flags(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            ["serve", "--store", "/tmp/s", "--auth", "/tmp/t.json"]
        )
        assert args.store == "/tmp/s"
        assert args.auth == "/tmp/t.json"

    def test_serve_defaults_stay_storeless(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["serve"])
        assert args.store is None
        assert args.auth is None
