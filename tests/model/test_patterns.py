"""Tests for pattern-constraint records."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.patterns import LocationConstraint, SpreadConstraint


class TestLocationConstraint:
    def test_from_data_computes_mean(self, rng):
        targets = rng.standard_normal((20, 3))
        constraint = LocationConstraint.from_data(targets, np.arange(5))
        np.testing.assert_allclose(constraint.mean, targets[:5].mean(axis=0))
        assert constraint.size == 5

    def test_accepts_boolean_mask(self, rng):
        targets = rng.standard_normal((10, 2))
        mask = np.zeros(10, dtype=bool)
        mask[[2, 7]] = True
        constraint = LocationConstraint.from_data(targets, mask)
        np.testing.assert_array_equal(constraint.indices, [2, 7])

    def test_indices_sorted_unique(self):
        constraint = LocationConstraint(np.array([5, 1, 5, 3]), np.zeros(2))
        np.testing.assert_array_equal(constraint.indices, [1, 3, 5])

    def test_empty_rejected(self):
        with pytest.raises(ModelError, match="non-empty"):
            LocationConstraint(np.array([], dtype=int), np.zeros(2))

    def test_negative_index_rejected(self):
        with pytest.raises(ModelError, match="negative"):
            LocationConstraint(np.array([-1, 2]), np.zeros(2))

    def test_out_of_range_in_from_data(self, rng):
        targets = rng.standard_normal((5, 2))
        with pytest.raises(ModelError, match="out of range"):
            LocationConstraint.from_data(targets, np.array([7]))

    def test_mask_roundtrip(self):
        constraint = LocationConstraint(np.array([0, 3]), np.zeros(1))
        mask = constraint.mask(5)
        np.testing.assert_array_equal(mask, [True, False, False, True, False])

    def test_immutable(self):
        constraint = LocationConstraint(np.array([0, 1]), np.zeros(2))
        with pytest.raises(ValueError):
            constraint.indices[0] = 9
        with pytest.raises(ValueError):
            constraint.mean[0] = 9.0


class TestSpreadConstraint:
    def test_from_data_variance(self, rng):
        targets = rng.standard_normal((30, 2))
        w = np.array([1.0, 0.0])
        constraint = SpreadConstraint.from_data(targets, np.arange(10), w)
        sub = targets[:10, 0]
        np.testing.assert_allclose(
            constraint.variance, np.mean((sub - sub.mean()) ** 2)
        )
        np.testing.assert_allclose(constraint.center, targets[:10].mean(axis=0))

    def test_direction_must_be_unit(self):
        with pytest.raises(ValueError, match="unit"):
            SpreadConstraint(np.array([0, 1]), np.array([1.0, 1.0]), 1.0, np.zeros(2))

    def test_variance_must_be_positive(self):
        with pytest.raises(ModelError, match="positive"):
            SpreadConstraint(np.array([0, 1]), np.array([1.0, 0.0]), 0.0, np.zeros(2))

    def test_center_dimension_checked(self):
        with pytest.raises(ValueError, match="length"):
            SpreadConstraint(np.array([0, 1]), np.array([1.0, 0.0]), 1.0, np.zeros(3))

    def test_size(self, rng):
        targets = rng.standard_normal((10, 2))
        c = SpreadConstraint.from_data(targets, np.arange(4), np.array([0.0, 1.0]))
        assert c.size == 4
