"""Extension bench: Gaussian vs Bernoulli background model on binary targets.

The paper models the mammals' 0/1 presence targets with the Gaussian
background and flags the binary-aware derivation as future work; this
bench runs both models on the same planted pattern and reports how their
ICs compare. The Bernoulli model respects the [0,1] support, so it is
*less* surprised by a subgroup mean near the boundary than a Gaussian
whose tails extend past it.
"""

import numpy as np

from repro.datasets.mammals import make_mammals
from repro.model.background import BackgroundModel
from repro.model.bernoulli import BernoulliBackgroundModel
from repro.model.patterns import LocationConstraint
from repro.report.tables import format_table


def run_comparison(seed: int = 0):
    dataset = make_mammals(seed)
    targets = dataset.targets
    cold = dataset.column("tmp_mar").values <= -1.68
    idx = np.flatnonzero(cold)
    observed = targets[idx].mean(axis=0)

    gaussian = BackgroundModel.from_targets(targets)
    bernoulli = BernoulliBackgroundModel.from_targets(targets)

    from repro.interest.ic import location_ic

    rows = []
    g_before = location_ic(gaussian, idx, observed)
    b_before = bernoulli.location_ic(idx, observed)
    rows.append(("before assimilation", g_before, b_before))

    constraint = LocationConstraint.from_data(targets, idx)
    gaussian.assimilate(constraint)
    bernoulli.assimilate(constraint)
    g_after = location_ic(gaussian, idx, observed)
    b_after = bernoulli.location_ic(idx, observed)
    rows.append(("after assimilation", g_after, b_after))
    return rows


def bench_binary_target_models(benchmark, save_result):
    rows = benchmark.pedantic(run_comparison, args=(0,), rounds=1, iterations=1)
    table = format_table(
        ["state", "Gaussian IC (nats)", "Bernoulli IC (nats)"],
        rows,
        floatfmt=".1f",
        title="Binary targets: Gaussian (paper) vs Bernoulli (extension) "
        "on the planted cold-March mammal pattern",
    )
    save_result("binary_targets", table)
    (_, g_before, b_before), (_, g_after, b_after) = rows
    # Both models find the planted pattern hugely informative...
    assert g_before > 100.0 and b_before > 100.0
    # ...and both collapse after assimilation.
    assert g_after < 0.2 * g_before
    assert b_after < 0.2 * b_before
