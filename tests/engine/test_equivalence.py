"""Serial-vs-parallel equivalence: the engine's determinism contract.

Property: for any dataset seed, a ``ProcessExecutor`` run returns
*bit-identical* results to a ``SerialExecutor`` run — same subgroups in
the same order with byte-equal scores. Sharding is by attribute (never
by worker count) and merges are stable, so this holds at any
parallelism.
"""

import numpy as np
import pytest

from repro.datasets import make_synthetic
from repro.engine.executor import ProcessExecutor, SerialExecutor
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery
from repro.search.spread import find_spread_direction

#: Small but non-trivial search: multiple levels, dozens of candidates.
CONFIG = SearchConfig(beam_width=8, max_depth=2, top_k=25)


def assert_search_results_identical(serial, parallel):
    """Byte-level equality of two SearchResults."""
    assert serial.n_evaluated == parallel.n_evaluated
    assert serial.depth_reached == parallel.depth_reached
    assert serial.expired == parallel.expired
    assert len(serial.log) == len(parallel.log)
    for a, b in zip(serial.log, parallel.log):
        assert a.description == b.description
        assert np.array_equal(a.indices, b.indices)
        assert a.score.ic == b.score.ic  # exact float equality, not approx
        assert a.score.dl == b.score.dl
        assert np.array_equal(a.observed_mean, b.observed_mean)
    assert (serial.best is None) == (parallel.best is None)
    if serial.best is not None:
        assert serial.best.description == parallel.best.description


class TestBeamSearchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_top_k_bit_identical_across_seeds(self, seed):
        """Acceptance: ProcessExecutor top-k == SerialExecutor top-k."""
        dataset = make_synthetic(seed)
        serial = SubgroupDiscovery(
            dataset, config=CONFIG, seed=seed, executor=SerialExecutor()
        ).search_locations()
        parallel = SubgroupDiscovery(
            dataset, config=CONFIG, seed=seed, executor=ProcessExecutor(2)
        ).search_locations()
        assert_search_results_identical(serial, parallel)

    def test_worker_count_does_not_matter(self):
        dataset = make_synthetic(0)
        results = [
            SubgroupDiscovery(
                dataset, config=CONFIG, seed=0, executor=executor
            ).search_locations()
            for executor in (SerialExecutor(), ProcessExecutor(2), ProcessExecutor(4))
        ]
        assert_search_results_identical(results[0], results[1])
        assert_search_results_identical(results[0], results[2])


class TestSpreadSearchEquivalence:
    def test_restart_fanout_bit_identical(self, synthetic_model, synthetic_dataset):
        indices = np.arange(40)
        serial = find_spread_direction(
            synthetic_model,
            indices,
            synthetic_dataset.targets,
            seed=7,
            executor=SerialExecutor(),
        )
        parallel = find_spread_direction(
            synthetic_model,
            indices,
            synthetic_dataset.targets,
            seed=7,
            executor=ProcessExecutor(2),
        )
        assert np.array_equal(serial.direction, parallel.direction)
        assert serial.ic == parallel.ic
        assert serial.variance == parallel.variance
        assert serial.n_starts == parallel.n_starts
        assert serial.n_iterations == parallel.n_iterations


class TestFullLoopEquivalence:
    def test_iterative_mining_identical(self):
        """Two full location+spread iterations, serial vs process pool."""
        dataset = make_synthetic(0)
        serial = SubgroupDiscovery(
            dataset, config=CONFIG, seed=0, executor=SerialExecutor()
        )
        parallel = SubgroupDiscovery(
            dataset, config=CONFIG, seed=0, executor=ProcessExecutor(2)
        )
        for _ in range(2):
            a = serial.step(kind="spread")
            b = parallel.step(kind="spread")
            assert a.location.description == b.location.description
            assert a.location.score.ic == b.location.score.ic
            assert np.array_equal(a.spread.direction, b.spread.direction)
            assert a.spread.score.ic == b.spread.score.ic
