"""Refinement operator: the candidate-generation step of beam search.

Builds the pool of atomic conditions for a dataset (inequalities at the
discretized split points for numeric/ordinal attributes, equalities for
categorical/binary ones) and expands a description by one condition at a
time. Condition row-masks are memoized here in a bounded LRU cache, so
the beam search can evaluate a refinement as ``parent_mask &
mask_of(condition)`` — one vectorized AND per candidate instead of
re-testing every conjunct — without unbounded growth when one operator
serves many mining iterations.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.datasets.schema import AttributeKind, Dataset
from repro.utils.cache import LRUCache
from repro.errors import LanguageError
from repro.lang.conditions import GE, LE, Condition, EqualsCondition, NumericCondition
from repro.lang.description import Description
from repro.lang.discretize import split_points


class RefinementOperator:
    """Generates one-condition refinements of descriptions over a dataset.

    Parameters
    ----------
    dataset:
        The data whose description attributes define the language.
    n_split_points:
        Number of thresholds per numeric attribute (paper default: 4).
    strategy:
        Split-point strategy, see :func:`repro.lang.discretize.split_points`.
    attributes:
        Optional subset of description attributes to condition on.
    mask_cache_size:
        Capacity of the memoized condition-mask LRU. The default
        (``None``) sizes it to the condition pool so every mask stays
        memoized — a smaller bound on a pool scanned sequentially every
        level would evict each entry right before its reuse.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        n_split_points: int = 4,
        strategy: str = "percentile",
        attributes: Sequence[str] | None = None,
        mask_cache_size: int | None = None,
    ) -> None:
        self.dataset = dataset
        names = list(attributes) if attributes is not None else dataset.description_names
        for name in names:
            dataset.column(name)  # raises DataError on unknown names
        self._pool: list[Condition] = self._build_pool(names, n_split_points, strategy)
        if mask_cache_size is None:
            mask_cache_size = max(len(self._pool), 1)
        self._mask_cache: LRUCache = LRUCache(mask_cache_size)

    def _build_pool(
        self, names: Sequence[str], n_split_points: int, strategy: str
    ) -> list[Condition]:
        pool: list[Condition] = []
        for name in names:
            column = self.dataset.column(name)
            if column.is_constant():
                continue  # no condition on a constant column can split the data
            if column.kind.is_orderable:
                thresholds = split_points(
                    column, n_split_points=n_split_points, strategy=strategy
                )
                lo, hi = float(column.values.min()), float(column.values.max())
                for t in thresholds:
                    # "x <= max" and "x >= min" are trivially true; skip them.
                    if t < hi:
                        pool.append(NumericCondition(name, LE, float(t)))
                    if t > lo:
                        pool.append(NumericCondition(name, GE, float(t)))
            elif column.kind in (AttributeKind.CATEGORICAL, AttributeKind.BINARY):
                for value in column.domain():
                    pool.append(EqualsCondition(name, value))
            else:  # pragma: no cover - enum is exhaustive
                raise LanguageError(f"unsupported attribute kind {column.kind}")
        return pool

    # ------------------------------------------------------------------ #
    # Pool access
    # ------------------------------------------------------------------ #
    @property
    def conditions(self) -> list[Condition]:
        """The full candidate-condition pool (copy)."""
        return list(self._pool)

    def __len__(self) -> int:
        return len(self._pool)

    def mask_of(self, condition: Condition) -> np.ndarray:
        """Memoized boolean row mask of one condition."""
        cached = self._mask_cache.get(condition)
        if cached is None:
            cached = condition.mask(self.dataset)
            cached.setflags(write=False)
            self._mask_cache.put(condition, cached)
        return cached

    def extension_mask(self, description: Description) -> np.ndarray:
        """Extension mask of a description using the memoized conditions."""
        mask = np.ones(self.dataset.n_rows, dtype=bool)
        for condition in description.conditions:
            mask = mask & self.mask_of(condition)
            if not mask.any():
                break
        return mask

    # ------------------------------------------------------------------ #
    # Refinement
    # ------------------------------------------------------------------ #
    def refinements(
        self, description: Description
    ) -> Iterator[tuple[Description, Condition]]:
        """Yield ``(refined_description, added_condition)`` pairs.

        Refinements that do not change the canonical form (e.g. adding a
        looser bound on an already-bounded attribute) and refinements
        that are syntactically contradictory are skipped. Extensions are
        *not* computed here; the caller combines its cached parent mask
        with ``mask_of(added_condition)``.
        """
        parent = description.canonical()
        equality_bound = {
            c.attribute for c in parent.conditions if isinstance(c, EqualsCondition)
        }
        for condition in self._pool:
            if isinstance(condition, EqualsCondition):
                if condition.attribute in equality_bound:
                    # A conjunction with two equalities on one attribute is
                    # either redundant or empty; never useful.
                    continue
            refined = parent.with_condition(condition).canonical()
            if refined == parent:
                continue
            if refined.is_contradictory():
                continue
            yield refined, condition
