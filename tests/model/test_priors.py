"""Tests for prior construction."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.priors import Prior, empirical_prior


class TestPrior:
    def test_dimension_mismatch(self):
        with pytest.raises(ModelError, match="dim"):
            Prior(np.zeros(2), np.eye(3))

    def test_rejects_indefinite_cov(self):
        with pytest.raises(ModelError, match="positive definite"):
            Prior(np.zeros(2), np.diag([1.0, -1.0]))

    def test_immutable(self):
        prior = Prior(np.zeros(2), np.eye(2))
        with pytest.raises(ValueError):
            prior.mean[0] = 1.0

    def test_dim(self):
        assert Prior(np.zeros(4), np.eye(4)).dim == 4


class TestEmpiricalPrior:
    def test_matches_ml_estimates(self, rng):
        targets = rng.standard_normal((100, 3))
        prior = empirical_prior(targets, jitter=0.0)
        np.testing.assert_allclose(prior.mean, targets.mean(axis=0))
        centered = targets - targets.mean(axis=0)
        np.testing.assert_allclose(prior.cov, centered.T @ centered / 100)

    def test_1d_promoted(self, rng):
        prior = empirical_prior(rng.standard_normal(50))
        assert prior.dim == 1

    def test_jitter_rescues_rank_deficiency(self, rng):
        base = rng.standard_normal((50, 1))
        targets = np.hstack([base, base])  # perfectly correlated columns
        prior = empirical_prior(targets, jitter=1e-6)
        np.linalg.cholesky(prior.cov)  # PD despite rank deficiency

    def test_shrinkage_moves_toward_diagonal(self, rng):
        targets = rng.standard_normal((200, 2))
        targets[:, 1] += targets[:, 0]
        full = empirical_prior(targets, shrinkage=0.0)
        shrunk = empirical_prior(targets, shrinkage=0.9)
        assert abs(shrunk.cov[0, 1]) < abs(full.cov[0, 1])

    def test_invalid_shrinkage(self, rng):
        with pytest.raises(ModelError, match="shrinkage"):
            empirical_prior(rng.standard_normal((10, 2)), shrinkage=2.0)

    def test_constant_targets_rejected(self):
        with pytest.raises(ModelError, match="zero variance"):
            empirical_prior(np.ones((10, 2)))

    def test_too_few_rows(self):
        with pytest.raises(ModelError, match="n>=2"):
            empirical_prior(np.ones((1, 2)))
