"""Result records produced by the searches and the iterative miner."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.interest.si import PatternScore
from repro.lang.description import Description
from repro.model.patterns import LocationConstraint, SpreadConstraint


@dataclass(frozen=True)
class ScoredSubgroup:
    """One beam-search log entry: an intention, its extension, its score."""

    description: Description
    indices: np.ndarray
    observed_mean: np.ndarray
    score: PatternScore

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])

    @property
    def si(self) -> float:
        return self.score.si

    def __str__(self) -> str:
        return f"{self.description}  (n={self.size}, SI={self.si:.2f})"


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one beam search: the winner plus the top-k log."""

    best: ScoredSubgroup | None
    log: tuple[ScoredSubgroup, ...]
    n_evaluated: int
    depth_reached: int
    expired: bool  # True if the time budget cut the search short

    def __iter__(self):
        return iter(self.log)

    def __len__(self) -> int:
        return len(self.log)


@dataclass(frozen=True)
class LocationPatternResult:
    """A mined location pattern, ready to present and assimilate."""

    description: Description
    indices: np.ndarray
    mean: np.ndarray
    score: PatternScore
    coverage: float

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])

    @property
    def si(self) -> float:
        return self.score.si

    def constraint(self) -> LocationConstraint:
        """The model-update record for this pattern."""
        return LocationConstraint(self.indices, self.mean)

    def __str__(self) -> str:
        return (
            f"location: {self.description}  "
            f"(n={self.size}, coverage={self.coverage:.1%}, SI={self.si:.2f})"
        )


@dataclass(frozen=True)
class SpreadPatternResult:
    """A mined spread pattern: adds the direction and its variance."""

    description: Description
    indices: np.ndarray
    direction: np.ndarray
    variance: float
    center: np.ndarray
    score: PatternScore

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])

    @property
    def si(self) -> float:
        return self.score.si

    def constraint(self) -> SpreadConstraint:
        """The model-update record for this pattern."""
        return SpreadConstraint(self.indices, self.direction, self.variance, self.center)

    def __str__(self) -> str:
        w = ", ".join(f"{x:+.3f}" for x in self.direction)
        return (
            f"spread: {self.description} along [{w}]  "
            f"(var={self.variance:.4g}, SI={self.si:.2f})"
        )


@dataclass(frozen=True)
class MiningIteration:
    """One round of the paper's two-step iterative mining."""

    index: int
    location: LocationPatternResult
    spread: SpreadPatternResult | None = None
