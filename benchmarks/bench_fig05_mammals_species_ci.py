"""Fig. 5: per-species surprisal of the first mammal pattern.

Observed vs model mean with 95% CI, before and after assimilating the
pattern; after the update the model mean equals the observed value.
"""

from repro.experiments.mammals_exp import run_fig5


def bench_fig5_mammals_species_ci(benchmark, save_result):
    result = benchmark.pedantic(run_fig5, args=(0,), rounds=1, iterations=1)
    save_result("fig05_mammals_species_ci", result.format())
    for before in result.top_species:
        lo, hi = before.ci95
        assert before.observed < lo or before.observed > hi
