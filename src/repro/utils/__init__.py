"""Small shared utilities: RNG handling, validation, timing, linear algebra, caching."""

from repro.utils.cache import CacheStats, LRUCache
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timer import Stopwatch, TimeBudget
from repro.utils.validation import (
    check_finite,
    check_matrix,
    check_square,
    check_symmetric,
    check_unit_vector,
    check_vector,
)
from repro.utils.linalg import (
    is_positive_definite,
    nearest_positive_definite,
    solve_psd,
    symmetrize,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "as_rng",
    "spawn_rngs",
    "Stopwatch",
    "TimeBudget",
    "check_finite",
    "check_matrix",
    "check_square",
    "check_symmetric",
    "check_unit_vector",
    "check_vector",
    "is_positive_definite",
    "nearest_positive_definite",
    "solve_psd",
    "symmetrize",
]
