"""Fault injection: a worker daemon SIGKILLed mid-shard.

The acceptance bar: killing a node while it holds in-flight shards must
not fail the job, reorder anything, or perturb a single bit of the
result — the coordinator retries the dead node's shards on the
surviving worker (or inline) and the merge is positional either way.

The killed worker is a real ``python -m repro worker`` subprocess on a
real socket; the survivor runs in-thread.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from distfns import slow_add
from repro.datasets import make_synthetic
from repro.dist.executor import DistExecutor
from repro.engine.executor import SerialExecutor

from test_executor import CONFIG, _search, assert_search_results_identical

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


@pytest.fixture
def subprocess_worker():
    """A worker daemon in its own process; yields (url, Popen)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), os.path.dirname(__file__)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--port", "0", "--parallel", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    url = None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if "listening on" in line:
            url = line.split("listening on")[1].split()[0].strip()
            break
    if url is None:
        process.kill()
        pytest.fail("worker subprocess never announced its URL")
    yield url, process
    if process.poll() is None:
        process.kill()
    process.wait(timeout=10.0)


def _kill_when_busy(url, process):
    """SIGKILL the worker the moment it has taken work (from a thread).

    Polling ``/health`` until the shard counter moves guarantees the
    kill lands while the coordinator still has shards routed at this
    node — the "mid-shard" the failover path must absorb.
    """
    from repro.dist.executor import WorkerClient, WorkerUnavailable

    client = WorkerClient(url, timeout=2.0)

    def watch():
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                stats = client.health()["shards"]
            except WorkerUnavailable:
                return
            if stats["shards"] >= 1 or stats["items"] >= 1:
                os.kill(process.pid, signal.SIGKILL)
                return
            time.sleep(0.02)

    thread = threading.Thread(target=watch, daemon=True)
    thread.start()
    return thread


class TestSigkillMidShard:
    def test_map_completes_identically(self, subprocess_worker, worker_pair):
        """SIGKILL one node while its slow shards are in flight."""
        url, process = subprocess_worker
        items = list(range(12))  # slow_add: ~0.3s per item
        expected = [100 + item for item in items]
        with DistExecutor([url, worker_pair[0]], timeout=30.0) as executor:
            killer = _kill_when_busy(url, process)
            with executor.session(100) as session:
                out = session.map(slow_add, items)
            killer.join(timeout=30.0)
        process.wait(timeout=10.0)
        assert out == expected
        assert executor.stats["failovers"] >= 1

    def test_beam_search_bit_identical(self, subprocess_worker, worker_pair):
        """The real miner, with a node dying mid-job: bit-identical."""
        url, process = subprocess_worker
        dataset = make_synthetic(0)
        serial = _search(dataset, SerialExecutor())
        with DistExecutor([url, worker_pair[0]], timeout=30.0) as executor:
            killer = _kill_when_busy(url, process)
            remote = _search(dataset, executor)
            killer.join(timeout=30.0)
        process.wait(timeout=10.0)
        assert_search_results_identical(serial, remote)

    def test_survivor_keeps_serving(self, subprocess_worker, worker_pair):
        """After the death, later sessions run entirely on the survivor."""
        url, process = subprocess_worker
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=10.0)
        with DistExecutor(
            [url, worker_pair[0]], timeout=5.0, local_fallback=False
        ) as executor:
            with executor.session(1) as session:
                assert session.map(_quick, [1, 2, 3]) == [2, 3, 4]
            assert executor.stats["shards_remote"] > 0


def _quick(context, item):
    return context + item
