"""Golden-value statistical regression tests.

The SI/IC scores of the top-3 mined patterns on the synthetic and
mammals datasets are frozen into ``fixtures/top_patterns.json``. Any
scorer/model/search refactor that drifts from these numbers — even in
the 10th decimal — fails here, so the paper's reproduced statistics
cannot erode silently. If a change is *supposed* to alter the numbers,
regenerate the fixture deliberately (the docstring of
``TestGoldenTopPatterns`` says how) and justify the diff in review.
"""

import json
from pathlib import Path

import pytest

from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery

FIXTURE = Path(__file__).parent / "fixtures" / "top_patterns.json"

#: Tolerance of the frozen scores. Deliberately far below any
#: statistically meaningful difference: equality "to the last float"
#: would be brittle across BLAS builds, while 1e-9 still catches any
#: real formula or pipeline change.
ATOL = 1e-9

GOLDEN = json.loads(FIXTURE.read_text())


def _mine(dataset):
    miner = SubgroupDiscovery(
        dataset, config=SearchConfig(**GOLDEN["config"]), seed=GOLDEN["seed"]
    )
    return miner.run(GOLDEN["n_iterations"], kind=GOLDEN["kind"])


class TestGoldenTopPatterns:
    """Frozen top-3 patterns per dataset.

    Regenerate (only for an intended statistical change) by re-running
    the mining loop with the fixture's config/seed and rewriting
    ``fixtures/top_patterns.json`` with the new
    description/size/ic/dl/si values.
    """

    @pytest.fixture(scope="class")
    def mined(self, request):
        return _mine(request.getfixturevalue(f"{request.param}_dataset"))

    @pytest.mark.parametrize(
        "mined, dataset_name",
        [("synthetic", "synthetic"), ("mammals", "mammals")],
        indirect=["mined"],
    )
    def test_top3_descriptions_and_scores_match(self, mined, dataset_name):
        expected = GOLDEN["patterns"][dataset_name]
        assert len(mined) == len(expected)
        for iteration, frozen in zip(mined, expected):
            location = iteration.location
            assert iteration.index == frozen["index"]
            assert str(location.description) == frozen["description"]
            assert location.size == frozen["size"]
            assert abs(location.score.ic - frozen["ic"]) <= ATOL
            assert abs(location.score.dl - frozen["dl"]) <= ATOL
            assert abs(location.si - frozen["si"]) <= ATOL

    def test_fixture_is_internally_consistent(self):
        # si = ic / dl is the SI definition; a hand-edited fixture that
        # breaks it would "pass" nothing meaningful.
        for entries in GOLDEN["patterns"].values():
            for entry in entries:
                assert entry["dl"] > 0
                assert abs(entry["si"] - entry["ic"] / entry["dl"]) <= ATOL
