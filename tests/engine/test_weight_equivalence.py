"""Case weights under the engine's determinism contract.

Two acceptance properties:

- unit weights are invisible: a weighted run with all-ones weights is
  bit-identical to the unweighted run, on the synthetic and mammals
  datasets, across the serial and process backends;
- genuinely weighted runs are backend-independent: serial, process-pool
  and shared-memory executors mine bit-identical patterns, the weights
  riding the ``__shm_arrays__`` transport with everything else.
"""

import numpy as np
import pytest

from repro.datasets import load_dataset, make_synthetic
from repro.engine.executor import ProcessExecutor, SerialExecutor
from repro.engine.jobs import MiningJob, run_job
from repro.errors import EngineError
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery

from tests.engine.test_equivalence import assert_search_results_identical

CONFIG = SearchConfig(beam_width=6, max_depth=2, top_k=15)


def _example_weights(n_rows: int, seed: int = 0) -> np.ndarray:
    """Deterministic, genuinely non-uniform positive weights."""
    rng = np.random.default_rng(seed)
    return 0.25 + rng.random(n_rows) * 2.0


class TestUnitWeightsInvisible:
    @pytest.mark.parametrize("dataset_name", ["synthetic", "mammals"])
    def test_serial_bit_identical(self, dataset_name):
        dataset = load_dataset(dataset_name, seed=0)
        plain = SubgroupDiscovery(
            dataset, config=CONFIG, seed=0, executor=SerialExecutor()
        ).search_locations()
        weighted = SubgroupDiscovery(
            dataset.with_weights(np.ones(dataset.n_rows)),
            config=CONFIG,
            seed=0,
            executor=SerialExecutor(),
        ).search_locations()
        assert_search_results_identical(plain, weighted)

    @pytest.mark.parametrize("dataset_name", ["synthetic", "mammals"])
    def test_process_bit_identical(self, dataset_name):
        dataset = load_dataset(dataset_name, seed=0)
        plain = SubgroupDiscovery(
            dataset, config=CONFIG, seed=0, executor=SerialExecutor()
        ).search_locations()
        with ProcessExecutor(2) as executor:
            weighted = SubgroupDiscovery(
                dataset.with_weights(np.ones(dataset.n_rows)),
                config=CONFIG,
                seed=0,
                executor=executor,
            ).search_locations()
        assert_search_results_identical(plain, weighted)

    def test_full_location_spread_loop_bit_identical(self):
        dataset = make_synthetic(0)
        plain = SubgroupDiscovery(
            dataset, config=CONFIG, seed=0, executor=SerialExecutor()
        )
        weighted = SubgroupDiscovery(
            dataset.with_weights(np.ones(dataset.n_rows)),
            config=CONFIG,
            seed=0,
            executor=SerialExecutor(),
        )
        for _ in range(2):
            a = plain.step(kind="spread")
            b = weighted.step(kind="spread")
            assert a.location.description == b.location.description
            assert a.location.score.ic == b.location.score.ic
            assert a.location.score.si == b.location.score.si
            assert np.array_equal(a.spread.direction, b.spread.direction)
            assert a.spread.score.ic == b.spread.score.ic
            assert a.spread.variance == b.spread.variance


class TestWeightedBackendEquivalence:
    def test_serial_process_shm_bit_identical(self):
        dataset = make_synthetic(0)
        dataset = dataset.with_weights(_example_weights(dataset.n_rows))
        reference = SubgroupDiscovery(
            dataset, config=CONFIG, seed=0, executor=SerialExecutor()
        ).search_locations()
        with ProcessExecutor(2) as executor:
            process = SubgroupDiscovery(
                dataset, config=CONFIG, seed=0, executor=executor
            ).search_locations()
        with ProcessExecutor(2, shared_memory=True) as executor:
            shared = SubgroupDiscovery(
                dataset, config=CONFIG, seed=0, executor=executor
            ).search_locations()
        assert_search_results_identical(reference, process)
        assert_search_results_identical(reference, shared)

    def test_weighted_iterative_loop_shm_bit_identical(self):
        dataset = make_synthetic(0)
        dataset = dataset.with_weights(_example_weights(dataset.n_rows))
        serial = SubgroupDiscovery(
            dataset, config=CONFIG, seed=0, executor=SerialExecutor()
        )
        with ProcessExecutor(2, shared_memory=True) as executor:
            shared = SubgroupDiscovery(
                dataset, config=CONFIG, seed=0, executor=executor
            )
            for _ in range(2):
                a = serial.step(kind="spread")
                b = shared.step(kind="spread")
                assert a.location.description == b.location.description
                assert a.location.score.ic == b.location.score.ic
                assert np.array_equal(a.spread.direction, b.spread.direction)
                assert a.spread.score.ic == b.spread.score.ic

    def test_weights_change_what_gets_mined(self):
        """Sanity: non-uniform weights are not a no-op on the scores."""
        dataset = make_synthetic(0)
        plain = SubgroupDiscovery(
            dataset, config=CONFIG, seed=0, executor=SerialExecutor()
        ).search_locations()
        weighted = SubgroupDiscovery(
            dataset.with_weights(_example_weights(dataset.n_rows)),
            config=CONFIG,
            seed=0,
            executor=SerialExecutor(),
        ).search_locations()
        assert plain.best.score.ic != weighted.best.score.ic


class TestJobWeights:
    def _job(self, weights=None):
        return MiningJob(dataset="synthetic", weights=weights, config=CONFIG)

    def test_run_job_applies_weights(self):
        n_rows = make_synthetic(0).n_rows
        plain = run_job(self._job())
        weighted = run_job(self._job(weights=tuple(_example_weights(n_rows))))
        assert (
            plain.iterations[0].location.score.ic
            != weighted.iterations[0].location.score.ic
        )

    def test_run_job_unit_weights_bit_identical(self):
        n_rows = make_synthetic(0).n_rows
        plain = run_job(self._job())
        weighted = run_job(self._job(weights=tuple(np.ones(n_rows))))
        a = plain.iterations[0].location
        b = weighted.iterations[0].location
        assert a.description == b.description
        assert a.score.ic == b.score.ic
        assert a.score.si == b.score.si

    def test_run_job_rejects_wrong_length(self):
        with pytest.raises(EngineError, match="weights"):
            run_job(self._job(weights=(1.0, 2.0)))

    def test_job_rejects_non_positive_weights(self):
        with pytest.raises(EngineError, match="weights"):
            self._job(weights=(1.0, -2.0))

    def test_job_spec_round_trips_weights(self):
        from repro.persist import job_from_dict

        job = self._job(weights=(1.0, 2.0, 0.5))
        document = job.spec()
        assert document["weights"] == [1.0, 2.0, 0.5]
        assert job_from_dict(document).weights == (1.0, 2.0, 0.5)

    def test_job_spec_omits_weights_when_unset(self):
        """Pre-weights specs (and their fingerprints) must be unchanged."""
        assert "weights" not in self._job().spec()

    def test_weights_change_the_fingerprint(self):
        plain = self._job()
        unit = self._job(weights=(1.0,) * make_synthetic(0).n_rows)
        assert plain.fingerprint() != unit.fingerprint()
