"""Spread-direction search: maximize Eq. 20 over the unit sphere (§II-D).

For a fixed subgroup the DL is constant, so the problem is to maximize
the IC of the spread statistic over directions ``w``. The objective is
smooth but multimodal; we run Riemannian gradient ascent with an
analytic gradient (chain rule through the Zhang coefficients, including
the digamma term of the Gamma normalizer) from several informed starting
points, plus random restarts. The paper's 2-sparsity variant —
"optimizing it for each pair of target attributes separately and then
selecting the result with the highest SI" — is :func:`find_spread_direction`
with ``sparsity=2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize
from scipy.special import digamma, gammaln

from repro.engine.executor import Executor, SerialExecutor
from repro.errors import SearchError
from repro.model.background import BackgroundModel
from repro.search.sphere import canonical_sign, project_tangent, random_unit, retract
from repro.stats.statistics import subgroup_cov, subgroup_mean
from repro.utils.rng import as_rng

#: Floor for the standardized statistic (x - beta)/alpha, as in chi2mix.
_TINY = 1e-12
LN2 = math.log(2.0)


class SpreadObjective:
    """IC of the spread pattern of a fixed subgroup, as a function of w.

    Precomputes the per-block covariances (model side) and the empirical
    subgroup covariance (data side); ``value`` and ``value_and_grad``
    then cost O(B d^2) per call with B the number of blocks touching the
    subgroup.
    """

    #: Arrays the shared-memory transport may move out of the pickled
    #: payload (:func:`repro.engine.shm.publish`). The per-block stacks
    #: dominate the objective's footprint on fine partitions.
    __shm_arrays__ = (
        "counts",
        "block_covs",
        "empirical_cov",
        "center",
        "pooled_model_cov",
    )

    def __init__(self, model: BackgroundModel, indices, targets: np.ndarray) -> None:
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets[:, None]
        counts, _means, covs = model.spread_blocks(indices)
        self.dim = model.dim
        self.size = float(counts.sum())
        if self.size < 2:
            raise SearchError("spread search needs a subgroup with >= 2 rows")
        self.counts = counts
        self.block_covs = np.stack(covs)           # (B, d, d)
        # On weighted models, counts/size above are already weighted; the
        # empirical (data-side) statistics must weight identically.
        self.empirical_cov = subgroup_cov(targets, indices, weights=model.weights)
        self.center = subgroup_mean(targets, indices, weights=model.weights)
        self.pooled_model_cov = (
            np.einsum("b,bde->de", counts, self.block_covs) / self.size
        )

    # ------------------------------------------------------------------ #
    # Core computation
    # ------------------------------------------------------------------ #
    def _pieces(self, w: np.ndarray):
        sigma_w = self.block_covs @ w              # (B, d)
        s = np.einsum("bd,d->b", sigma_w, w)       # w' Sigma_b w per block
        a = s / self.size
        c = self.counts
        a1 = float(np.sum(c * a))
        a2 = float(np.sum(c * a**2))
        a3 = float(np.sum(c * a**3))
        alpha = a3 / a2
        beta = a1 - a2**2 / a3
        dof = a2**3 / a3**2
        v = float(w @ self.empirical_cov @ w)
        return sigma_w, a, (a1, a2, a3), alpha, beta, dof, v

    @staticmethod
    def _ic(alpha: float, beta: float, dof: float, v: float) -> float:
        t = max((v - beta) / alpha, _TINY)
        return (
            math.log(alpha)
            + 0.5 * dof * LN2
            + float(gammaln(0.5 * dof))
            - (0.5 * dof - 1.0) * math.log(t)
            + 0.5 * t
        )

    def value(self, w: np.ndarray) -> float:
        """IC of the spread pattern along unit direction ``w``."""
        _, _, _, alpha, beta, dof, v = self._pieces(np.asarray(w, dtype=float))
        return self._ic(alpha, beta, dof, v)

    def variance(self, w: np.ndarray) -> float:
        """Empirical subgroup variance along ``w`` (the statistic value)."""
        w = np.asarray(w, dtype=float)
        return float(w @ self.empirical_cov @ w)

    def value_and_grad(self, w: np.ndarray) -> tuple[float, np.ndarray]:
        """IC and its Euclidean gradient with respect to ``w``.

        Chain rule through the cumulant sums ``A_k = sum_b c_b a_b^k``
        with ``a_b = w'Sigma_b w / |I|`` and the empirical variance
        ``v = w' S w``; verified against finite differences in the test
        suite.
        """
        w = np.asarray(w, dtype=float)
        sigma_w, a, (a1, a2, a3), alpha, beta, dof, v = self._pieces(w)
        t_raw = (v - beta) / alpha
        clamped = t_raw <= _TINY
        t = max(t_raw, _TINY)

        # Partials of IC with respect to (alpha, beta, dof, v).
        d_ic_d_t = 0.5 - (0.5 * dof - 1.0) / t
        d_ic_d_alpha = 1.0 / alpha + d_ic_d_t * (-t / alpha)
        d_ic_d_beta = d_ic_d_t * (-1.0 / alpha)
        d_ic_d_v = d_ic_d_t * (1.0 / alpha)
        d_ic_d_dof = 0.5 * (LN2 + float(digamma(0.5 * dof)) - math.log(t))
        if clamped:
            # On the clamp the statistic no longer responds to (v, beta);
            # keep only the smooth alpha/dof dependence to avoid a
            # gradient explosion at the support boundary.
            d_ic_d_v = 0.0
            d_ic_d_beta = 0.0
            d_ic_d_alpha = 1.0 / alpha
        # Partials of (alpha, beta, dof) with respect to (A1, A2, A3).
        d_alpha = np.array([0.0, -a3 / a2**2, 1.0 / a2])
        d_beta = np.array([1.0, -2.0 * a2 / a3, (a2 / a3) ** 2])
        d_dof = np.array([0.0, 3.0 * a2**2 / a3**2, -2.0 * a2**3 / a3**3])
        d_ic_d_ak = (
            d_ic_d_alpha * d_alpha + d_ic_d_beta * d_beta + d_ic_d_dof * d_dof
        )
        # dA_k/dw = sum_b c_b k a_b^(k-1) * (2 Sigma_b w / |I|).
        coef = self.counts * (
            d_ic_d_ak[0]
            + d_ic_d_ak[1] * 2.0 * a
            + d_ic_d_ak[2] * 3.0 * a**2
        )
        grad = (2.0 / self.size) * np.einsum("b,bd->d", coef, sigma_w)
        grad += d_ic_d_v * 2.0 * (self.empirical_cov @ w)
        return self._ic(alpha, beta, dof, v), grad

    # ------------------------------------------------------------------ #
    # Informed starting points
    # ------------------------------------------------------------------ #
    def suggested_starts(self) -> list[np.ndarray]:
        """Eigen-directions likely to be (near) optimal.

        The extreme eigenvectors of the empirical subgroup covariance,
        of the pooled model covariance, and of their difference (the
        "surprise" matrix) cover both low-variance and high-variance
        spread patterns.
        """
        starts: list[np.ndarray] = []
        for matrix in (
            self.empirical_cov,
            self.pooled_model_cov,
            self.empirical_cov - self.pooled_model_cov,
        ):
            _, vectors = np.linalg.eigh(matrix)
            starts.append(vectors[:, 0])
            starts.append(vectors[:, -1])
        return starts


@dataclass(frozen=True)
class SpreadSearchOutcome:
    """Best direction found, its IC, and the empirical variance along it."""

    direction: np.ndarray
    ic: float
    variance: float
    n_starts: int
    n_iterations: int


def _ascend(
    objective: SpreadObjective,
    start: np.ndarray,
    *,
    max_iterations: int,
    tol: float,
) -> tuple[np.ndarray, float, int]:
    """Riemannian gradient ascent with backtracking from one start."""
    w = start / float(np.linalg.norm(start))
    value, grad = objective.value_and_grad(w)
    iterations = 0
    step = 1.0
    for iterations in range(1, max_iterations + 1):
        riemannian = project_tangent(w, grad)
        norm = float(np.linalg.norm(riemannian))
        if norm < tol:
            break
        direction = riemannian / norm
        # Backtracking Armijo line search along the retraction curve.
        step = min(max(step * 2.0, 1e-8), 1e6 / max(norm, 1.0))
        improved = False
        for _ in range(60):
            candidate = retract(w, step * norm * direction)
            candidate_value = objective.value(candidate)
            if candidate_value > value + 1e-4 * step * norm * norm:
                improved = True
                break
            step *= 0.5
        if not improved:
            break
        w = candidate
        value, grad = objective.value_and_grad(w)
    return w, value, iterations


def _ascend_task(
    context: tuple[SpreadObjective, int, float], start: np.ndarray
) -> tuple[np.ndarray, float, int]:
    """Worker entry point: one gradient ascent from one starting point."""
    objective, max_iterations, tol = context
    return _ascend(objective, start, max_iterations=max_iterations, tol=tol)


def _ascend_row(
    context: tuple[SpreadObjective, int, float], payload: tuple
) -> tuple[np.ndarray, float, int]:
    """Worker entry point, shared-memory transport: one ascent by index.

    ``payload`` is ``(starts, row)`` where ``starts`` is the stacked
    starting-point matrix — a zero-copy view over shared memory by the
    time it arrives here. The row's bytes equal the start
    ``_ascend_task`` would have received, so the ascent is bit-identical
    (copied out because the ascent normalizes its start in fresh
    arrays but the shared view is read-only).
    """
    starts, row = payload
    objective, max_iterations, tol = context
    return _ascend(
        objective, np.array(starts[row]), max_iterations=max_iterations, tol=tol
    )


def find_spread_direction(
    model: BackgroundModel,
    indices,
    targets: np.ndarray,
    *,
    sparsity: int | None = None,
    n_random_starts: int = 4,
    max_iterations: int = 300,
    tol: float = 1e-9,
    seed=0,
    executor: Executor | None = None,
) -> SpreadSearchOutcome:
    """Maximize the spread IC over unit directions (problem 21).

    Parameters
    ----------
    sparsity:
        ``None`` optimizes over the full sphere. ``2`` restricts ``w``
    to coordinate pairs, optimizing the in-plane angle per pair and
        keeping the best (the paper's §III-C interpretability device).
    n_random_starts:
        Random restarts added to the eigenvector starts.
    executor:
        Backend running the independent ascents. Starting points are
        drawn up-front in the caller, and the winner is the first
        highest-IC start in start order, so any parallelism returns the
        serial result.
    """
    objective = SpreadObjective(model, indices, targets)
    dim = objective.dim

    if dim == 1:
        w = np.ones(1)
        return SpreadSearchOutcome(w, objective.value(w), objective.variance(w), 1, 0)

    if sparsity is not None:
        if sparsity != 2:
            raise SearchError(f"only sparsity=2 is supported, got {sparsity}")
        return _best_pair_direction(objective)

    rng = as_rng(seed)
    starts = objective.suggested_starts()
    starts.extend(random_unit(rng, dim) for _ in range(n_random_starts))

    if executor is None:
        executor = SerialExecutor()
    with executor.session((objective, max_iterations, tol)) as session:
        if getattr(session, "uses_shared_arrays", False):
            # Ship one stacked starts matrix through shared memory and
            # index into it per task, mirroring the beam's shard slices.
            ref = session.share(np.stack(starts))
            try:
                ascents = session.map(
                    _ascend_row, [(ref, row) for row in range(len(starts))]
                )
            finally:
                session.release(ref)
        else:
            ascents = session.map(_ascend_task, starts)

    best_w: np.ndarray | None = None
    best_value = -math.inf
    total_iterations = 0
    for w, value, iterations in ascents:
        total_iterations += iterations
        if value > best_value:
            best_value = value
            best_w = w
    assert best_w is not None
    best_w = canonical_sign(best_w)
    return SpreadSearchOutcome(
        direction=best_w,
        ic=float(best_value),
        variance=objective.variance(best_w),
        n_starts=len(starts),
        n_iterations=total_iterations,
    )


def _best_pair_direction(objective: SpreadObjective) -> SpreadSearchOutcome:
    """2-sparse search: best in-plane angle for every coordinate pair.

    For a pair (i, j), ``w = cos(theta) e_i + sin(theta) e_j``; the IC is
    pi-periodic in theta (the statistic is even in w). A coarse grid
    localizes the best basin, then bounded scalar minimization refines it.
    """
    dim = objective.dim
    best: tuple[float, np.ndarray] | None = None
    evaluations = 0

    def embed(i: int, j: int, theta: float) -> np.ndarray:
        w = np.zeros(dim)
        w[i] = math.cos(theta)
        w[j] = math.sin(theta)
        return w

    grid = np.linspace(0.0, math.pi, 64, endpoint=False)
    for i in range(dim):
        for j in range(i + 1, dim):
            values = [objective.value(embed(i, j, theta)) for theta in grid]
            evaluations += len(grid)
            k = int(np.argmax(values))
            lo, hi = grid[k] - math.pi / 64, grid[k] + math.pi / 64
            result = optimize.minimize_scalar(
                lambda theta: -objective.value(embed(i, j, theta)),
                bounds=(lo, hi),
                method="bounded",
                options={"xatol": 1e-10},
            )
            theta = float(result.x)
            value = -float(result.fun)
            if best is None or value > best[0]:
                best = (value, embed(i, j, theta))
    assert best is not None
    w = canonical_sign(best[1])
    return SpreadSearchOutcome(
        direction=w,
        ic=best[0],
        variance=objective.variance(w),
        n_starts=evaluations,
        n_iterations=0,
    )
