"""ASY001/ASY002 fire inside coroutines and stay quiet everywhere else."""

from __future__ import annotations

from lintfns import rule_ids


class TestBlockingInAsync:
    def test_time_sleep_in_coroutine_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/server/app.py",
            """
            import time

            async def handler():
                time.sleep(1)
            """,
        )
        assert rule_ids(report) == ["ASY001"]
        assert "await asyncio.sleep" in report.findings[0].message

    def test_open_and_http_in_coroutine_fire(self, lint_snippet):
        report = lint_snippet(
            "repro/server/app.py",
            """
            from http.client import HTTPConnection

            async def handler(path):
                conn = HTTPConnection("host", 80)
                with open(path) as fh:
                    return fh.read(), conn
            """,
        )
        assert rule_ids(report) == ["ASY001", "ASY001"]

    def test_sleep_in_plain_function_is_quiet(self, lint_snippet):
        # Thread-run helpers (like WorkerDaemon._register_loop) may sleep.
        report = lint_snippet(
            "repro/server/app.py",
            """
            import time

            def register_loop():
                time.sleep(1)
            """,
        )
        assert report.clean

    def test_sync_helper_nested_in_coroutine_is_quiet(self, lint_snippet):
        # The sleep belongs to the nested def, which runs in an executor.
        report = lint_snippet(
            "repro/server/app.py",
            """
            import asyncio
            import time

            async def handler(loop):
                def work():
                    time.sleep(1)
                return await loop.run_in_executor(None, work)
            """,
        )
        assert report.clean

    def test_asyncio_sleep_is_quiet(self, lint_snippet):
        report = lint_snippet(
            "repro/server/app.py",
            """
            import asyncio

            async def handler():
                await asyncio.sleep(1)
            """,
        )
        assert report.clean


class TestAwaitUnderLock:
    def test_await_inside_with_lock_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/server/app.py",
            """
            import threading

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()

                async def update(self):
                    with self._lock:
                        await self.refresh()
            """,
        )
        assert rule_ids(report) == ["ASY002"]
        assert "_lock" in report.findings[0].message

    def test_direct_lock_constructor_fires(self, lint_snippet):
        report = lint_snippet(
            "repro/server/app.py",
            """
            import threading

            async def update(shared):
                with threading.Lock():
                    await shared.refresh()
            """,
        )
        assert rule_ids(report) == ["ASY002"]

    def test_await_after_lock_released_is_quiet(self, lint_snippet):
        report = lint_snippet(
            "repro/server/app.py",
            """
            import threading

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()

                async def update(self):
                    with self._lock:
                        snapshot = dict(self.state)
                    await self.push(snapshot)
            """,
        )
        assert report.clean

    def test_async_with_asyncio_lock_is_quiet(self, lint_snippet):
        report = lint_snippet(
            "repro/server/app.py",
            """
            import asyncio

            class Service:
                def __init__(self):
                    self._lock = asyncio.Lock()

                async def update(self):
                    async with self._lock:
                        await self.refresh()
            """,
        )
        assert report.clean

    def test_nested_coroutine_await_is_its_own(self, lint_snippet):
        # The await belongs to the nested coroutine, which runs later,
        # after the outer with block exited.
        report = lint_snippet(
            "repro/server/app.py",
            """
            import threading

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()

                async def update(self):
                    with self._lock:
                        async def later():
                            await self.refresh()
                        self.pending = later
            """,
        )
        assert report.clean
