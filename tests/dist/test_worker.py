"""Worker-daemon HTTP surface, exercised through :class:`WorkerClient`."""

import pytest

from distfns import add, boom
from repro.dist import wire as dwire
from repro.dist.executor import WorkerClient, WorkerUnavailable
from repro.dist.worker import WorkerDaemon


@pytest.fixture(scope="module")
def client(worker_pair):
    return WorkerClient(worker_pair[0], timeout=10.0)


class TestHealth:
    def test_document_shape(self, client):
        doc = client.health()
        assert doc["schema"] == dwire.DIST_SCHEMA
        assert doc["status"] == "ok"
        assert doc["role"] == "worker"
        assert doc["parallelism"] == 2
        assert isinstance(doc["generation"], str)
        assert isinstance(doc["contexts"], list)
        assert set(doc["shards"]) == {
            "shards", "items", "context_misses", "errors",
        }

    def test_unreachable_worker_raises(self):
        dead = WorkerClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(WorkerUnavailable):
            dead.health()


class TestContexts:
    def test_shard_against_unknown_context_is_a_miss(self, client):
        digest = dwire.digest_of(b"never shipped")
        reply = client.run_shard(digest, add, [1, 2])
        assert reply["status"] == "unknown-context"

    def test_put_then_run(self, client):
        payload = dwire.dump(100)
        digest = dwire.digest_of(payload)
        client.put_context(digest, payload)
        reply = client.run_shard(digest, add, [1, 2, 3])
        assert reply["status"] == "ok"
        assert reply["results"] == [101, 102, 103]
        assert digest in client.health()["contexts"]

    def test_digest_mismatch_rejected(self, client):
        with pytest.raises(WorkerUnavailable, match="HTTP 400"):
            client.put_context("0" * 64, dwire.dump("not those bytes"))

    def test_none_context_needs_no_shipping(self, client):
        reply = client.run_shard(None, lambda_context_free, [5])
        assert reply == {
            "schema": dwire.DIST_SCHEMA, "status": "ok", "results": [10],
        }

    def test_lru_eviction(self):
        daemon = WorkerDaemon(max_contexts=2)
        handle = daemon.run_in_thread()
        try:
            client = WorkerClient(daemon.url, timeout=10.0)
            digests = []
            for value in range(3):
                payload = dwire.dump(value)
                digest = dwire.digest_of(payload)
                client.put_context(digest, payload)
                digests.append(digest)
            held = client.health()["contexts"]
            assert digests[0] not in held  # oldest evicted
            assert digests[1] in held and digests[2] in held
        finally:
            handle.stop()


def lambda_context_free(context, item):
    assert context is None
    return item * 2


class TestErrors:
    def test_remote_exception_travels_back(self, client):
        payload = dwire.dump("ctx")
        digest = dwire.digest_of(payload)
        client.put_context(digest, payload)
        reply = client.run_shard(digest, boom, ["x"])
        assert reply["status"] == "error"
        assert isinstance(reply["error"], ValueError)
        assert "boom on 'x'" in str(reply["error"])

    def test_error_counter_increments(self, client):
        before = client.health()["shards"]["errors"]
        payload = dwire.dump("ctx")
        digest = dwire.digest_of(payload)
        client.put_context(digest, payload)
        client.run_shard(digest, boom, ["y"])
        assert client.health()["shards"]["errors"] == before + 1
