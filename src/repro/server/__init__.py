"""Network subsystem: the mining engine served over HTTP (stdlib only).

- :class:`~repro.server.app.MiningServer` — asyncio HTTP + SSE front
  door over a :class:`~repro.engine.service.MiningService` (submit /
  status / result / cancel / list / health, plus a live event stream
  with reconnect-and-resume).
- :class:`~repro.server.hub.EventHub` — the worker-thread → asyncio
  bridge with sequence numbers, bounded queues, and a slow-consumer
  drop policy.
- :mod:`repro.server.wire` — the canonical JSON wire schemas, shared
  with :class:`repro.client.RemoteWorkspace`.

Start one from the shell with ``sisd serve`` (see the CLI), or in
code::

    from repro.server import MiningServer

    handle = MiningServer(port=0).run_in_thread()
    print(handle.url)          # e.g. http://127.0.0.1:43921
    ...
    handle.stop()
"""

from repro.server.app import MiningServer, ServerHandle
from repro.server.hub import EventHub, Subscription
from repro.server.wire import WIRE_SCHEMA, RemoteEvent, event_from_wire

__all__ = [
    "MiningServer",
    "ServerHandle",
    "EventHub",
    "Subscription",
    "RemoteEvent",
    "WIRE_SCHEMA",
    "event_from_wire",
]
