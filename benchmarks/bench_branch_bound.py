"""Extension bench: branch-and-bound vs beam search (the paper's §V plan).

On the single-target crime data, the branch-and-bound search with the
tight optimistic estimator finds the provably optimal location pattern
of the language; the bench reports how much of the search tree the bound
prunes and verifies the beam search (a heuristic) never beats it.
"""

from repro.datasets.crime import make_crime
from repro.lang.refinement import RefinementOperator
from repro.model.background import BackgroundModel
from repro.report.tables import format_table
from repro.search.beam import LocationBeamSearch, LocationICScorer
from repro.search.branch_bound import BranchAndBoundLocationSearch
from repro.search.config import SearchConfig

#: Depth-2 search over the named (interpretable) crime attributes keeps the
#: exhaustive baseline tractable while exercising real pruning.
ATTRIBUTES = [
    "pct_illeg", "pct_poverty", "pct_unemployed", "med_income",
    "pct_less_than_hs", "pct_young_males", "pop_density",
    "pct_vacant_housing", "pct_same_city_5yr", "pct_two_parent_hh",
    "med_rent", "pct_public_assist",
]


def run_comparison(seed: int = 0):
    dataset = make_crime(seed)
    config = SearchConfig(max_depth=2, attributes=ATTRIBUTES)
    model = BackgroundModel.from_targets(dataset.targets)
    operator = RefinementOperator(dataset, attributes=ATTRIBUTES)

    bb = BranchAndBoundLocationSearch(
        operator, model, dataset.targets, config=config
    )
    bb_result = bb.run()

    beam = LocationBeamSearch(
        operator, LocationICScorer(model, dataset.targets), config=config
    ).run()
    return bb, bb_result, beam


def bench_branch_bound_vs_beam(benchmark, save_result):
    bb, bb_result, beam = benchmark.pedantic(
        run_comparison, args=(0,), rounds=1, iterations=1
    )
    rows = [
        ("branch & bound (optimal)", str(bb_result.best.description),
         bb_result.best.si, bb_result.n_evaluated),
        ("beam width 40 (heuristic)", str(beam.best.description),
         beam.best.si, beam.n_evaluated),
    ]
    table = format_table(
        ["search", "best intention", "SI", "candidates scored"],
        rows,
        title="Branch-and-bound vs beam search (crime, depth 2, 12 attributes)",
    )
    stats = (
        f"pruning: {bb.stats.nodes_pruned} subtrees pruned, "
        f"{bb.stats.nodes_expanded} expanded"
    )
    save_result("branch_bound", f"{table}\n{stats}")
    # The optimum can never be worse than the heuristic's best.
    assert bb_result.best.si >= beam.best.si - 1e-9
    assert bb.stats.nodes_pruned > 0
