"""Prefix-cache acceptance: warm replays are bit-identical to cold runs.

The tentpole guarantee: a session resuming from a k-pattern cached
prefix produces byte-identical iterations (patterns, SI scores, RNG
state) to a cold full run — on the serial *and* the process executor —
and pays no beam search for the replayed prefix.
"""

import dataclasses

import numpy as np
import pytest

from repro.datasets import make_synthetic
from repro.engine.cache import BELIEF_CACHE, BeliefCache, CachedStep
from repro.engine.executor import ProcessExecutor, SerialExecutor
from repro.engine.jobs import MiningJob
from repro.engine.service import MiningService
from repro.errors import EngineError
from repro.events import EventLog
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery
from repro.session import MiningSession
from repro.utils.rng import rng_state

CONFIG = SearchConfig(beam_width=8, max_depth=2, top_k=10)


def assert_iterations_identical(ours, theirs):
    """Byte-level equality of two iteration sequences."""
    assert len(ours) == len(theirs)
    for a, b in zip(ours, theirs):
        assert a.index == b.index
        assert a.location.description == b.location.description
        assert np.array_equal(a.location.indices, b.location.indices)
        assert a.location.score.ic == b.location.score.ic  # exact, not approx
        assert a.location.score.dl == b.location.score.dl
        assert np.array_equal(a.location.mean, b.location.mean)
        assert (a.spread is None) == (b.spread is None)
        if a.spread is not None:
            assert np.array_equal(a.spread.direction, b.spread.direction)
            assert a.spread.variance == b.spread.variance
            assert a.spread.score.ic == b.spread.score.ic


def _miner(executor=None, belief_cache=None, observer=None):
    return SubgroupDiscovery(
        make_synthetic(0),
        config=CONFIG,
        seed=0,
        executor=executor if executor is not None else SerialExecutor(),
        belief_cache=belief_cache,
        observer=observer,
    )


class TestPrefixEquivalence:
    """The acceptance criterion, on both executors."""

    @pytest.fixture(scope="class")
    def cold(self):
        miner = _miner()
        iterations = miner.run(3, kind="spread")
        return iterations, rng_state(miner._rng)

    @pytest.mark.parametrize("executor_kind", ["serial", "process"])
    def test_warm_run_resuming_cached_prefix_is_bit_identical(
        self, cold, executor_kind
    ):
        cold_iterations, cold_rng = cold
        cache = BeliefCache()
        # Warm the cache with a 2-iteration session (the shared prefix).
        warmer = _miner(belief_cache=cache)
        warmer.run(2, kind="spread")

        executor = (
            ProcessExecutor(2) if executor_kind == "process" else SerialExecutor()
        )
        log = EventLog()
        try:
            warm = _miner(executor=executor, belief_cache=cache, observer=log)
            iterations = warm.run(3, kind="spread")
        finally:
            executor.close()
        assert_iterations_identical(iterations, cold_iterations)
        # The RNG stream continued exactly where the cold run's did.
        assert rng_state(warm._rng) == cold_rng
        # The 2-iteration prefix replayed from the cache: only iteration
        # 3 ran a beam search, so candidates fired once per iteration 3
        # candidate and on_iteration fired for all three.
        assert cache.stats.hits == 2
        assert [it.index for it in log.iterations] == [1, 2, 3]
        assert log.candidates, "the non-cached iteration must mine live"

    def test_continuation_after_replay_stays_bit_identical(self, cold):
        # Step *past* the cached prefix: the replayed RNG state must
        # drive iteration 4 to the same outcome a never-cached run gets.
        cold_reference = _miner()
        cold_iterations = cold_reference.run(4, kind="spread")
        cache = BeliefCache()
        _miner(belief_cache=cache).run(3, kind="spread")
        warm = _miner(belief_cache=cache)
        warm_iterations = warm.run(4, kind="spread")
        assert_iterations_identical(warm_iterations, cold_iterations)

    def test_entries_written_by_parallel_runs_replay_in_serial_runs(self):
        cache = BeliefCache()
        executor = ProcessExecutor(2)
        try:
            parallel = _miner(executor=executor, belief_cache=cache)
            parallel_iterations = parallel.run(2, kind="spread")
        finally:
            executor.close()
        warm = _miner(belief_cache=cache)
        warm_iterations = warm.run(2, kind="spread")
        assert cache.stats.hits == 2
        assert_iterations_identical(warm_iterations, parallel_iterations)


class TestChainSafety:
    def test_different_seed_never_shares_spread_entries(self):
        cache = BeliefCache()
        a = SubgroupDiscovery(
            make_synthetic(0), config=CONFIG, seed=0, belief_cache=cache
        )
        a.run(2, kind="spread")
        b = SubgroupDiscovery(
            make_synthetic(0), config=CONFIG, seed=123, belief_cache=cache
        )
        b.run(1, kind="spread")
        # Seed 123's RNG state differs, so its spread step cannot reuse
        # seed 0's entries (the key includes the RNG state).
        assert cache.stats.hits == 0

    def test_different_config_never_shares_entries(self):
        cache = BeliefCache()
        _miner(belief_cache=cache).run(1)
        other = SubgroupDiscovery(
            make_synthetic(0),
            config=SearchConfig(beam_width=4, max_depth=2, top_k=10),
            seed=0,
            belief_cache=cache,
        )
        other.run(1)
        assert cache.stats.hits == 0

    def test_undo_does_not_resurrect_a_stale_rng(self):
        cache = BeliefCache()
        session = MiningSession(
            make_synthetic(0), config=CONFIG, seed=0, kind="spread",
            belief_cache=cache,
        )
        first = session.step()
        session.step()
        session.undo()
        # Same belief state as after step 1, but the RNG has advanced —
        # the re-mined step 2 must be a miss, not a stale replay.
        misses_before = cache.stats.misses
        redone = session.step()
        assert cache.stats.misses > misses_before
        assert redone.index == 2
        assert first.location.description == session.history[0].location.description

    def test_manual_assimilation_changes_the_chain(self):
        cache = BeliefCache()
        a = _miner(belief_cache=cache)
        a.run(1)
        b = _miner(belief_cache=cache)
        b.assimilate(a.history[0].location)  # same constraint, by hand
        # b's belief chain now equals a's post-step-1 chain, so b's next
        # location step replays a's second step if it exists — mine it:
        a.step()
        b.step()
        assert cache.stats.hits >= 1
        assert (
            b.history[-1].location.description
            == a.history[-1].location.description
        )


class TestSessionAndServiceIntegration:
    def test_saved_session_resumes_through_the_cache(self, tmp_path):
        cache = BeliefCache()
        session = MiningSession(
            make_synthetic(0), config=CONFIG, seed=0, kind="spread",
            belief_cache=cache,
        )
        session.step()
        path = session.save(tmp_path / "session.json")
        session.step()  # iteration 2 is now cached
        resumed = MiningSession.resume(
            make_synthetic(0), path, config=CONFIG, belief_cache=cache
        )
        hits_before = cache.stats.hits
        continued = resumed.step()
        assert cache.stats.hits == hits_before + 1  # replayed, not re-mined
        # A resumed session restarts its history numbering (documented),
        # so compare the work under matching labels.
        reference = session.history[1]
        assert continued.index == 1
        assert_iterations_identical(
            [continued], [dataclasses.replace(reference, index=1)]
        )

    def test_service_jobs_share_prefixes_across_fingerprints(self):
        # Two *different* jobs (1 vs 2 iterations) share the first
        # iteration's belief state; the service's belief cache makes the
        # second job replay it.
        cache = BeliefCache()
        with MiningService(backend="serial", belief_cache=cache) as service:
            short = service.result(
                service.submit(MiningJob(dataset="synthetic", config=CONFIG))
            )
            long = service.result(
                service.submit(
                    MiningJob(dataset="synthetic", config=CONFIG, n_iterations=2)
                )
            )
        assert cache.stats.hits == 1
        assert_iterations_identical(short.iterations, long.iterations[:1])

    def test_thread_backend_shares_the_cache_across_jobs(self):
        cache = BeliefCache()
        with MiningService(
            backend="thread", max_workers=1, belief_cache=cache
        ) as service:
            first = service.submit(MiningJob(dataset="synthetic", config=CONFIG))
            service.result(first)
            second = service.submit(
                MiningJob(dataset="synthetic", config=CONFIG, n_iterations=3)
            )
            result = service.result(second)
        assert cache.stats.hits == 1
        assert len(result.iterations) == 3

    def test_belief_cache_false_disables_reuse(self):
        with MiningService(backend="serial", belief_cache=False) as service:
            assert service.belief_cache is None

    def test_belief_cache_true_selects_the_process_wide_cache(self):
        with MiningService(backend="serial", belief_cache=True) as service:
            assert service.belief_cache is BELIEF_CACHE

    def test_invalid_belief_cache_argument_rejected(self):
        with pytest.raises(EngineError, match="belief_cache"):
            MiningService(backend="serial", belief_cache="yes please")


class TestCacheObject:
    def test_put_rejects_non_entries(self):
        cache = BeliefCache()
        with pytest.raises(EngineError, match="CachedStep"):
            cache.put("key", {"not": "an entry"})

    def test_len_and_clear(self):
        cache = BeliefCache()
        _miner(belief_cache=cache).run(2)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_bounded_eviction(self):
        cache = BeliefCache(maxsize=1)
        _miner(belief_cache=cache).run(2)
        assert len(cache) == 1
        assert cache.stats.evictions == 1

    def test_cached_step_is_a_frozen_record(self):
        cache = BeliefCache()
        miner = _miner(belief_cache=cache)
        miner.run(1)
        entry = cache._entries.get(next(iter(cache._entries._data)))
        assert isinstance(entry, CachedStep)
        with pytest.raises(AttributeError):
            entry.iteration = None
