"""DistExecutor: bit-identical mining over real sockets, plus failover.

The determinism acceptance tests run the actual beam search with its
scorer shipped over HTTP to live worker daemons, then compare against
:class:`SerialExecutor` byte-for-byte — the same bar the process-pool
backend is held to in ``tests/engine/test_equivalence.py``.
"""

import socket
import threading
import time

import numpy as np
import pytest

from distfns import add, boom, echo, slow_add
from repro.datasets import make_synthetic
from repro.dist.executor import DistExecutor, WorkerUnavailable
from repro.engine.executor import SerialExecutor, resolve_executor
from repro.errors import EngineError
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery

#: Small but non-trivial search: multiple levels, dozens of candidates.
CONFIG = SearchConfig(beam_width=8, max_depth=2, top_k=25)


def assert_search_results_identical(serial, parallel):
    """Byte-level equality of two SearchResults (exact float equality).

    Mirrors the helper of ``tests/engine/test_equivalence.py`` — the
    distributed backend is held to the same bar as the process pool.
    """
    assert serial.n_evaluated == parallel.n_evaluated
    assert serial.depth_reached == parallel.depth_reached
    assert serial.expired == parallel.expired
    assert len(serial.log) == len(parallel.log)
    for a, b in zip(serial.log, parallel.log):
        assert a.description == b.description
        assert np.array_equal(a.indices, b.indices)
        assert a.score.ic == b.score.ic
        assert a.score.dl == b.score.dl
        assert np.array_equal(a.observed_mean, b.observed_mean)
    assert (serial.best is None) == (parallel.best is None)
    if serial.best is not None:
        assert serial.best.description == parallel.best.description


def _search(dataset, executor, seed=0):
    return SubgroupDiscovery(
        dataset, config=CONFIG, seed=seed, executor=executor
    ).search_locations()


class TestPlainMaps:
    def test_session_map_orders_and_values(self, worker_pair):
        with DistExecutor(worker_pair, local_fallback=False) as executor:
            with executor.session(1000) as session:
                out = session.map(add, list(range(57)))
        assert out == [1000 + i for i in range(57)]

    def test_context_free_map(self, worker_pair):
        with DistExecutor(worker_pair, local_fallback=False) as executor:
            assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]

    def test_empty_items(self, worker_pair):
        with DistExecutor(worker_pair) as executor:
            with executor.session("ctx") as session:
                assert session.map(echo, []) == []

    def test_context_ships_once_per_worker(self, worker_pair):
        with DistExecutor(worker_pair, local_fallback=False) as executor:
            with executor.session("heavy context") as session:
                session.map(echo, list(range(40)))
                shipped_once = executor.stats["contexts_shipped"]
                session.map(echo, list(range(40)))
            assert executor.stats["contexts_shipped"] == shipped_once <= 2

    def test_needs_at_least_one_worker(self):
        with pytest.raises(EngineError, match="at least one worker"):
            DistExecutor([])

    def test_remote_fn_error_propagates_without_failover(self, worker_pair):
        with DistExecutor(worker_pair, local_fallback=False) as executor:
            with executor.session("ctx") as session:
                with pytest.raises(ValueError, match="boom"):
                    session.map(boom, [1, 2, 3])
            assert executor.stats["failovers"] == 0


def _double(item):
    return item * 2


class TestBitIdenticalMining:
    """Acceptance: remote search == serial search, byte for byte."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_synthetic(self, worker_pair, seed):
        dataset = make_synthetic(seed)
        serial = _search(dataset, SerialExecutor(), seed=seed)
        with DistExecutor(worker_pair, local_fallback=False) as executor:
            remote = _search(dataset, executor, seed=seed)
            assert executor.stats["shards_remote"] > 0
            assert executor.stats["shards_local"] == 0
        assert_search_results_identical(serial, remote)

    def test_mammals(self, worker_pair, mammals_dataset):
        serial = _search(mammals_dataset, SerialExecutor())
        with DistExecutor(worker_pair, local_fallback=False) as executor:
            remote = _search(mammals_dataset, executor)
            assert executor.stats["shards_remote"] > 0
        assert_search_results_identical(serial, remote)

    def test_worker_count_does_not_matter(self, worker_pair):
        dataset = make_synthetic(0)
        serial = _search(dataset, SerialExecutor())
        with DistExecutor(worker_pair[:1], local_fallback=False) as one:
            assert_search_results_identical(serial, _search(dataset, one))
        with DistExecutor(worker_pair, local_fallback=False) as two:
            assert_search_results_identical(serial, _search(dataset, two))

    def test_resolve_executor_hook(self, worker_pair):
        executor = resolve_executor(None, dist_workers=worker_pair)
        assert isinstance(executor, DistExecutor)
        assert executor.parallelism == 2
        executor.close()
        assert isinstance(
            resolve_executor(1, dist_workers=None), SerialExecutor
        )
        assert isinstance(resolve_executor(1, dist_workers=[]), SerialExecutor)


class TestArrivalOrder:
    def test_slow_shards_cannot_reorder_results(self, worker_pair):
        """Replies land by shard index, not completion order."""
        with DistExecutor(worker_pair, local_fallback=False) as executor:
            with executor.session(0) as session:
                # slow_add sleeps per item, so shard completion order is
                # scrambled relative to shard index; the merge must not be.
                out = session.map(slow_add, list(range(10)))
        assert out == list(range(10))


class TestFailoverAndBackoff:
    def test_dead_url_fails_over_to_live_worker(self, worker_pair):
        workers = [worker_pair[0], "http://127.0.0.1:9"]
        with DistExecutor(workers, timeout=2.0, local_fallback=False) as executor:
            with executor.session(7) as session:
                out = session.map(add, list(range(20)))
        assert out == [7 + i for i in range(20)]
        assert executor.stats["failovers"] >= 1
        assert executor.stats["shards_local"] == 0

    def test_all_workers_dead_falls_back_locally(self):
        with DistExecutor(["http://127.0.0.1:9"], timeout=1.0) as executor:
            with executor.session(5) as session:
                assert session.map(add, [1, 2]) == [6, 7]
        assert executor.stats["shards_local"] == 2
        assert executor.stats["shards_remote"] == 0

    def test_no_fallback_raises_when_everyone_is_dead(self):
        with DistExecutor(
            ["http://127.0.0.1:9"], timeout=1.0, local_fallback=False
        ) as executor:
            with executor.session(5) as session:
                with pytest.raises(WorkerUnavailable):
                    session.map(add, [1])

    def test_timeout_then_backoff(self):
        """A hung (accepting but mute) worker times out, is sidelined
        with exponential backoff, and the shard completes locally."""
        mute = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        mute.bind(("127.0.0.1", 0))
        mute.listen(4)
        port = mute.getsockname()[1]
        held = []
        stop = threading.Event()

        def hold():
            mute.settimeout(0.2)
            while not stop.is_set():
                try:
                    conn, _ = mute.accept()
                except OSError:
                    continue
                held.append(conn)  # accept, then never answer

        thread = threading.Thread(target=hold, daemon=True)
        thread.start()
        try:
            executor = DistExecutor(
                [f"http://127.0.0.1:{port}"], timeout=0.5, backoff=30.0
            )
            with executor:
                started = time.monotonic()
                with executor.session(0) as session:
                    out = session.map(add, [1, 2, 3])
                first_run = time.monotonic() - started
                assert out == [1, 2, 3]
                assert executor.stats["failovers"] >= 1
                state = executor._states[0]
                assert not state.alive(time.monotonic())
                assert state.dead_until > time.monotonic() + 25.0
                # While sidelined, the worker is not even tried: the next
                # map is instant local fallback, no per-shard timeout.
                started = time.monotonic()
                with executor.session(0) as session:
                    assert session.map(add, [4]) == [4]
                assert time.monotonic() - started < first_run
                assert executor.stats["shards_local"] >= 4
        finally:
            stop.set()
            thread.join(timeout=2.0)
            for conn in held:
                conn.close()
            mute.close()

    def test_backoff_doubles_per_failure(self):
        from repro.dist.executor import WorkerClient, _WorkerState

        state = _WorkerState(
            WorkerClient("http://127.0.0.1:9"), backoff=1.0, max_backoff=4.0
        )
        state.mark_dead(100.0)
        assert state.dead_until == pytest.approx(101.0)
        state.mark_dead(100.0)
        assert state.dead_until == pytest.approx(102.0)
        state.mark_dead(100.0)
        assert state.dead_until == pytest.approx(104.0)
        state.mark_dead(100.0)
        assert state.dead_until == pytest.approx(104.0)  # capped
        state.mark_alive()
        assert state.alive(0.0)
