"""Baseline subgroup-quality measures and reference searchers.

The paper positions SI against the classical subgroup-discovery quality
functions (§IV): mean-shift tests, WRAcc, and the dispersion-corrected
score of Boley et al. (2017). This package implements them — each as a
:class:`QualityMeasure` pluggable into the same beam search — plus the
random-subgroup baseline that the Fig. 3 noise experiment plots.
"""

from repro.baselines.quality import (
    DispersionCorrectedQuality,
    MeanShiftQuality,
    QualityMeasure,
    WRAccQuality,
)
from repro.baselines.beam import QualityBeamSearch
from repro.baselines.random_baseline import random_subgroup_si

__all__ = [
    "QualityMeasure",
    "MeanShiftQuality",
    "WRAccQuality",
    "DispersionCorrectedQuality",
    "QualityBeamSearch",
    "random_subgroup_si",
]
