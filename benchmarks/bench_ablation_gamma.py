"""Ablation: the DL weight gamma (Remark 1).

The paper: "tuning gamma biases the results toward more or fewer
conditions to describe the subgroup". Sweep gamma and record the number
of conditions of the best pattern and the depth profile of the top-20
log — larger gamma must not increase description lengths.
"""

from repro.datasets.synthetic import make_synthetic
from repro.interest.dl import DLParams
from repro.report.tables import format_table
from repro.search.miner import SubgroupDiscovery

GAMMAS = (0.0, 0.01, 0.1, 1.0, 10.0)


def sweep_gamma(seed: int = 0):
    dataset = make_synthetic(seed)
    rows = []
    for gamma in GAMMAS:
        miner = SubgroupDiscovery(dataset, dl_params=DLParams(gamma=gamma), seed=seed)
        result = miner.search_locations()
        top20 = result.log[:20]
        mean_conditions = sum(len(e.description) for e in top20) / len(top20)
        rows.append(
            (
                gamma,
                str(result.best.description),
                len(result.best.description),
                result.best.si,
                mean_conditions,
            )
        )
    return rows


def bench_ablation_gamma(benchmark, save_result):
    rows = benchmark.pedantic(sweep_gamma, args=(0,), rounds=1, iterations=1)
    table = format_table(
        ["gamma", "best intention", "|C| best", "SI", "mean |C| top-20"],
        rows,
        floatfmt=".2f",
        title="Ablation: DL weight gamma vs description complexity",
    )
    save_result("ablation_gamma", table)
    # Larger gamma penalizes conditions harder: the top-20 average
    # description length must be non-increasing along the sweep.
    mean_conditions = [row[4] for row in rows]
    assert all(a >= b - 1e-9 for a, b in zip(mean_conditions, mean_conditions[1:]))
    # The planted single-condition patterns should win for every gamma > 0.
    assert all(row[2] == 1 for row in rows[1:])
