"""Fig. 9: the water pattern's spread direction (16-dim sphere search).

Paper: high weights on bod and kmno4; variance along w much LARGER than
expected — the surprising high-variance case.
"""

from repro.experiments.water_exp import run_fig9


def bench_fig9_water_spread(benchmark, save_result):
    result = benchmark.pedantic(run_fig9, args=(0,), rounds=3, iterations=1)
    save_result("fig09_water_spread", result.format())
    assert set(result.top_weight_names) == {"bod", "kmno4"}
    assert result.observed_variance > 2.0 * result.expected_variance
