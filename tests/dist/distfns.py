"""Module-level shard functions for the distributed-tier tests.

Shards ship ``fn`` by pickle *reference*, so the functions must live in
an importable module — both in this test process (the coordinator) and
inside any worker subprocess the tests spawn. ``tests/dist/conftest.py``
puts this directory on ``sys.path``; the subprocess tests extend
``PYTHONPATH`` the same way.
"""

import time


def echo(context, item):
    return (context, item)


def add(context, item):
    return context + item


def square(context, item):
    return context + item * item


def slow_add(context, item):
    """~0.3s per item: long enough to SIGKILL a worker mid-shard."""
    time.sleep(0.3)
    return context + item


def boom(context, item):
    raise ValueError(f"boom on {item!r}")
