"""CSV persistence for :class:`~repro.datasets.schema.Dataset`.

The on-disk format is a plain CSV with a two-line header:

- line 1: column names (descriptions first, then targets);
- line 2: column roles — one of ``numeric``/``ordinal``/``categorical``/
  ``binary`` for description attributes, or ``target`` for targets.

This keeps datasets round-trippable without a side-car schema file and
readable by any CSV tool (the role line just looks like a first data row
to them).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.errors import DataError

_ROLE_TARGET = "target"


def write_csv(dataset: Dataset, path: str | Path) -> Path:
    """Write ``dataset`` to ``path``; returns the path written.

    Metadata is intentionally not persisted: it is experiment-side
    information (ground truth, coordinates), not part of the data a
    downstream miner should see.
    """
    path = Path(path)
    names = dataset.description_names + dataset.target_names
    roles = [dataset.column(c).kind.value for c in dataset.description_names]
    roles += [_ROLE_TARGET] * dataset.n_targets

    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        writer.writerow(roles)
        desc_values = [dataset.column(c).values for c in dataset.description_names]
        for i in range(dataset.n_rows):
            row: list[object] = []
            for col, values in zip(dataset.description_names, desc_values):
                value = values[i]
                if dataset.column(col).kind is AttributeKind.CATEGORICAL:
                    row.append(str(value))
                else:
                    row.append(repr(float(value)))
            row.extend(repr(float(v)) for v in dataset.targets[i])
            writer.writerow(row)
    return path


def read_csv(path: str | Path, *, name: str | None = None) -> Dataset:
    """Read a dataset previously written by :func:`write_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            names = next(reader)
            roles = next(reader)
        except StopIteration:
            raise DataError(f"{path}: missing header lines") from None
        if len(names) != len(roles):
            raise DataError(f"{path}: name/role header length mismatch")
        rows = [row for row in reader if row]

    if not rows:
        raise DataError(f"{path}: no data rows")
    if any(len(row) != len(names) for row in rows):
        raise DataError(f"{path}: ragged rows")

    columns: list[Column] = []
    target_names: list[str] = []
    target_cols: list[np.ndarray] = []
    for j, (col_name, role) in enumerate(zip(names, roles)):
        raw = [row[j] for row in rows]
        if role == _ROLE_TARGET:
            target_names.append(col_name)
            target_cols.append(np.array([float(v) for v in raw]))
            continue
        try:
            kind = AttributeKind(role)
        except ValueError:
            raise DataError(f"{path}: unknown column role {role!r}") from None
        if kind is AttributeKind.CATEGORICAL:
            values: np.ndarray = np.array(raw, dtype=object)
        else:
            values = np.array([float(v) for v in raw])
        columns.append(Column(col_name, kind, values))

    if not target_names:
        raise DataError(f"{path}: no target columns")
    targets = np.stack(target_cols, axis=1)
    return Dataset(name or path.stem, columns, targets, target_names)
