"""Tests for declarative mining jobs and the multi-job runner."""

import pytest

from repro.engine.jobs import JobFailure, JobResult, MiningJob, run_job, run_jobs
from repro.errors import EngineError
from repro.persist import (
    job_from_dict,
    job_to_dict,
    load_jobs,
    save_jobs,
    search_config_from_dict,
    search_config_to_dict,
)
from repro.search.config import SearchConfig

#: Small search settings so a job finishes in a few milliseconds.
FAST = SearchConfig(beam_width=6, max_depth=2, top_k=10)


class TestMiningJobSpec:
    def test_default_name_is_derived_and_stable(self):
        a = MiningJob(dataset="synthetic", config=FAST)
        b = MiningJob(dataset="synthetic", config=FAST)
        assert a.name == b.name
        assert a.name.startswith("synthetic/location#")

    def test_fingerprint_ignores_name(self):
        a = MiningJob(dataset="synthetic", config=FAST, name="first")
        b = MiningJob(dataset="synthetic", config=FAST, name="second")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_tracks_spec_changes(self):
        a = MiningJob(dataset="synthetic", config=FAST)
        b = MiningJob(dataset="synthetic", config=FAST, seed=1)
        assert a.fingerprint() != b.fingerprint()

    def test_targets_coerced_to_tuple(self):
        job = MiningJob(dataset="synthetic", targets=["y0", "y1"])
        assert job.targets == ("y0", "y1")

    def test_jobs_are_hashable_and_dedupe_in_sets(self):
        a = MiningJob(dataset="synthetic", dataset_kwargs={"flip_probability": 0.1})
        b = MiningJob(dataset="synthetic", dataset_kwargs={"flip_probability": 0.1})
        c = MiningJob(dataset="synthetic")
        assert hash(a) == hash(b)
        assert {a, b, c} == {a, c}

    def test_rejects_bad_kind(self):
        with pytest.raises(EngineError):
            MiningJob(dataset="synthetic", kind="banana")

    def test_rejects_bad_iterations(self):
        with pytest.raises(EngineError):
            MiningJob(dataset="synthetic", n_iterations=0)

    def test_rejects_malformed_prior(self):
        with pytest.raises(EngineError):
            MiningJob(dataset="synthetic", prior={"mean": [0.0]})


class TestJobPersistence:
    def test_dict_roundtrip(self):
        job = MiningJob(
            dataset="synthetic",
            dataset_seed=3,
            dataset_kwargs={"flip_probability": 0.05},
            targets=("y0", "y1"),
            kind="spread",
            n_iterations=2,
            seed=9,
            config=SearchConfig(beam_width=12, max_depth=3, attributes=("attr1",)),
            gamma=0.5,
        )
        assert job_from_dict(job_to_dict(job)) == job

    def test_config_roundtrip(self):
        config = SearchConfig(
            beam_width=7,
            max_depth=2,
            top_k=11,
            min_coverage=3,
            max_coverage_fraction=0.5,
            attributes=("attr1", "attr2"),
        )
        assert search_config_from_dict(search_config_to_dict(config)) == config

    def test_missing_keys_fall_back_to_defaults(self):
        job = job_from_dict({"dataset": "synthetic"})
        assert job == MiningJob(dataset="synthetic")

    def test_dataset_is_mandatory(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            job_from_dict({"kind": "location"})

    def test_unknown_spec_keys_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="iterations"):
            job_from_dict({"dataset": "synthetic", "iterations": 5})

    def test_future_schema_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unsupported job schema"):
            job_from_dict({"dataset": "synthetic", "schema": 2})

    def test_type_invalid_values_become_repro_errors(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="invalid job spec"):
            job_from_dict({"dataset": "synthetic", "seed": [1]})
        with pytest.raises(ReproError, match="invalid job spec"):
            job_from_dict({"dataset": "synthetic", "gamma": "high"})

    def test_file_roundtrip(self, tmp_path):
        jobs = [
            MiningJob(dataset="synthetic", seed=s, config=FAST) for s in range(3)
        ]
        path = save_jobs(jobs, tmp_path / "jobs.json")
        assert load_jobs(path) == jobs

    def test_load_rejects_empty_batch(self, tmp_path):
        from repro.errors import ReproError

        path = tmp_path / "empty.json"
        path.write_text('{"jobs": []}')
        with pytest.raises(ReproError):
            load_jobs(path)


class TestRunJobs:
    def test_single_job_runs_to_completion(self):
        job = MiningJob(dataset="synthetic", n_iterations=2, config=FAST)
        result = run_job(job)
        assert isinstance(result, JobResult)
        assert len(result.iterations) == 2
        assert result.elapsed_seconds > 0
        assert "location:" in result.format()

    def test_job_result_roundtrip(self):
        import numpy as np

        from repro.persist import job_result_from_dict, job_result_to_dict

        job = MiningJob(dataset="synthetic", kind="spread", config=FAST)
        result = run_job(job)
        rebuilt = job_result_from_dict(job_result_to_dict(result))
        assert rebuilt.job == job
        assert len(rebuilt.iterations) == len(result.iterations)
        first, second = result.iterations[0], rebuilt.iterations[0]
        assert second.location.description == first.location.description
        assert second.location.score.ic == first.location.score.ic
        assert np.array_equal(second.spread.direction, first.spread.direction)

    def test_empty_batch_is_empty(self):
        assert run_jobs([]) == []

    def test_rejects_non_jobs(self):
        with pytest.raises(EngineError):
            run_jobs([{"dataset": "synthetic"}])

    def test_failing_job_aborts_batch_by_default(self):
        from repro.errors import DataError

        jobs = [
            MiningJob(dataset="synthetic", config=FAST),
            MiningJob(dataset="doesnotexist", config=FAST),
        ]
        with pytest.raises(DataError):
            run_jobs(jobs)

    def test_return_failures_isolates_bad_jobs(self):
        jobs = [
            MiningJob(dataset="synthetic", config=FAST),
            MiningJob(dataset="doesnotexist", config=FAST),
            MiningJob(dataset="synthetic", seed=1, config=FAST),
        ]
        outcomes = run_jobs(jobs, return_failures=True)
        assert isinstance(outcomes[0], JobResult)
        assert isinstance(outcomes[1], JobFailure)
        assert isinstance(outcomes[2], JobResult)
        assert "doesnotexist" in outcomes[1].error
        assert "FAILED" in outcomes[1].format()

    def test_return_failures_isolates_in_parallel_too(self):
        jobs = [
            MiningJob(dataset="doesnotexist", config=FAST),
            MiningJob(dataset="synthetic", config=FAST),
        ]
        outcomes = run_jobs(jobs, workers=2, return_failures=True)
        assert isinstance(outcomes[0], JobFailure)
        assert isinstance(outcomes[1], JobResult)

    def test_four_jobs_concurrently_match_serial(self):
        """Acceptance: >= 4 jobs run concurrently, same output as serial."""
        jobs = [
            MiningJob(dataset="synthetic", seed=s, config=FAST) for s in range(4)
        ]
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=4)
        assert len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.job == b.job  # order preserved
            for ia, ib in zip(a.iterations, b.iterations):
                assert ia.location.description == ib.location.description
                assert ia.location.score.ic == ib.location.score.ic
