"""Tabular data model: typed description attributes + real-valued targets.

This mirrors the paper's setup (§II, Notation): each data point is a pair
``(x_i, y_i)`` where ``x_i`` is a tuple of arbitrarily-typed *description*
attributes and ``y_i`` is a vector of ``d_y`` real-valued *target*
attributes. Subgroups are defined by conditions on the description
attributes; interestingness is evaluated on the targets.

Attribute kinds and the conditions the language allows on them:

- ``NUMERIC``  — real-valued; inequality conditions (``<=`` / ``>=``).
- ``ORDINAL``  — ordered discrete levels stored as floats (e.g. the water
  dataset's taxon densities 0/1/3/5); inequality conditions.
- ``CATEGORICAL`` — unordered labels; equality conditions.
- ``BINARY``   — two-valued categorical stored as 0/1; equality conditions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import DataError


class AttributeKind(enum.Enum):
    """How a description attribute may be conditioned on."""

    NUMERIC = "numeric"
    ORDINAL = "ordinal"
    CATEGORICAL = "categorical"
    BINARY = "binary"

    @property
    def is_orderable(self) -> bool:
        """Whether inequality conditions make sense for this kind."""
        return self in (AttributeKind.NUMERIC, AttributeKind.ORDINAL)


@dataclass(frozen=True)
class Column:
    """One description attribute: a name, a kind, and its values.

    ``values`` is a 1-D numpy array: ``float64`` for numeric/ordinal/binary
    kinds, and an object/str array for categorical. Binary columns must
    contain only 0 and 1.
    """

    name: str
    kind: AttributeKind
    values: np.ndarray

    def __post_init__(self) -> None:
        if not self.name:
            raise DataError("Column name must be non-empty")
        values = np.asarray(self.values)
        if values.ndim != 1:
            raise DataError(
                f"Column {self.name!r}: values must be 1-D, got shape {values.shape}"
            )
        if self.kind is AttributeKind.CATEGORICAL:
            values = values.astype(str)
        else:
            try:
                values = values.astype(float)
            except (TypeError, ValueError) as exc:
                raise DataError(
                    f"Column {self.name!r} ({self.kind.value}) has non-numeric values"
                ) from exc
            if not np.all(np.isfinite(values)):
                raise DataError(f"Column {self.name!r} contains NaN/inf")
            if self.kind is AttributeKind.BINARY and not np.isin(values, (0.0, 1.0)).all():
                raise DataError(f"Column {self.name!r} is binary but has values outside {{0, 1}}")
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return int(self.values.shape[0])

    @property
    def n_rows(self) -> int:
        return len(self)

    def domain(self) -> np.ndarray:
        """Sorted distinct values (levels for ordinal, labels for categorical)."""
        return np.unique(self.values)

    def is_constant(self) -> bool:
        """True when every row holds the same value (no useful conditions)."""
        return self.domain().shape[0] <= 1


def validate_weights(weights, n_rows: int) -> np.ndarray | None:
    """Validate case weights: ``None`` or ``n_rows`` positive finite floats.

    Returns a fresh float64 copy (callers may hand in lists or views) or
    ``None``. Zero and negative weights are rejected — a zero-weight row
    should simply be dropped before mining, and silently carrying it
    would divide empty subgroups by zero deep in the scoring stack.
    """
    if weights is None:
        return None
    arr = np.asarray(weights, dtype=float)
    if arr.ndim != 1 or arr.shape[0] != n_rows:
        raise DataError(
            f"weights must be a 1-D array of length {n_rows}, "
            f"got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise DataError("weights contain NaN/inf")
    if np.any(arr <= 0.0):
        raise DataError("weights must be strictly positive")
    return arr.copy()


class Dataset:
    """A named dataset: description columns + a real-valued target matrix.

    Parameters
    ----------
    name:
        Identifier used in reports and the registry.
    columns:
        Description attributes, in presentation order.
    targets:
        ``(n, d_y)`` float matrix of target values.
    target_names:
        One name per target column.
    metadata:
        Optional side information not visible to the search (e.g. latitude/
        longitude for map rendering, planted ground-truth labels for tests).
        Values must be 1-D arrays of length ``n`` or arbitrary scalars.
    weights:
        Optional per-row case weights (``n`` positive finite floats).
        A row with weight ``w`` counts as ``w`` copies in every
        sufficient statistic the mining stack computes (frequency
        semantics: weight 2 ≡ the row appearing twice). ``None`` means
        unit weights, and the scoring stack takes the exact unweighted
        code path, so results are bit-identical to pre-weights versions.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        targets: np.ndarray,
        target_names: Sequence[str],
        metadata: Mapping[str, object] | None = None,
        weights: np.ndarray | None = None,
    ) -> None:
        if not name:
            raise DataError("Dataset name must be non-empty")
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets[:, None]
        if targets.ndim != 2:
            raise DataError(f"targets must be 2-D, got shape {targets.shape}")
        if not np.all(np.isfinite(targets)):
            raise DataError("targets contain NaN/inf")
        n = targets.shape[0]
        target_names = [str(t) for t in target_names]
        if len(target_names) != targets.shape[1]:
            raise DataError(
                f"{len(target_names)} target names for {targets.shape[1]} target columns"
            )
        if len(set(target_names)) != len(target_names):
            raise DataError("duplicate target names")

        columns = list(columns)
        seen: set[str] = set()
        for col in columns:
            if not isinstance(col, Column):
                raise DataError(f"expected Column, got {type(col).__name__}")
            if col.n_rows != n:
                raise DataError(
                    f"Column {col.name!r} has {col.n_rows} rows, targets have {n}"
                )
            if col.name in seen:
                raise DataError(f"duplicate column name {col.name!r}")
            seen.add(col.name)
        overlap = seen.intersection(target_names)
        if overlap:
            raise DataError(f"names used both as description and target: {sorted(overlap)}")

        self.name = name
        self._columns: dict[str, Column] = {col.name: col for col in columns}
        self._order: list[str] = [col.name for col in columns]
        self.targets = targets
        self.target_names = list(target_names)
        self.metadata: dict[str, object] = dict(metadata or {})
        self.weights = validate_weights(weights, n)

    # ------------------------------------------------------------------ #
    # Shape accessors
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        return int(self.targets.shape[0])

    @property
    def n_targets(self) -> int:
        return int(self.targets.shape[1])

    @property
    def n_descriptions(self) -> int:
        return len(self._order)

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset({self.name!r}, n={self.n_rows}, "
            f"d_x={self.n_descriptions}, d_y={self.n_targets})"
        )

    # ------------------------------------------------------------------ #
    # Column access
    # ------------------------------------------------------------------ #
    @property
    def description_names(self) -> list[str]:
        return list(self._order)

    def column(self, name: str) -> Column:
        """Look up one description attribute by name."""
        try:
            return self._columns[name]
        except KeyError:
            raise DataError(f"unknown description attribute {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def columns(self) -> Iterable[Column]:
        """Iterate the description attributes in presentation order."""
        for name in self._order:
            yield self._columns[name]

    def target_index(self, name: str) -> int:
        """Column index of a target attribute by name."""
        try:
            return self.target_names.index(name)
        except ValueError:
            raise DataError(f"unknown target attribute {name!r}") from None

    def target(self, name: str) -> np.ndarray:
        """One target column as a 1-D array."""
        return self.targets[:, self.target_index(name)]

    @property
    def has_weights(self) -> bool:
        """True when non-unit case weights are attached."""
        return self.weights is not None

    def total_weight(self) -> float:
        """Sum of the case weights (``n_rows`` for unit weights)."""
        if self.weights is None:
            return float(self.n_rows)
        return float(self.weights.sum())

    # ------------------------------------------------------------------ #
    # Derived datasets
    # ------------------------------------------------------------------ #
    def with_weights(self, weights: np.ndarray | None) -> "Dataset":
        """A copy carrying the given case weights (``None`` removes them)."""
        return Dataset(
            self.name,
            [self._columns[c] for c in self._order],
            self.targets,
            self.target_names,
            metadata=self.metadata,
            weights=weights,
        )

    def with_targets(self, names: Sequence[str]) -> "Dataset":
        """A view-like copy restricted to the given target columns."""
        idx = [self.target_index(n) for n in names]
        return Dataset(
            self.name,
            [self._columns[c] for c in self._order],
            self.targets[:, idx],
            [self.target_names[i] for i in idx],
            metadata=self.metadata,
            weights=self.weights,
        )

    def subset(self, rows: np.ndarray, *, name: str | None = None) -> "Dataset":
        """Row-subset copy (``rows`` is a boolean mask or index array)."""
        rows = np.asarray(rows)
        if rows.dtype == bool:
            if rows.shape[0] != self.n_rows:
                raise DataError("boolean row mask has wrong length")
            index = np.flatnonzero(rows)
        else:
            index = rows.astype(int)
        columns = [
            Column(col.name, col.kind, col.values[index]) for col in self.columns()
        ]
        metadata = {
            key: (value[index] if isinstance(value, np.ndarray) and value.ndim >= 1
                  and value.shape[0] == self.n_rows else value)
            for key, value in self.metadata.items()
        }
        return Dataset(
            name or f"{self.name}[subset]",
            columns,
            self.targets[index],
            self.target_names,
            metadata=metadata,
            weights=self.weights[index] if self.weights is not None else None,
        )

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    def empirical_mean(self) -> np.ndarray:
        """Mean of the targets over the full data (default model prior)."""
        return self.targets.mean(axis=0)

    def empirical_cov(self) -> np.ndarray:
        """Covariance of the targets over the full data (default prior).

        Uses the maximum-likelihood (1/n) normalization: the prior encodes
        a belief about the data-generating spread, matching the MaxEnt
        derivation in the paper rather than an unbiased sample estimate.
        """
        centered = self.targets - self.empirical_mean()
        return (centered.T @ centered) / self.n_rows

    def summary(self) -> str:
        """Human-readable one-per-line column summary."""
        lines = [
            f"Dataset {self.name!r}: {self.n_rows} rows, "
            f"{self.n_descriptions} description attributes, {self.n_targets} targets"
        ]
        for col in self.columns():
            dom = col.domain()
            if col.kind.is_orderable or col.kind is AttributeKind.BINARY:
                desc = f"range [{dom[0]:.4g}, {dom[-1]:.4g}], {dom.shape[0]} distinct"
            else:
                desc = f"{dom.shape[0]} categories"
            lines.append(f"  [{col.kind.value:11s}] {col.name}: {desc}")
        lines.append("  targets: " + ", ".join(self.target_names))
        return "\n".join(lines)
