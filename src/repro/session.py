"""Interactive mining sessions: history, undo, and text reports.

The paper frames mining as a dialogue whose state is the background
distribution; :class:`MiningSession` makes that dialogue a first-class
object. It wraps :class:`~repro.search.miner.SubgroupDiscovery` with

- a full history of shown patterns,
- snapshot/undo (step back without refitting from scratch),
- a formatted session report, and
- JSON save/resume of the belief state (via :mod:`repro.persist`),
  including the search RNG state so a resumed session continues
  bit-identically to an uninterrupted one.

This is the library-level groundwork for the SIDE-style interactive
exploration the paper's §V plans to integrate with.

.. note::
    As a *public entry point* this class is superseded by
    :meth:`repro.api.Workspace.session`, which builds a session from a
    declarative :class:`repro.spec.MiningSpec`. ``MiningSession``
    remains the interactive substrate underneath and keeps working.
"""

from __future__ import annotations

from pathlib import Path

from repro.datasets.schema import Dataset
from repro.engine.cache import BeliefCache
from repro.engine.executor import Executor
from repro.errors import SearchError
from repro.events import MiningObserver
from repro.interest.dl import DLParams
from repro.model.priors import Prior
from repro.persist import (
    constraint_to_dict,
    load_json,
    model_from_dict,
    model_to_dict,
    save_json,
)
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery
from repro.search.results import MiningIteration
from repro.utils.rng import generator_from_state, rng_state


#: Sentinel distinguishing "argument not passed" from an explicit None.
_UNSET = object()


class MiningSession:
    """A resumable, undoable iterative-mining dialogue over one dataset.

    Beyond the dataset, every parameter mirrors
    :class:`~repro.search.miner.SubgroupDiscovery` (which does the
    mining): ``prior`` pins an explicit background prior, ``executor``
    parallelizes the searches, ``observer`` streams candidate and
    iteration events as they happen, ``belief_cache`` lets sessions
    sharing a prefix of assimilated patterns replay it instead of
    re-mining (see :class:`~repro.engine.cache.BeliefCache`). ``kind``
    and ``sparsity`` set the defaults a bare :meth:`step` uses (a
    spec-built session steps the way its spec says without re-passing
    them every call).
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        config: SearchConfig = SearchConfig(),
        dl_params: DLParams = DLParams(),
        seed=0,
        prior: Prior | None = None,
        executor: Executor | None = None,
        observer: MiningObserver | None = None,
        kind: str = "location",
        sparsity: int | None = None,
        belief_cache: BeliefCache | None = None,
    ) -> None:
        self.dataset = dataset
        self.default_kind = kind
        self.default_sparsity = sparsity
        self.miner = SubgroupDiscovery(
            dataset,
            config=config,
            dl_params=dl_params,
            seed=seed,
            prior=prior,
            executor=executor,
            observer=observer,
            belief_cache=belief_cache,
        )
        self._snapshots = [self.miner.model.copy()]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the session's executor (its worker pool, if any).

        A session built over a ``ProcessExecutor`` — in particular a
        shared-memory one, whose warm pool persists across steps — holds
        worker processes; close the session (or use it as a context
        manager) to release them deterministically instead of at
        garbage collection. The session's history remains readable.
        """
        self.miner.executor.close()

    def __enter__(self) -> "MiningSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Dialogue
    # ------------------------------------------------------------------ #
    @property
    def history(self) -> list[MiningIteration]:
        return list(self.miner.history)

    @property
    def n_iterations(self) -> int:
        return len(self.miner.history)

    def step(self, *, kind: str | None = None, sparsity=_UNSET) -> MiningIteration:
        """One mining iteration; the pre-step model is snapshotted.

        ``kind``/``sparsity`` default to the session's construction-time
        settings, so a spec-built session steps the way its spec says.
        """
        snapshot = self.miner.model.copy()
        iteration = self.miner.step(
            kind=kind if kind is not None else self.default_kind,
            sparsity=self.default_sparsity if sparsity is _UNSET else sparsity,
        )
        self._snapshots.append(snapshot)
        return iteration

    def undo(self) -> MiningIteration:
        """Forget the last shown pattern(s); returns the undone iteration.

        Restores the exact pre-step belief state from the snapshot, so
        undo is O(model size), not a refit.
        """
        if not self.miner.history:
            raise SearchError("nothing to undo")
        undone = self.miner.history.pop()
        self.miner.model = self._snapshots.pop()
        return undone

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def report(self) -> str:
        """Human-readable transcript of the session so far."""
        lines = [
            f"Mining session on {self.dataset.name!r} "
            f"({self.dataset.n_rows} rows, {self.dataset.n_targets} targets)",
            f"iterations: {self.n_iterations}, "
            f"model blocks: {self.miner.model.n_blocks}, "
            f"constraints: {len(self.miner.model.constraints)}",
        ]
        for iteration in self.miner.history:
            lines.append(f"[{iteration.index}] {iteration.location}")
            if iteration.spread is not None:
                lines.append(f"    {iteration.spread}")
        if self.miner.model.constraints:
            lines.append(
                f"max constraint residual: {self.miner.model.max_residual():.2e}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Persist the belief state (not the dataset) to JSON.

        The document also carries the search RNG state, so
        :meth:`resume` continues the spread search's random-restart
        stream exactly where it stopped — ``save -> resume -> step``
        equals an uninterrupted run, bit for bit.
        """
        document = {
            "dataset_name": self.dataset.name,
            "n_iterations": self.n_iterations,
            "model": model_to_dict(self.miner.model),
            "shown": [
                constraint_to_dict(c) for c in self.miner.model.constraints
            ],
            "rng_state": rng_state(self.miner._rng),
            "step_defaults": {
                "kind": self.default_kind,
                "sparsity": self.default_sparsity,
            },
        }
        return save_json(document, path)

    @classmethod
    def resume(
        cls,
        dataset: Dataset,
        path: str | Path,
        *,
        config: SearchConfig = SearchConfig(),
        dl_params: DLParams = DLParams(),
        seed=0,
        executor: Executor | None = None,
        observer: MiningObserver | None = None,
        kind: str | None = None,
        sparsity=_UNSET,
        belief_cache: BeliefCache | None = None,
    ) -> "MiningSession":
        """Rebuild a session's belief state from a saved document.

        There is deliberately no ``prior`` parameter: the saved model
        *is* the belief state (prior plus everything assimilated), so a
        prior passed here could only be silently discarded.

        The iteration history (descriptions, scores) is not persisted —
        only the belief state matters for what gets mined next — so the
        resumed session starts with an empty history but the saved
        model, the saved RNG state, and the saved ``step()`` defaults
        (``kind``/``sparsity``), making the continuation bit-identical
        to never having stopped; explicit ``kind``/``sparsity``
        arguments here override the saved defaults. Documents from older
        versions without ``rng_state``/``step_defaults`` still load;
        they fall back to the fresh ``seed`` stream and the library
        defaults.
        """
        document = load_json(path)
        if document.get("dataset_name") != dataset.name:
            raise SearchError(
                f"saved session is for dataset {document.get('dataset_name')!r}, "
                f"got {dataset.name!r}"
            )
        saved_defaults = document.get("step_defaults") or {}
        session = cls(
            dataset,
            config=config,
            dl_params=dl_params,
            seed=seed,
            executor=executor,
            observer=observer,
            kind=kind if kind is not None else saved_defaults.get("kind", "location"),
            sparsity=(
                saved_defaults.get("sparsity") if sparsity is _UNSET else sparsity
            ),
            belief_cache=belief_cache,
        )
        model = model_from_dict(document["model"])
        if model.n_rows != dataset.n_rows:
            raise SearchError("saved model row count does not match dataset")
        session.miner.model = model
        session._snapshots = [model.copy()]
        saved_state = document.get("rng_state")
        if saved_state is not None:
            # The saved stream always wins over the resuming caller's
            # ``seed`` — that is what makes save -> resume -> step equal
            # an uninterrupted run, bit for bit.
            try:
                session.miner._rng = generator_from_state(saved_state)
            except ValueError as exc:
                raise SearchError(f"saved rng_state: {exc}") from exc
        return session
