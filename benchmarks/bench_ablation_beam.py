"""Ablation: beam width and search depth vs achieved SI and search cost.

Wider beams and deeper searches evaluate more candidates; on the
synthetic data the planted patterns are single conditions, so even a
width-1 beam finds the optimum — the interesting output is the cost
curve, which this bench records.
"""

from repro.datasets.synthetic import make_synthetic
from repro.report.tables import format_table
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery
from repro.utils.timer import Stopwatch

SETTINGS = [
    (1, 1), (1, 4), (5, 2), (10, 4), (40, 2), (40, 4), (80, 4),
]


def sweep_beam(seed: int = 0):
    dataset = make_synthetic(seed)
    rows = []
    for width, depth in SETTINGS:
        config = SearchConfig(beam_width=width, max_depth=depth)
        miner = SubgroupDiscovery(dataset, config=config, seed=seed)
        watch = Stopwatch()
        with watch:
            result = miner.search_locations()
        rows.append(
            (
                width,
                depth,
                result.best.si,
                result.n_evaluated,
                watch.elapsed,
            )
        )
    return rows


def bench_ablation_beam(benchmark, save_result):
    rows = benchmark.pedantic(sweep_beam, args=(0,), rounds=1, iterations=1)
    table = format_table(
        ["beam width", "depth", "best SI", "candidates", "seconds"],
        rows,
        floatfmt=".3f",
        title="Ablation: beam width/depth vs SI and search cost",
    )
    save_result("ablation_beam", table)
    best_si = max(row[2] for row in rows)
    # The paper's default (40, 4) achieves the best SI found anywhere.
    default = next(row for row in rows if row[0] == 40 and row[1] == 4)
    assert default[2] >= best_si - 1e-9
    # More exploration never evaluates fewer candidates at fixed depth.
    depth4 = [row for row in rows if row[1] == 4]
    evaluated = [row[3] for row in sorted(depth4, key=lambda r: r[0])]
    assert evaluated == sorted(evaluated)
