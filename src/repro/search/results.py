"""Result records produced by the searches and the iterative miner."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.interest.si import PatternScore
from repro.lang.description import Description
from repro.model.patterns import LocationConstraint, SpreadConstraint


@dataclass(frozen=True)
class ScoredSubgroup:
    """One beam-search log entry: an intention, its extension, its score."""

    description: Description
    indices: np.ndarray
    observed_mean: np.ndarray
    score: PatternScore

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])

    @property
    def si(self) -> float:
        return self.score.si

    def __str__(self) -> str:
        return f"{self.description}  (n={self.size}, SI={self.si:.2f})"


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one beam search: the winner plus the top-k log."""

    best: ScoredSubgroup | None
    log: tuple[ScoredSubgroup, ...]
    n_evaluated: int
    depth_reached: int
    expired: bool  # True if the time budget cut the search short

    def __iter__(self):
        return iter(self.log)

    def __len__(self) -> int:
        return len(self.log)


@dataclass(frozen=True)
class LocationPatternResult:
    """A mined location pattern, ready to present and assimilate."""

    description: Description
    indices: np.ndarray
    mean: np.ndarray
    score: PatternScore
    coverage: float

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])

    @property
    def si(self) -> float:
        return self.score.si

    def constraint(self) -> LocationConstraint:
        """The model-update record for this pattern."""
        return LocationConstraint(self.indices, self.mean)

    def __str__(self) -> str:
        return (
            f"location: {self.description}  "
            f"(n={self.size}, coverage={self.coverage:.1%}, SI={self.si:.2f})"
        )


@dataclass(frozen=True)
class SpreadPatternResult:
    """A mined spread pattern: adds the direction and its variance."""

    description: Description
    indices: np.ndarray
    direction: np.ndarray
    variance: float
    center: np.ndarray
    score: PatternScore

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])

    @property
    def si(self) -> float:
        return self.score.si

    def constraint(self) -> SpreadConstraint:
        """The model-update record for this pattern."""
        return SpreadConstraint(self.indices, self.direction, self.variance, self.center)

    def __str__(self) -> str:
        w = ", ".join(f"{x:+.3f}" for x in self.direction)
        return (
            f"spread: {self.description} along [{w}]  "
            f"(var={self.variance:.4g}, SI={self.si:.2f})"
        )


@dataclass(frozen=True)
class MiningIteration:
    """One round of the paper's two-step iterative mining."""

    index: int
    location: LocationPatternResult
    spread: SpreadPatternResult | None = None


class ResultSet:
    """Tabular view over mined iterations, dataframe-exportable.

    Wraps the :class:`MiningIteration` sequence a run produced and flattens
    it to one row per presented pattern (a ``kind="spread"`` iteration
    contributes a location row *and* a spread row). Rows are plain dicts,
    so :meth:`rows` works without pandas; :meth:`to_dataframe` needs the
    ``sisd[dataframe]`` extra.

    ``dataset`` (or any object with ``n_rows``/``weights``) supplies the
    case weights used for the ``weighted_coverage`` column — the share of
    total case weight the subgroup covers, which is what coverage *means*
    on a propensity-weighted population. Without weights the two coverage
    columns coincide.
    """

    def __init__(self, iterations, *, dataset=None) -> None:
        self.iterations: tuple[MiningIteration, ...] = tuple(iterations)
        for iteration in self.iterations:
            if not isinstance(iteration, MiningIteration):
                raise TypeError(
                    f"expected MiningIteration, got {type(iteration).__name__}"
                )
        self._weights = getattr(dataset, "weights", None) if dataset is not None else None
        self._total_weight = (
            float(self._weights.sum()) if self._weights is not None else None
        )

    @classmethod
    def from_result(cls, result, *, dataset=None) -> "ResultSet":
        """Lift a job result (anything with ``.iterations``) to a ResultSet."""
        return cls(result.iterations, dataset=dataset)

    def __len__(self) -> int:
        return len(self.iterations)

    def __iter__(self):
        return iter(self.iterations)

    def _weighted_coverage(self, indices: np.ndarray, coverage: float) -> float:
        if self._weights is None:
            return coverage
        return float(self._weights[indices].sum()) / self._total_weight

    def rows(self) -> list[dict]:
        """One plain dict per pattern, in presentation order."""
        out: list[dict] = []
        for iteration in self.iterations:
            location = iteration.location
            coverage = location.coverage
            out.append(
                {
                    "iteration": iteration.index,
                    "kind": "location",
                    "description": str(location.description),
                    "n_conditions": len(location.description),
                    "size": location.size,
                    "coverage": coverage,
                    "weighted_coverage": self._weighted_coverage(
                        location.indices, coverage
                    ),
                    "ic": location.score.ic,
                    "dl": location.score.dl,
                    "si": location.si,
                    "mean": [float(x) for x in location.mean],
                    "direction": None,
                    "variance": None,
                }
            )
            spread = iteration.spread
            if spread is not None:
                n_rows_cov = coverage  # same subgroup as the location row
                out.append(
                    {
                        "iteration": iteration.index,
                        "kind": "spread",
                        "description": str(spread.description),
                        "n_conditions": len(spread.description),
                        "size": spread.size,
                        "coverage": n_rows_cov,
                        "weighted_coverage": self._weighted_coverage(
                            spread.indices, n_rows_cov
                        ),
                        "ic": spread.score.ic,
                        "dl": spread.score.dl,
                        "si": spread.si,
                        "mean": [float(x) for x in spread.center],
                        "direction": [float(x) for x in spread.direction],
                        "variance": float(spread.variance),
                    }
                )
        return out

    def to_dataframe(self):
        """The rows as a pandas DataFrame (needs the ``[dataframe]`` extra)."""
        from repro.datasets.frame import _require_pandas

        pandas = _require_pandas()
        return pandas.DataFrame(self.rows())
