"""The front-door contract: one spec, three execution modes, one answer.

Acceptance for the API redesign: a single ``MiningSpec`` JSON drives
``Workspace.mine``, ``Workspace.session``, and ``Workspace.submit``
(via ``MiningService``) to equivalent patterns, and the deprecated
``SubgroupDiscovery``/``MiningJob`` entry points produce byte-identical
results to the spec-driven path.
"""

import json

import numpy as np
import pytest

from repro.api import Workspace, build_miner
from repro.datasets import load_dataset
from repro.engine.jobs import MiningJob, run_job
from repro.errors import ReproError, SearchError
from repro.events import CallbackObserver, EventLog, broadcast
from repro.interest.dl import DLParams
from repro.persist import load_spec, save_spec
from repro.search.branch_bound import find_optimal_location
from repro.search.config import SearchConfig
from repro.search.miner import SubgroupDiscovery
from repro.spec import MiningSpec

#: Small but non-trivial spec: two two-step iterations.
SPEC = MiningSpec.build(
    "synthetic",
    kind="spread",
    n_iterations=2,
    beam_width=8,
    max_depth=2,
    top_k=10,
    name="acceptance",
)


def assert_iterations_identical(ours, theirs):
    """Byte-level equality of two iteration sequences."""
    assert len(ours) == len(theirs)
    for a, b in zip(ours, theirs):
        assert a.index == b.index
        assert a.location.description == b.location.description
        assert np.array_equal(a.location.indices, b.location.indices)
        assert a.location.score.ic == b.location.score.ic  # exact, not approx
        assert a.location.score.dl == b.location.score.dl
        assert np.array_equal(a.location.mean, b.location.mean)
        assert (a.spread is None) == (b.spread is None)
        if a.spread is not None:
            assert np.array_equal(a.spread.direction, b.spread.direction)
            assert a.spread.variance == b.spread.variance
            assert a.spread.score.ic == b.spread.score.ic


class TestOneSpecThreeModes:
    @pytest.fixture(scope="class")
    def mined(self):
        return Workspace().mine(SPEC)

    def test_stream_equals_mine(self, mined):
        streamed = list(Workspace().stream(SPEC))
        assert_iterations_identical(streamed, mined.iterations)

    def test_session_equals_mine(self, mined):
        # A bare step() inherits the spec's kind/sparsity as defaults.
        session = Workspace().session(SPEC)
        stepped = [session.step() for _ in range(SPEC.search.n_iterations)]
        assert_iterations_identical(stepped, mined.iterations)

    def test_submit_equals_mine(self, mined):
        with Workspace(service_backend="serial") as ws:
            job_id = ws.submit(SPEC)
            result = ws.result(job_id)
        assert_iterations_identical(result.iterations, mined.iterations)

    def test_spec_json_file_drives_everything(self, mined, tmp_path):
        path = save_spec(SPEC, tmp_path / "spec.json")
        loaded = load_spec(path)
        assert loaded == SPEC
        result = Workspace().mine(loaded)
        assert_iterations_identical(result.iterations, mined.iterations)

    def test_plain_dict_accepted(self, mined, tmp_path):
        document = json.loads(json.dumps(SPEC.to_dict()))
        result = Workspace().mine(document)
        assert_iterations_identical(result.iterations, mined.iterations)


class TestDeprecatedPathsByteIdentical:
    @pytest.fixture(scope="class")
    def mined(self):
        return Workspace().mine(SPEC)

    def test_subgroup_discovery_path(self, mined):
        miner = SubgroupDiscovery(
            load_dataset("synthetic", seed=0),
            config=SearchConfig(beam_width=8, max_depth=2, top_k=10),
            dl_params=DLParams(),
            seed=0,
        )
        iterations = miner.run(2, kind="spread")
        assert_iterations_identical(iterations, mined.iterations)

    def test_mining_job_path(self, mined):
        job = MiningJob(
            dataset="synthetic",
            kind="spread",
            n_iterations=2,
            config=SearchConfig(beam_width=8, max_depth=2, top_k=10),
        )
        assert_iterations_identical(run_job(job).iterations, mined.iterations)

    def test_spec_to_job_round_trip_same_work(self):
        assert MiningSpec.from_job(SPEC.to_job()).fingerprint() == SPEC.fingerprint()


class TestSingleShotStrategies:
    def test_branch_bound_spec_equals_direct_call(self):
        spec = MiningSpec.build(
            "crime",
            strategy="branch_bound",
            max_depth=2,
            attributes=["pct_illeg", "pct_poverty"],
        )
        result = Workspace().mine(spec)
        direct = find_optimal_location(
            load_dataset("crime", seed=0),
            config=SearchConfig(
                max_depth=2, attributes=["pct_illeg", "pct_poverty"]
            ),
        )
        (iteration,) = result.iterations
        assert iteration.location.description == direct.best.description
        assert iteration.location.score.ic == direct.best.score.ic

    def test_quality_beam_spec_mines_with_classical_measure(self):
        spec = MiningSpec.build(
            "crime",
            strategy="quality_beam",
            measure="mean_shift",
            beam_width=6,
            max_depth=2,
            attributes=["pct_illeg", "pct_poverty"],
        )
        result = Workspace().mine(spec)
        (iteration,) = result.iterations
        assert len(iteration.location.description) >= 1
        assert iteration.location.si != 0.0

    def test_session_rejects_single_shot_strategy(self):
        spec = MiningSpec.build(
            "crime", strategy="branch_bound", max_depth=2,
            attributes=["pct_illeg"],
        )
        with pytest.raises(SearchError, match="beam"):
            Workspace().session(spec)
        with pytest.raises(SearchError, match="beam"):
            build_miner(spec)

    def test_stream_yields_single_shot_iteration(self):
        spec = MiningSpec.build(
            "crime", strategy="branch_bound", max_depth=2,
            attributes=["pct_illeg"],
        )
        iterations = list(Workspace().stream(spec))
        assert len(iterations) == 1

    def test_stream_never_fires_on_job_for_any_strategy(self):
        from repro.errors import EngineError

        log = EventLog()
        list(Workspace(observer=log).stream(SPEC))
        bb = MiningSpec.build(
            "crime", strategy="branch_bound", max_depth=2,
            attributes=["pct_illeg"],
        )
        list(Workspace(observer=log).stream(bb))
        assert log.jobs == []  # on_job belongs to mine(), uniformly
        assert len(log.iterations) == 3

    def test_branch_bound_multi_target_error_names_the_spec_field(self):
        from repro.errors import EngineError

        # synthetic has two targets; the spec constructs (target count is
        # a dataset property) but execution must say how to fix the spec.
        spec = MiningSpec.build("synthetic", strategy="branch_bound", max_depth=1)
        with pytest.raises(EngineError, match="targets="):
            Workspace().mine(spec)

    def test_branch_bound_with_selected_target_runs(self):
        names = load_dataset("synthetic", seed=0).target_names
        spec = MiningSpec.build(
            "synthetic", strategy="branch_bound", max_depth=1,
            targets=[names[0]],
        )
        (iteration,) = Workspace().mine(spec).iterations
        assert len(iteration.location.description) == 1


class TestEvents:
    def test_mine_fires_candidates_iterations_and_job(self):
        log = EventLog()
        result = Workspace(observer=log).mine(SPEC)
        assert len(log.iterations) == 2
        assert log.iterations[0].index == 1
        assert len(log.candidates) > 0
        assert log.jobs == [result]

    def test_stream_fires_live_per_iteration(self):
        seen = []
        observer = CallbackObserver(on_iteration=lambda it: seen.append(it.index))
        stream = Workspace().stream(SPEC, observer=observer)
        first = next(stream)
        # The event for iteration 1 fired before iteration 2 was mined.
        assert seen == [first.index] == [1]
        list(stream)
        assert seen == [1, 2]

    def test_per_call_observer_composes_with_workspace_observer(self):
        ws_log, call_log = EventLog(), EventLog()
        Workspace(observer=ws_log).mine(SPEC, observer=call_log)
        assert len(ws_log.iterations) == len(call_log.iterations) == 2

    def test_service_replays_iterations_on_completion(self):
        log = EventLog()
        with Workspace(observer=log, service_backend="thread") as ws:
            job_id = ws.submit(SPEC)
            result = ws.result(job_id)
        assert len(log.iterations) == 2
        assert log.jobs == [result]

    def test_service_replays_on_cache_hit(self):
        log = EventLog()
        with Workspace(observer=log, service_backend="serial") as ws:
            ws.result(ws.submit(SPEC))
            ws.result(ws.submit(SPEC))  # cache hit
        assert len(log.jobs) == 2

    def test_broadcast_drops_nones(self):
        log = EventLog()
        assert broadcast(None, None) is None
        assert broadcast(None, log) is log

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_failed_job_fires_on_job_failed(self, backend):
        # min_coverage above the dataset size: the beam finds nothing
        # admissible, so the job raises and the observer must hear it.
        bad = SPEC.with_changes(min_coverage=10**6)
        log = EventLog()
        with Workspace(observer=log, service_backend=backend) as ws:
            job_id = ws.submit(bad)
            with pytest.raises(Exception):
                ws.result(job_id)
        assert len(log.failures) == 1
        job, error = log.failures[0]
        assert job.dataset == "synthetic"
        assert isinstance(error, Exception)
        assert log.jobs == []


class TestWorkspaceLifecycle:
    def test_service_created_lazily_and_closed(self):
        ws = Workspace(service_backend="serial")
        assert ws._service is None
        ws.submit(SPEC)
        assert ws._service is not None
        ws.close()
        assert ws._service is None

    def test_lazy_service_honors_spec_executor_backend(self):
        spec = SPEC.with_changes(backend="serial")
        with Workspace() as ws:
            ws.result(ws.submit(spec))
            assert ws.service.backend == "serial"

    def test_explicit_service_backend_wins_over_spec(self):
        spec = SPEC.with_changes(backend="process")
        with Workspace(service_backend="serial") as ws:
            ws.submit(spec)
            assert ws.service.backend == "serial"

    def test_raising_observer_does_not_break_the_service(self):
        def explode(event):
            raise RuntimeError("broken dashboard")

        # A raising observer must neither crash submit nor FAIL the job,
        # on any hook, live or replayed.
        observer = CallbackObserver(on_job=explode, on_iteration=explode)
        with Workspace(observer=observer, service_backend="serial") as ws:
            job_id = ws.submit(SPEC)  # must not raise InvalidStateError
            result = ws.result(job_id)
            assert ws.status(job_id).value == "done"
        assert len(result.iterations) == 2

    def test_observer_swallowing_is_per_event_in_replay(self):
        seen = []

        def flaky(iteration):
            seen.append(iteration.index)
            if iteration.index == 1:
                raise RuntimeError("first event dies")

        jobs = []
        observer = CallbackObserver(on_iteration=flaky, on_job=jobs.append)
        with Workspace(observer=observer, service_backend="thread") as ws:
            ws.result(ws.submit(SPEC))
            ws.result(ws.submit(SPEC))  # cache hit -> replayed delivery
        # One raising event must not starve the later ones or on_job.
        assert seen == [1, 2, 1, 2]
        assert len(jobs) == 2

    def test_submit_honors_spec_workers(self):
        # executor.workers threads through submit; determinism keeps the
        # result byte-identical to the serial path.
        spec = SPEC.with_changes(workers=2, backend="serial")
        with Workspace() as ws:
            result = ws.result(ws.submit(spec))
        baseline = Workspace().mine(SPEC)
        assert_iterations_identical(result.iterations, baseline.iterations)

    def test_status_before_any_submit_raises(self):
        from repro.errors import EngineError

        ws = Workspace()
        with pytest.raises(EngineError, match="submit"):
            ws.status("job-0001")
        with pytest.raises(EngineError, match="submit"):
            ws.result("job-0001")
        assert ws._service is None  # the query did not spawn a pool

    def test_external_service_not_closed(self):
        from repro.engine.service import MiningService

        service = MiningService(backend="serial")
        ws = Workspace(service=service)
        ws.submit(SPEC)
        ws.close()
        assert ws._service is service  # still attached, not shut down
        service.shutdown()

    def test_workspace_observer_attaches_to_external_service(self):
        from repro.engine.service import MiningService

        log = EventLog()
        with MiningService(backend="serial") as service:
            ws = Workspace(observer=log, service=service)
            result = ws.result(ws.submit(SPEC))
        assert log.jobs == [result]
        assert len(log.iterations) == 2

    def test_closing_workspace_detaches_observer_from_shared_service(self):
        from repro.engine.service import MiningService

        first_log, second_log = EventLog(), EventLog()
        with MiningService(backend="serial") as service:
            with Workspace(observer=first_log, service=service) as first:
                first.result(first.submit(SPEC))
            with Workspace(observer=second_log, service=service) as second:
                second.result(second.submit(SPEC))
        # The closed workspace's observer heard only its own job.
        assert len(first_log.jobs) == 1
        assert len(second_log.jobs) == 1

    def test_submit_forwards_start_method(self):
        # The spec's start_method reaches the in-job executor resolution
        # (an invalid one would raise there); serial workers keep it inert
        # but the parameter must thread through without error.
        spec = SPEC.with_changes(backend="serial", start_method="spawn")
        with Workspace() as ws:
            result = ws.result(ws.submit(spec))
        assert len(result.iterations) == 2

    def test_invalid_spec_dict_rejected(self):
        with pytest.raises(ReproError):
            Workspace().mine({"dataset": "synthetic", "bogus": {}})

    def test_stream_validates_eagerly(self):
        # The error fires at the call, not at the first next().
        with pytest.raises(ReproError):
            Workspace().stream({"dataset": "nope"})
