"""Per-target-attribute surprisal of a location pattern.

The paper's case-study figures (5, 8a, 10) explain *why* a pattern is
interesting by ranking the target attributes by their individual SI: for
each attribute the marginal of the subgroup mean is a univariate normal,
and the attribute's IC is its negative log density at the observed
value. The figures also show the model's 95% interval, before and after
assimilating the pattern — :func:`attribute_surprisals` returns all of
that as plain records the report layer can print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ModelError
from repro.model.background import BackgroundModel
from repro.utils.validation import check_vector

_Z95 = 1.959963984540054  # standard normal 97.5% quantile


@dataclass(frozen=True)
class AttributeSurprisal:
    """One target attribute's contribution to a location pattern."""

    index: int
    name: str
    observed: float       # empirical subgroup mean of this attribute
    expected: float       # model mean of the subgroup-mean statistic
    sd: float             # model sd of the subgroup-mean statistic
    ic: float             # univariate negative log density

    @property
    def ci95(self) -> tuple[float, float]:
        """The model's central 95% interval for the subgroup mean."""
        return (self.expected - _Z95 * self.sd, self.expected + _Z95 * self.sd)

    @property
    def z(self) -> float:
        """Standardized displacement (sign tells direction of surprise)."""
        return (self.observed - self.expected) / self.sd


def attribute_surprisals(
    model: BackgroundModel,
    indices,
    observed_mean: np.ndarray,
    *,
    names: Sequence[str] | None = None,
) -> list[AttributeSurprisal]:
    """Rank target attributes by their univariate IC for a subgroup.

    Returns one record per target attribute, sorted by decreasing IC
    (the per-attribute DL is constant, so this equals the SI ranking the
    paper uses in Figs. 5/8a/10).
    """
    observed_mean = check_vector(observed_mean, "observed_mean", size=model.dim)
    if names is not None and len(names) != model.dim:
        raise ModelError(
            f"{len(names)} names for {model.dim} target attributes"
        )
    mu, cov = model.subgroup_mean_distribution(indices)
    sds = np.sqrt(np.diag(cov))
    records = []
    for j in range(model.dim):
        sd = float(max(sds[j], 1e-300))
        z = (float(observed_mean[j]) - float(mu[j])) / sd
        ic = 0.5 * math.log(2.0 * math.pi) + math.log(sd) + 0.5 * z * z
        records.append(
            AttributeSurprisal(
                index=j,
                name=names[j] if names is not None else f"target_{j}",
                observed=float(observed_mean[j]),
                expected=float(mu[j]),
                sd=sd,
                ic=ic,
            )
        )
    records.sort(key=lambda r: r.ic, reverse=True)
    return records
