"""JSON persistence for descriptions, constraints, models and results.

Iterative mining is a dialogue: the belief state accumulates everything
the user has been shown. This module serializes that state — so a
session can be saved, resumed, or shipped next to a paper — as plain
JSON (numpy arrays become lists; no pickle, no code execution on load).

Round-trips covered: conditions/descriptions, pattern constraints, the
Gaussian background model (prior + blocks + constraints), the result
records of the searches, the engine's declarative mining jobs
(search configs, job specs, batch files, job results), and the unified
:class:`~repro.spec.MiningSpec` documents the Workspace front door runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.engine.jobs import JobResult, MiningJob
from repro.errors import ReproError
from repro.search.config import SearchConfig
from repro.spec import MiningSpec
from repro.interest.si import PatternScore
from repro.lang.conditions import Condition, EqualsCondition, NumericCondition
from repro.lang.description import Description
from repro.model.background import BackgroundModel
from repro.model.blocks import BlockPartition
from repro.model.patterns import (
    LocationConstraint,
    PatternConstraint,
    SpreadConstraint,
)
from repro.model.priors import Prior
from repro.search.results import (
    LocationPatternResult,
    MiningIteration,
    ScoredSubgroup,
    SpreadPatternResult,
)

#: Schema version embedded in every document; bump on breaking changes.
SCHEMA_VERSION = 1


# --------------------------------------------------------------------- #
# Conditions and descriptions
# --------------------------------------------------------------------- #
def condition_to_dict(condition: Condition) -> dict:
    """Serialize one condition to a JSON-safe dict."""
    if isinstance(condition, NumericCondition):
        return {
            "type": "numeric",
            "attribute": condition.attribute,
            "op": condition.op,
            "threshold": condition.threshold,
        }
    if isinstance(condition, EqualsCondition):
        value = condition.value
        return {
            "type": "equals",
            "attribute": condition.attribute,
            "value": value,
            "value_kind": "number" if isinstance(value, float) else "string",
        }
    raise ReproError(f"cannot serialize condition type {type(condition).__name__}")


def condition_from_dict(data: dict) -> Condition:
    """Rebuild a condition from its serialized form."""
    kind = data.get("type")
    if kind == "numeric":
        return NumericCondition(data["attribute"], data["op"], data["threshold"])
    if kind == "equals":
        value = data["value"]
        if data.get("value_kind") == "number":
            value = float(value)
        return EqualsCondition(data["attribute"], value)
    raise ReproError(f"unknown condition type {kind!r}")


def description_to_dict(description: Description) -> dict:
    """Serialize a conjunctive description."""
    return {"conditions": [condition_to_dict(c) for c in description.conditions]}


def description_from_dict(data: dict) -> Description:
    """Rebuild a description from its serialized form."""
    return Description(
        tuple(condition_from_dict(c) for c in data["conditions"])
    )


# --------------------------------------------------------------------- #
# Pattern constraints
# --------------------------------------------------------------------- #
def constraint_to_dict(constraint: PatternConstraint) -> dict:
    """Serialize a location/spread pattern constraint."""
    if isinstance(constraint, LocationConstraint):
        return {
            "type": "location",
            "indices": constraint.indices.tolist(),
            "mean": constraint.mean.tolist(),
        }
    if isinstance(constraint, SpreadConstraint):
        return {
            "type": "spread",
            "indices": constraint.indices.tolist(),
            "direction": constraint.direction.tolist(),
            "variance": constraint.variance,
            "center": constraint.center.tolist(),
        }
    raise ReproError(f"cannot serialize constraint type {type(constraint).__name__}")


def constraint_from_dict(data: dict) -> PatternConstraint:
    """Rebuild a pattern constraint from its serialized form."""
    kind = data.get("type")
    if kind == "location":
        return LocationConstraint(
            np.asarray(data["indices"], dtype=np.int64),
            np.asarray(data["mean"], dtype=float),
        )
    if kind == "spread":
        return SpreadConstraint(
            np.asarray(data["indices"], dtype=np.int64),
            np.asarray(data["direction"], dtype=float),
            float(data["variance"]),
            np.asarray(data["center"], dtype=float),
        )
    raise ReproError(f"unknown constraint type {kind!r}")


# --------------------------------------------------------------------- #
# Background model
# --------------------------------------------------------------------- #
def model_to_dict(model: BackgroundModel) -> dict:
    """Serialize a background model (prior, blocks, constraints)."""
    return {
        "schema": SCHEMA_VERSION,
        "n_rows": model.n_rows,
        "prior": {
            "mean": model.prior.mean.tolist(),
            "cov": model.prior.cov.tolist(),
        },
        "labels": np.asarray(model.labels).tolist(),
        "blocks": [
            {
                "mean": model.block_mean(b).tolist(),
                "cov": model.block_cov(b).tolist(),
            }
            for b in range(model.n_blocks)
        ],
        "constraints": [constraint_to_dict(c) for c in model.constraints],
    }


def model_from_dict(data: dict) -> BackgroundModel:
    """Rebuild a background model; validates schema and block labels."""
    if data.get("schema") != SCHEMA_VERSION:
        raise ReproError(
            f"unsupported model schema {data.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    prior = Prior(
        np.asarray(data["prior"]["mean"], dtype=float),
        np.asarray(data["prior"]["cov"], dtype=float),
    )
    model = BackgroundModel(int(data["n_rows"]), prior)
    labels = np.asarray(data["labels"], dtype=np.int64)
    if labels.shape != (model.n_rows,):
        raise ReproError("labels shape does not match n_rows")
    blocks = data["blocks"]
    if labels.max(initial=0) >= len(blocks):
        raise ReproError("labels reference a missing block")
    partition = BlockPartition(model.n_rows)
    partition._labels[:] = labels
    partition._n_blocks = len(blocks)
    model._partition = partition
    model._means = [np.asarray(b["mean"], dtype=float) for b in blocks]
    model._covs = [np.asarray(b["cov"], dtype=float) for b in blocks]
    model._constraints = [constraint_from_dict(c) for c in data["constraints"]]
    return model


# --------------------------------------------------------------------- #
# Result records
# --------------------------------------------------------------------- #
def result_to_dict(result) -> dict:
    """Serialize a search/mining result record."""
    if isinstance(result, ScoredSubgroup):
        return {
            "type": "scored_subgroup",
            "description": description_to_dict(result.description),
            "indices": result.indices.tolist(),
            "observed_mean": result.observed_mean.tolist(),
            "ic": result.score.ic,
            "dl": result.score.dl,
        }
    if isinstance(result, LocationPatternResult):
        return {
            "type": "location_pattern",
            "description": description_to_dict(result.description),
            "indices": result.indices.tolist(),
            "mean": result.mean.tolist(),
            "ic": result.score.ic,
            "dl": result.score.dl,
            "coverage": result.coverage,
        }
    if isinstance(result, SpreadPatternResult):
        return {
            "type": "spread_pattern",
            "description": description_to_dict(result.description),
            "indices": result.indices.tolist(),
            "direction": result.direction.tolist(),
            "variance": result.variance,
            "center": result.center.tolist(),
            "ic": result.score.ic,
            "dl": result.score.dl,
        }
    raise ReproError(f"cannot serialize result type {type(result).__name__}")


def result_from_dict(data: dict):
    """Rebuild a search/mining result record from its serialized form."""
    kind = data.get("type")
    score = PatternScore(ic=float(data["ic"]), dl=float(data["dl"]))
    if kind == "scored_subgroup":
        return ScoredSubgroup(
            description=description_from_dict(data["description"]),
            indices=np.asarray(data["indices"], dtype=np.int64),
            observed_mean=np.asarray(data["observed_mean"], dtype=float),
            score=score,
        )
    if kind == "location_pattern":
        return LocationPatternResult(
            description=description_from_dict(data["description"]),
            indices=np.asarray(data["indices"], dtype=np.int64),
            mean=np.asarray(data["mean"], dtype=float),
            score=score,
            coverage=float(data["coverage"]),
        )
    if kind == "spread_pattern":
        return SpreadPatternResult(
            description=description_from_dict(data["description"]),
            indices=np.asarray(data["indices"], dtype=np.int64),
            direction=np.asarray(data["direction"], dtype=float),
            variance=float(data["variance"]),
            center=np.asarray(data["center"], dtype=float),
            score=score,
        )
    raise ReproError(f"unknown result type {kind!r}")


# --------------------------------------------------------------------- #
# Mining jobs (engine layer)
# --------------------------------------------------------------------- #
def search_config_to_dict(config: SearchConfig) -> dict:
    """Serialize beam-search settings."""
    return config.to_dict()


def search_config_from_dict(data: dict) -> SearchConfig:
    """Rebuild beam-search settings; absent keys keep paper defaults."""
    return SearchConfig.from_dict(data)


def job_to_dict(job: MiningJob) -> dict:
    """Serialize a declarative mining job.

    The document carries the canonical work spec plus the run metadata
    excluded from it (``name`` and the ``priority``/``deadline``
    scheduling terms), so a batch file round-trips schedules too.
    """
    return {
        "schema": SCHEMA_VERSION,
        "name": job.name,
        "priority": job.priority,
        "deadline": job.deadline,
        **job.spec(),
    }


#: Keys accepted in a serialized job spec (fields plus envelope).
_JOB_KEYS = frozenset(
    {
        "schema", "name", "dataset", "dataset_seed", "dataset_kwargs",
        "targets", "weights", "prior", "kind", "sparsity", "n_iterations",
        "seed", "config", "gamma", "eta", "strategy", "measure", "priority",
        "deadline",
    }
)


def job_from_dict(data: dict) -> MiningJob:
    """Rebuild a mining job; only ``dataset`` is mandatory.

    Unknown keys and type-invalid values are :class:`ReproError`s — a
    typo'd spec must fail loudly, not silently run a default job.
    """
    if "dataset" not in data:
        raise ReproError("job spec needs a 'dataset' key")
    schema = data.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise ReproError(
            f"unsupported job schema {schema!r} (expected {SCHEMA_VERSION})"
        )
    unknown = set(data) - _JOB_KEYS
    if unknown:
        raise ReproError(f"unknown job spec keys: {sorted(unknown)}")
    targets = data.get("targets")
    weights = data.get("weights")
    sparsity = data.get("sparsity")
    try:
        return MiningJob(
            dataset=data["dataset"],
            name=data.get("name", ""),
            dataset_seed=int(data.get("dataset_seed", 0)),
            dataset_kwargs=dict(data.get("dataset_kwargs") or {}),
            targets=tuple(targets) if targets is not None else None,
            weights=tuple(weights) if weights is not None else None,
            prior=data.get("prior"),
            kind=data.get("kind", "location"),
            sparsity=int(sparsity) if sparsity is not None else None,
            n_iterations=int(data.get("n_iterations", 1)),
            seed=int(data.get("seed", 0)),
            config=search_config_from_dict(data.get("config") or {}),
            gamma=float(data.get("gamma", 0.1)),
            eta=float(data.get("eta", 1.0)),
            strategy=data.get("strategy", "beam"),
            measure=data.get("measure", "si"),
            # Passed through raw: MiningJob's own validation rejects
            # bools, truncated floats, and non-numeric deadlines loudly
            # (a silent int()/float() coercion here would bypass it).
            priority=data.get("priority", 0),
            deadline=data.get("deadline"),
        )
    except (TypeError, ValueError) as exc:
        raise ReproError(f"invalid job spec: {exc}") from exc


def save_jobs(jobs, path: str | Path) -> Path:
    """Write a batch file (the input of ``sisd batch``)."""
    document = {
        "schema": SCHEMA_VERSION,
        "jobs": [job_to_dict(job) for job in jobs],
    }
    return save_json(document, path)


def load_jobs(path: str | Path) -> list[MiningJob]:
    """Read a batch file; accepts a document or a bare list of specs."""
    document = load_json(path)
    if isinstance(document, list):
        specs = document
    elif isinstance(document, dict) and isinstance(document.get("jobs"), list):
        specs = document["jobs"]
    else:
        raise ReproError(
            f"{path}: expected a list of job specs or a document with a 'jobs' list"
        )
    if not specs:
        raise ReproError(f"{path}: batch file contains no jobs")
    return [job_from_dict(spec) for spec in specs]


def job_result_to_dict(result: JobResult) -> dict:
    """Serialize one job's outcome (spec + mined patterns + timing)."""
    iterations = []
    for iteration in result.iterations:
        entry = {
            "index": iteration.index,
            "location": result_to_dict(iteration.location),
        }
        if iteration.spread is not None:
            entry["spread"] = result_to_dict(iteration.spread)
        iterations.append(entry)
    return {
        "schema": SCHEMA_VERSION,
        "job": job_to_dict(result.job),
        "elapsed_seconds": result.elapsed_seconds,
        "iterations": iterations,
    }


def job_result_from_dict(data: dict) -> JobResult:
    """Rebuild a job result (e.g. from a ``sisd batch --output`` file)."""
    iterations = []
    for entry in data["iterations"]:
        spread = entry.get("spread")
        iterations.append(
            MiningIteration(
                index=int(entry["index"]),
                location=result_from_dict(entry["location"]),
                spread=result_from_dict(spread) if spread is not None else None,
            )
        )
    return JobResult(
        job=job_from_dict(data["job"]),
        iterations=tuple(iterations),
        elapsed_seconds=float(data["elapsed_seconds"]),
    )


# --------------------------------------------------------------------- #
# Mining specs (the unified front-door configuration)
# --------------------------------------------------------------------- #
def spec_to_dict(spec: MiningSpec) -> dict:
    """Serialize a unified mining spec (sectioned, JSON-safe)."""
    return spec.to_dict()


def spec_from_dict(data: dict) -> MiningSpec:
    """Rebuild a mining spec; unknown sections/keys are ReproErrors."""
    return MiningSpec.from_dict(data)


def save_spec(spec: MiningSpec, path: str | Path) -> Path:
    """Write one spec to disk (the input of ``sisd mine --spec``)."""
    return save_json(spec.to_dict(), path)


def load_spec(path: str | Path) -> MiningSpec:
    """Read a spec file back into a validated :class:`MiningSpec`."""
    return MiningSpec.from_dict(load_json(path))


# --------------------------------------------------------------------- #
# File helpers
# --------------------------------------------------------------------- #
def save_json(document: dict, path: str | Path) -> Path:
    """Write a serialized document to disk (pretty-printed)."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_json(path: str | Path) -> dict:
    """Read a serialized document from disk."""
    return json.loads(Path(path).read_text())


def save_model(model: BackgroundModel, path: str | Path) -> Path:
    """One-call model save."""
    return save_json(model_to_dict(model), path)


def load_model(path: str | Path) -> BackgroundModel:
    """One-call model load."""
    return model_from_dict(load_json(path))
