"""Tests for figure data series."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.report.series import (
    cdf_series,
    histogram_series,
    kde_series,
    mixture_normal_cdf_series,
    normal_cdf_series,
)


class TestKdeSeries:
    def test_density_integrates_to_one(self, rng):
        values = rng.standard_normal(500)
        grid, density = kde_series(values, n_points=512, pad=0.5)
        assert np.trapezoid(density, grid) == pytest.approx(1.0, abs=0.02)

    def test_weight_scales(self, rng):
        values = rng.standard_normal(100)
        grid = np.linspace(-3, 3, 50)
        _, full = kde_series(values, grid=grid)
        _, half = kde_series(values, grid=grid, weight=0.5)
        np.testing.assert_allclose(half, 0.5 * full)

    def test_peak_near_mode(self, rng):
        values = rng.standard_normal(2000) + 5.0
        grid, density = kde_series(values)
        assert abs(grid[np.argmax(density)] - 5.0) < 0.5

    def test_degenerate_sample(self):
        grid, density = kde_series(np.full(10, 2.0), grid=np.linspace(1, 3, 50))
        assert np.isfinite(density).all()
        assert density.max() > 0

    def test_too_few_values(self):
        with pytest.raises(ReproError):
            kde_series([1.0])


class TestCdfSeries:
    def test_monotone_zero_to_one(self, rng):
        values = rng.standard_normal(200)
        grid, cdf = cdf_series(values, pad=0.5)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[0] == pytest.approx(0.0, abs=0.02)
        assert cdf[-1] == pytest.approx(1.0, abs=0.02)

    def test_median_at_half(self, rng):
        values = rng.standard_normal(1001)
        grid = np.array([np.median(values)])
        _, cdf = cdf_series(values, grid=grid)
        assert cdf[0] == pytest.approx(0.5, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            cdf_series([])


class TestNormalCdfSeries:
    def test_standard_normal_values(self):
        grid = np.array([-1.96, 0.0, 1.96])
        _, cdf = normal_cdf_series(0.0, 1.0, grid)
        np.testing.assert_allclose(cdf, [0.025, 0.5, 0.975], atol=1e-3)

    def test_invalid_sd(self):
        with pytest.raises(ReproError):
            normal_cdf_series(0.0, 0.0, np.zeros(3))


class TestMixtureNormalCdf:
    def test_single_component_matches_normal(self):
        grid = np.linspace(-3, 3, 20)
        _, expected = normal_cdf_series(0.5, 1.2, grid)
        _, mixture = mixture_normal_cdf_series([0.5], [1.2], [1.0], grid)
        np.testing.assert_allclose(mixture, expected)

    def test_weights_normalized(self):
        grid = np.linspace(-5, 5, 11)
        _, a = mixture_normal_cdf_series([0.0, 2.0], [1.0, 1.0], [1.0, 1.0], grid)
        _, b = mixture_normal_cdf_series([0.0, 2.0], [1.0, 1.0], [10.0, 10.0], grid)
        np.testing.assert_allclose(a, b)

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            mixture_normal_cdf_series([0.0], [1.0, 2.0], [1.0], np.zeros(3))


class TestHistogramSeries:
    def test_counts_sum_to_n(self, rng):
        values = rng.standard_normal(300)
        _, counts = histogram_series(values, bins=15)
        assert counts.sum() == 300

    def test_centers_inside_range(self, rng):
        values = rng.standard_normal(100)
        centers, _ = histogram_series(values, bins=10)
        assert centers.min() > values.min()
        assert centers.max() < values.max()
