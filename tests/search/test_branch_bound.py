"""Tests for the branch-and-bound optimal location search."""

import numpy as np
import pytest

from repro.datasets.schema import AttributeKind, Column, Dataset
from repro.errors import SearchError
from repro.interest.dl import DLParams
from repro.lang.refinement import RefinementOperator
from repro.model.background import BackgroundModel
from repro.model.patterns import LocationConstraint
from repro.search.branch_bound import (
    BranchAndBoundLocationSearch,
    find_optimal_location,
)
from repro.search.beam import LocationBeamSearch, LocationICScorer
from repro.search.config import SearchConfig


@pytest.fixture()
def small_dataset(rng):
    """Small single-target dataset with a planted subgroup."""
    n = 120
    targets = rng.standard_normal(n)
    flag = np.zeros(n)
    flag[:25] = 1.0
    targets[:25] += 2.0
    order = rng.permutation(n)
    columns = [
        Column("flag", AttributeKind.BINARY, flag[order]),
        Column("num", AttributeKind.NUMERIC, rng.standard_normal(n)),
        Column("cat", AttributeKind.CATEGORICAL, rng.choice(["a", "b"], n)),
    ]
    return Dataset("small", columns, targets[order], ["y"])


def make_search(dataset, **config_kwargs):
    config = SearchConfig(**config_kwargs)
    model = BackgroundModel.from_targets(dataset.targets)
    operator = RefinementOperator(dataset)
    return BranchAndBoundLocationSearch(
        operator, model, dataset.targets, config=config
    )


class TestOptimisticBound:
    def test_bound_dominates_sampled_subsets(self, small_dataset, rng):
        search = make_search(small_dataset)
        search._max_size = small_dataset.n_rows - 1
        mask = np.ones(small_dataset.n_rows, dtype=bool)
        bound = search.optimistic_ic(mask)
        values = small_dataset.targets[:, 0]
        for _ in range(200):
            k = int(rng.integers(2, small_dataset.n_rows - 1))
            subset = rng.choice(small_dataset.n_rows, size=k, replace=False)
            ic = search._ic_of(k, float(values[subset].mean()))
            assert ic <= bound + 1e-9

    def test_bound_attained_by_extreme_prefix(self, small_dataset):
        """The bound equals the best prefix/suffix IC by construction."""
        search = make_search(small_dataset)
        search._max_size = small_dataset.n_rows - 1
        mask = np.ones(small_dataset.n_rows, dtype=bool)
        bound = search.optimistic_ic(mask)
        values = np.sort(small_dataset.targets[:, 0])
        best = -np.inf
        for k in range(2, small_dataset.n_rows):
            best = max(
                best,
                search._ic_of(k, float(values[:k].mean())),
                search._ic_of(k, float(values[-k:].mean())),
            )
        assert bound == pytest.approx(best, rel=1e-12)

    def test_bound_monotone_under_restriction(self, small_dataset, rng):
        """Shrinking the candidate set cannot raise the bound."""
        search = make_search(small_dataset)
        search._max_size = small_dataset.n_rows - 1
        full = np.ones(small_dataset.n_rows, dtype=bool)
        sub = rng.random(small_dataset.n_rows) < 0.5
        sub[:5] = True  # keep it non-trivial
        assert search.optimistic_ic(sub) <= search.optimistic_ic(full) + 1e-9


class TestOptimality:
    def test_matches_exhaustive_search(self, small_dataset):
        """With pruning disabled by construction (incumbent = -inf until
        found), B&B explores what exhaustive DFS explores; its best must
        match a brute-force enumeration of the language."""
        config = SearchConfig(max_depth=2, min_coverage=2)
        result = make_search(small_dataset, max_depth=2).run()

        # Brute force: score every canonical description up to depth 2.
        operator = RefinementOperator(small_dataset)
        model = BackgroundModel.from_targets(small_dataset.targets)
        values = small_dataset.targets[:, 0]
        mu = float(model.block_mean(0)[0])
        s2 = float(model.block_cov(0)[0, 0])
        best_si = -np.inf
        seen = set()
        from repro.interest.dl import description_length
        from repro.lang.description import Description

        frontier = [Description()]
        for _depth in range(2):
            next_frontier = []
            for parent in frontier:
                for refined, _ in operator.refinements(parent):
                    if refined in seen:
                        continue
                    seen.add(refined)
                    mask = operator.extension_mask(refined)
                    size = int(mask.sum())
                    if size < 2 or size > small_dataset.n_rows - 1:
                        continue
                    mean = float(values[mask].mean())
                    ic = 0.5 * (
                        np.log(2 * np.pi * s2 / size)
                        + size * (mean - mu) ** 2 / s2
                    )
                    si = ic / description_length(len(refined))
                    best_si = max(best_si, si)
                    next_frontier.append(refined)
            frontier = next_frontier
        assert result.best.si == pytest.approx(best_si, rel=1e-9)

    def test_at_least_as_good_as_beam(self, small_dataset):
        bb = make_search(small_dataset, max_depth=3).run()
        model = BackgroundModel.from_targets(small_dataset.targets)
        beam = LocationBeamSearch(
            RefinementOperator(small_dataset),
            LocationICScorer(model, small_dataset.targets),
            config=SearchConfig(max_depth=3),
        ).run()
        assert bb.best.si >= beam.best.si - 1e-9

    def test_finds_planted_flag(self, small_dataset):
        result = make_search(small_dataset, max_depth=2).run()
        assert str(result.best.description) == "flag = '1'"


class TestPruning:
    def test_pruning_happens(self, small_dataset):
        search = make_search(small_dataset, max_depth=3)
        search.run()
        assert search.stats.nodes_pruned > 0

    def test_pruning_does_not_change_optimum(self, small_dataset):
        """Same optimum at depth 3 as an unpruned exhaustive beam with
        enormous width (which cannot prune)."""
        bb = make_search(small_dataset, max_depth=3).run()
        model = BackgroundModel.from_targets(small_dataset.targets)
        wide = LocationBeamSearch(
            RefinementOperator(small_dataset),
            LocationICScorer(model, small_dataset.targets),
            config=SearchConfig(beam_width=10_000, max_depth=3),
        ).run()
        assert bb.best.si == pytest.approx(wide.best.si, rel=1e-9)


class TestValidation:
    def test_requires_single_target_model(self, rng):
        targets = rng.standard_normal((30, 2))
        model = BackgroundModel.from_targets(targets)
        columns = [Column("b", AttributeKind.BINARY, rng.integers(0, 2, 30).astype(float))]
        dataset = Dataset("d", columns, targets, ["y1", "y2"])
        with pytest.raises(SearchError, match="single target|1-D"):
            BranchAndBoundLocationSearch(
                RefinementOperator(dataset), model, targets
            )

    def test_requires_fresh_model(self, small_dataset):
        model = BackgroundModel.from_targets(small_dataset.targets)
        model.assimilate(
            LocationConstraint.from_data(small_dataset.targets, np.arange(5))
        )
        with pytest.raises(SearchError, match="fresh"):
            BranchAndBoundLocationSearch(
                RefinementOperator(small_dataset), model, small_dataset.targets
            )

    def test_time_budget_returns_incumbent(self, small_dataset):
        result = make_search(small_dataset, time_budget_seconds=0.0).run()
        assert result.expired


class TestConvenienceWrapper:
    def test_on_crime_named_attributes(self, crime_dataset):
        config = SearchConfig(
            max_depth=2,
            attributes=["pct_illeg", "pct_poverty", "med_income"],
        )
        result = find_optimal_location(crime_dataset, config=config)
        assert result.best is not None
        assert "pct_illeg" in str(result.best.description)

    def test_multi_target_requires_name(self, socio_dataset):
        with pytest.raises(SearchError, match="target"):
            find_optimal_location(socio_dataset)

    def test_multi_target_with_name(self, socio_dataset):
        config = SearchConfig(max_depth=1)
        result = find_optimal_location(
            socio_dataset, target="left_2009", config=config
        )
        assert result.best is not None
